//! # rapid-transit — reproduction of Kotz & Ellis (1989)
//!
//! *Prefetching in File Systems for MIMD Multiprocessors*, ICPP 1989.
//!
//! This facade crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`disk`] — parallel independent disks and interleaved file layout,
//! * [`fs`] — the interleaved file system (naming, allocation, striping),
//! * [`cache`] — shared block cache with per-processor RU-set replacement,
//! * [`patterns`] — the six parallel file access patterns and
//!   synchronization styles,
//! * [`core`] — the RAPID Transit testbed itself: the parallel file system
//!   with idle-time prefetching, the experiment runner, and metrics.
//!
//! ## Quickstart
//!
//! ```
//! use rapid_transit::core::experiment::run_experiment;
//! use rapid_transit::core::ExperimentConfig;
//! use rapid_transit::patterns::{AccessPattern, SyncStyle};
//!
//! // The paper's headline configuration: 20 processors, 20 disks, a
//! // 2000-block file read with the global-whole-file pattern.
//! let mut config = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile,
//!                                                  SyncStyle::BlocksPerProc(10));
//! config.prefetch = rapid_transit::core::PrefetchConfig::paper();
//! let metrics = run_experiment(&config);
//! assert!(metrics.reads.count() > 0);
//! ```

pub mod cli;

pub use rt_bench as bench;
pub use rt_cache as cache;
pub use rt_core as core;
pub use rt_disk as disk;
pub use rt_fs as fs;
pub use rt_patterns as patterns;
pub use rt_sim as sim;
