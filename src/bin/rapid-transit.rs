//! Command-line interface to the RAPID Transit testbed.
//!
//! ```text
//! rapid-transit run   [options]     one experiment, metrics table
//! rapid-transit grid  [--csv]       the full §IV-D grid, base vs prefetch
//! rapid-transit lead  <pattern>     the §V-E minimum-lead sweep
//! rapid-transit sweep-compute       the §V-C computation sweep (Fig. 12)
//! rapid-transit trace <pattern>     record a run and analyze its trace
//! rapid-transit trace-check <file>  validate an exported Perfetto trace
//! rapid-transit perf                measure the fixed perf slice
//! rapid-transit faults              run the fault-injection sweep
//! rapid-transit crashes             run the node-crash sweep
//! rapid-transit soak                run the overload/chaos soak
//! rapid-transit integrity           run the data-integrity sweep
//! ```
//!
//! Run options:
//! `--pattern lfp|lrp|lw|gfp|grp|gw` (default gw),
//! `--sync none|portion|per-proc:N|total:N` (default per-proc:10),
//! `--compute MS` (default 30; lw defaults to 10), `--procs N`,
//! `--disks N`, `--blocks N`, `--prefetch`, `--lead N`,
//! `--policy oracle|obl|learner`, `--seed N`, `--csv`,
//! `--faults SPECS`, `--replicas N`, `--io-timeout MS`,
//! `--queue-depth N`, `--prefetch-credits N`, `--verify`, `--scrub`,
//! `--trace-out FILE`, `--sample-every MS`.

use std::process::ExitCode;

use rapid_transit::cli::{build_config, flag_value, has_flag, parse_pattern};
use rapid_transit::core::experiment::{
    paper_grid, run_experiment, run_experiment_observed, run_experiment_traced, run_pair,
    run_pairs_parallel,
};
use rapid_transit::core::report::Table;
use rapid_transit::core::trace::{replay_obl, Trace};
use rapid_transit::core::{ExperimentConfig, ObsConfig, PrefetchConfig, RunMetrics};
use rapid_transit::patterns::{AccessPattern, SyncStyle};
use rapid_transit::sim::SimDuration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", USAGE);
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "grid" => cmd_grid(rest),
        "lead" => cmd_lead(rest),
        "sweep-compute" => cmd_sweep_compute(rest),
        "trace" => cmd_trace(rest),
        "trace-check" => cmd_trace_check(rest),
        "perf" => cmd_perf(rest),
        "faults" => cmd_faults(rest),
        "crashes" => cmd_crashes(rest),
        "soak" => cmd_soak(rest),
        "integrity" => cmd_integrity(rest),
        "tail" => cmd_tail(rest),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", USAGE);
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: rapid-transit <command> [options]

commands:
  run            one experiment (see --pattern/--sync/--prefetch/...)
  grid [--csv]   the paper's full grid, prefetch off vs on
  lead <pat>     the minimum-prefetch-lead sweep for lfp|gfp|lw|gw
  sweep-compute  the computation sweep of Fig. 12
  trace <pat>    record one run's access trace and analyze it off-line
  trace-check F  validate an exported Perfetto trace file (well-formed,
                 spans per track in order, attribution sums exact)
  perf           measure the fixed perf slice, update BENCH_core.json
                 (--label L, --out FILE, --quick, --check,
                  --threads LIST scaling-curve thread counts, e.g. 1,2,4;
                  RT_THREADS=N overrides the default when --threads absent)
  faults         run the fault-injection sweep, write BENCH_faults.json
                 (--out FILE, --smoke, --check)
  crashes        run the node-crash sweep (crash/rejoin/cascade over all
                 six patterns, with per-event invariants and terminal
                 leak checks), write BENCH_crash.json
                 (--out FILE, --smoke, --check)
  soak           run the overload/chaos soak, write BENCH_overload.json
                 (--out FILE, --smoke, --check)
  integrity      run the data-integrity sweep (corruption, verify,
                 read-repair, scrub), write BENCH_integrity.json
                 (--out FILE, --smoke, --check)
  tail           run the tail-tolerance sweep (stragglers/outages/crashes
                 under timeout-only vs hedged vs hedged+budget+breaker),
                 write BENCH_tail.json (--out FILE, --smoke, --check)

run options:
  --pattern P    lfp|lrp|lw|gfp|grp|gw          (default gw)
  --sync S       none|portion|per-proc:N|total:N (default per-proc:10)
  --compute MS   mean per-block computation in ms
  --procs N      processors (= nodes)            (default 20)
  --disks N      disks                           (default = procs)
  --blocks N     file blocks = total reads       (default 2000)
  --prefetch     enable prefetching
  --lead N       minimum prefetch lead
  --policy K     oracle|obl|learner              (default oracle)
  --seed N       random seed
  --csv          machine-readable output where applicable

telemetry options (run):
  --trace-out F  record spans/instants/gauges and write a Perfetto
                 (Chrome Trace Event) JSON file to F; recording is inert,
                 the run's numbers are identical with or without it
  --sample-every MS epoch gauge-sampling period (default 50, 0 disables;
                 only meaningful with --trace-out)

fault options (run):
  --faults SPECS comma-separated fault specs, repeatable:
                   straggler:<disk>:x<factor>[@<from>[-<until>]]
                   flaky:<disk>:p<prob>[@<from>[-<until>]]
                   fail:<disk>@<from>[-<until>]
                   corrupt:<disk>:p<prob>[@<from>[-<until>]]
                   crash:<node>@<time>[:rejoin@<time>]
                 durations: 5s, 200ms, or bare milliseconds
  --replicas N   rotated-interleave file copies for redirects/repair
  --io-timeout MS demand-read timeout (redirects when replicas exist)

tail-tolerance options (run):
  --hedge MS[:xM] duplicate a slow demand fetch to the next replica after
                 MS ms (or M x the device's latency EWMA once trusted);
                 first completion wins, the loser is cancelled
  --retry-budget N[:R] token bucket over timeout-retries and hedges:
                 capacity N, refilled R tokens (default 0.1) per
                 successful disk completion; exhausted => wait patiently
  --breaker T[:HOLD[:HALF]] per-device circuit breaker: open when the
                 error/timeout EWMA crosses T, hold open HOLD ms
                 (default 200), then half-open probe for HALF ms
                 (default 200); open devices are skipped by demand
                 replica selection, prefetch, hedges, and the scrubber

integrity options (run):
  --verify       checksum-verify every cache fill (forced on whenever a
                 corrupt window is scheduled)
  --scrub        scrub blocks in idle time, repairing corrupt copies
                 ahead of demand

overload options (run):
  --queue-depth N     bound each device queue at N waiting requests
  --prefetch-credits N enable the prefetch admission controller with an
                 N-credit pool (throttles the daemon under pressure)";

/// A `p50/p95/p99` table cell from one of [`RunMetrics`]' quantile
/// accessors.
fn quantile_cell(m: &RunMetrics, q: fn(&RunMetrics, f64) -> f64) -> String {
    format!("{:.2}/{:.2}/{:.2}", q(m, 0.50), q(m, 0.95), q(m, 0.99))
}

fn metric_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    vec![
        (
            "total time (ms)",
            format!("{:.1}", m.total_time.as_millis_f64()),
        ),
        ("avg read time (ms)", format!("{:.2}", m.mean_read_ms())),
        (
            "read p50/p95/p99 (ms)",
            quantile_cell(m, RunMetrics::read_quantile_ms),
        ),
        ("hit ratio", format!("{:.3}", m.hit_ratio)),
        ("ready hits", m.ready_hits.to_string()),
        ("unready hits", m.unready_hits.to_string()),
        ("misses", m.misses.to_string()),
        ("avg hit-wait (ms)", format!("{:.2}", m.mean_hit_wait_ms())),
        (
            "hit-wait p50/p95/p99 (ms)",
            quantile_cell(m, RunMetrics::hit_wait_quantile_ms),
        ),
        (
            "disk response (ms)",
            format!("{:.2}", m.mean_disk_response_ms()),
        ),
        (
            "disk resp p50/p95/p99 (ms)",
            quantile_cell(m, RunMetrics::disk_response_quantile_ms),
        ),
        ("disk ops", m.disk_ops.to_string()),
        ("prefetches", m.prefetches.to_string()),
        ("failed actions", m.failed_actions.to_string()),
        (
            "avg action (ms)",
            format!("{:.2}", m.action_time.mean_millis()),
        ),
        (
            "avg overrun (ms)",
            format!("{:.2}", m.overrun.mean_millis()),
        ),
        (
            "avg sync wait (ms)",
            format!("{:.2}", m.sync_wait.mean_millis()),
        ),
        ("barriers", m.barriers.to_string()),
        (
            "finish skew (ms)",
            format!("{:.1}", m.finish_skew().as_millis_f64()),
        ),
    ]
}

/// Fault-path rows, shown only when the run injected faults.
fn fault_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    let f = &m.faults;
    vec![
        ("io errors", f.io_errors.to_string()),
        ("retries", f.retries.to_string()),
        ("retries exhausted", f.retries_exhausted.to_string()),
        ("timeouts", f.timeouts.to_string()),
        ("redirects", f.redirects.to_string()),
        ("aborted prefetches", f.aborted_prefetches.to_string()),
        ("degraded skips", f.degraded_skips.to_string()),
        ("degraded intervals", f.degraded_intervals.to_string()),
        (
            "degraded time (ms)",
            format!("{:.1}", f.degraded_time.as_millis_f64()),
        ),
    ]
}

/// Integrity rows, shown only when the integrity layer is active.
fn integrity_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    let ig = &m.integrity;
    vec![
        ("corruptions", ig.corruptions.to_string()),
        ("detections", ig.detections.to_string()),
        ("read-repairs", ig.repairs.to_string()),
        ("repair rewrites", ig.rewrites.to_string()),
        ("blocks scrubbed", ig.scrubbed.to_string()),
        ("scrub detections", ig.scrub_detections.to_string()),
        ("poisoned blocks", ig.poisoned_blocks.to_string()),
        ("failed reads", ig.failed_reads.to_string()),
        ("corrupt delivered", ig.corrupt_delivered.to_string()),
        ("quarantines", ig.quarantines.to_string()),
        (
            "quarantined time (ms)",
            format!("{:.1}", ig.quarantined_time.as_millis_f64()),
        ),
    ]
}

/// Crash rows, shown only when the run injected node crashes.
fn crash_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    let c = &m.crash;
    vec![
        ("crashes", c.crashes.to_string()),
        ("rejoins", c.rejoins.to_string()),
        ("lost reads", c.lost_reads.to_string()),
        ("reclaimed locks", c.reclaimed_locks.to_string()),
        ("reclaimed pins", c.reclaimed_pins.to_string()),
        ("reclaimed waiters", c.reclaimed_waiters.to_string()),
        ("orphaned ios", c.orphaned_ios.to_string()),
        (
            "failover prefetches",
            c.redistributed_prefetches.to_string(),
        ),
    ]
}

/// Tail-tolerance rows, shown only when hedging, retry budgets, or a
/// circuit breaker is configured.
fn tail_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    let t = &m.tail;
    vec![
        ("hedges launched", t.hedges_launched.to_string()),
        ("hedge wins", t.hedge_wins.to_string()),
        ("hedge wasted", t.hedge_wasted.to_string()),
        ("hedge cancels", t.hedge_cancels.to_string()),
        ("retries denied", t.retries_denied.to_string()),
        ("budget spent", t.budget_spent.to_string()),
        ("breaker opens", t.breaker_opens.to_string()),
        ("probe successes", t.probe_successes.to_string()),
        (
            "hedged read ms (p50/p95/p99)",
            format!(
                "{:.2}/{:.2}/{:.2}",
                m.hedged_read_quantile_ms(0.50),
                m.hedged_read_quantile_ms(0.95),
                m.hedged_read_quantile_ms(0.99)
            ),
        ),
    ]
}

/// Overload rows, shown only when queues are bounded or admission is on.
fn overload_rows(m: &RunMetrics) -> Vec<(&'static str, String)> {
    let o = &m.overload;
    vec![
        ("prefetches shed", o.prefetches_shed.to_string()),
        ("prefetches throttled", o.prefetches_throttled.to_string()),
        ("demand parked", o.demand_parked.to_string()),
        (
            "demand behind prefetch",
            o.demand_behind_prefetch.to_string(),
        ),
        ("cache high-water hits", o.cache_high_water_hits.to_string()),
        ("max queue depth", o.max_queue_depth.to_string()),
    ]
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let cfg = build_config(args)?;
    let trace_out = flag_value(args, "--trace-out")?.map(str::to_string);
    let sample_every = match flag_value(args, "--sample-every")? {
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| "bad --sample-every (milliseconds)")?;
            if trace_out.is_none() {
                return Err("--sample-every requires --trace-out".into());
            }
            Some(ms)
        }
        None => None,
    };
    println!("running {} ...", cfg.label());
    let show_faults = cfg.faults.is_active();
    let show_crashes = !cfg.faults.crashes.is_empty();
    let show_integrity = cfg.integrity.active_with(&cfg.faults.plan);
    let show_overload = cfg.queue_depth.is_some() || cfg.admission.enabled;
    let show_tail = cfg.faults.hedge.delay.is_some()
        || cfg.faults.budget.capacity.is_some()
        || cfg.faults.breaker.enabled;
    let m = match &trace_out {
        Some(path) => {
            let mut ocfg = ObsConfig::default();
            if let Some(ms) = sample_every {
                ocfg.sample_every = (ms > 0).then(|| SimDuration::from_millis(ms));
            }
            let (m, data) = run_experiment_observed(&cfg, ocfg);
            std::fs::write(path, data.to_perfetto())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "wrote {path} ({} events, {} series, {} dropped)",
                data.events.len(),
                data.series.len(),
                data.dropped
            );
            m
        }
        None => run_experiment(&cfg),
    };
    let mut rows = metric_rows(&m);
    if show_faults {
        rows.extend(fault_rows(&m));
    }
    if show_crashes {
        rows.extend(crash_rows(&m));
    }
    if show_integrity {
        rows.extend(integrity_rows(&m));
    }
    if show_tail {
        rows.extend(tail_rows(&m));
    }
    if show_overload {
        rows.extend(overload_rows(&m));
    }
    if has_flag(args, "--csv") {
        println!("metric,value");
        for (k, v) in rows {
            println!("{k},{v}");
        }
        return Ok(());
    }
    let mut t = Table::new(&["metric", "value"]);
    for (k, v) in rows {
        t.row(&[k.to_string(), v]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_grid(args: &[String]) -> Result<(), String> {
    let csv = has_flag(args, "--csv");
    let grid = paper_grid();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let pairs = run_pairs_parallel(&grid, threads);
    if csv {
        println!("experiment,total_base_ms,total_pf_ms,read_base_ms,read_pf_ms,hit_pf,disk_base_ms,disk_pf_ms");
        for p in &pairs {
            println!(
                "{},{:.2},{:.2},{:.3},{:.3},{:.4},{:.3},{:.3}",
                p.label,
                p.base.total_time.as_millis_f64(),
                p.prefetch.total_time.as_millis_f64(),
                p.base.mean_read_ms(),
                p.prefetch.mean_read_ms(),
                p.prefetch.hit_ratio,
                p.base.mean_disk_response_ms(),
                p.prefetch.mean_disk_response_ms(),
            );
        }
        return Ok(());
    }
    let mut t = Table::new(&["experiment", "Δtotal %", "Δread %", "hit (pf)"]);
    for p in &pairs {
        t.row(&[
            p.label.clone(),
            format!("{:+.1}", p.total_time_improvement() * 100.0),
            format!("{:+.1}", p.read_time_improvement() * 100.0),
            format!("{:.3}", p.prefetch.hit_ratio),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_lead(args: &[String]) -> Result<(), String> {
    let pattern = match args.first() {
        Some(p) => parse_pattern(p)?,
        None => return Err("lead requires a pattern (lfp|gfp|lw|gw)".into()),
    };
    let scale = if pattern.is_local() { 20.0 } else { 1.0 };
    println!("lead,hit_wait_ms,miss_ratio,read_ms,total_ms");
    for lead in [0u32, 15, 30, 45, 60, 75, 90] {
        let cfg = ExperimentConfig::paper_lead(pattern, lead);
        let m = run_experiment(&cfg);
        println!(
            "{lead},{:.3},{:.4},{:.3},{:.1}",
            m.mean_hit_wait_ms(),
            m.miss_ratio(),
            m.mean_read_ms(),
            m.total_time.as_millis_f64() / scale,
        );
    }
    Ok(())
}

fn cmd_sweep_compute(_args: &[String]) -> Result<(), String> {
    println!("compute_ms,dtotal_pct,dread_pct,read_pf_ms,action_ms");
    for ms in [0u64, 5, 10, 20, 30, 45, 60, 80, 100, 150, 200] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.compute_mean = SimDuration::from_millis(ms);
        let pair = run_pair(&cfg);
        println!(
            "{ms},{:.2},{:.2},{:.3},{:.3}",
            pair.total_time_improvement() * 100.0,
            pair.read_time_improvement() * 100.0,
            pair.prefetch.mean_read_ms(),
            pair.prefetch.action_time.mean_millis(),
        );
    }
    Ok(())
}

fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::json::Json;
    use rapid_transit::bench::trace_check;

    let Some(path) = args.first() else {
        return Err("trace-check requires a file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let stats = trace_check::validate_trace(&doc).map_err(|e| format!("{path}:\n{e}"))?;
    println!(
        "{path}: valid trace — {} events ({} spans, {} read spans with exact \
         attribution, {} instants, {} counter samples), {} dropped",
        stats.events, stats.spans, stats.reads, stats.instants, stats.counters, stats.dropped
    );
    Ok(())
}

fn cmd_perf(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::json::Json;
    use rapid_transit::bench::perf;
    use rapid_transit::cli::{flag_value, parse_thread_list};

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_core.json")
        .to_string();
    let label = flag_value(args, "--label")?
        .unwrap_or("optimized")
        .to_string();
    let quick = has_flag(args, "--quick");
    // Scaling-curve thread counts: --threads wins, then RT_THREADS (a
    // single count, measured against serial), then the default two points.
    let threads_env = std::env::var("RT_THREADS").ok();
    let thread_points = match flag_value(args, "--threads")? {
        Some(list) => parse_thread_list(list)?,
        None => match threads_env.as_deref() {
            Some(v) => {
                let n = parse_thread_list(v)
                    .map_err(|e| format!("RT_THREADS: {e}"))?
                    .into_iter()
                    .max()
                    .unwrap_or(1);
                if n > 1 {
                    vec![1, n]
                } else {
                    vec![1]
                }
            }
            None => perf::default_thread_points(),
        },
    };

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        perf::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let entries = doc.get("entries").and_then(Json::as_array).unwrap_or(&[]);
        println!("{out}: valid perf report, {} entries", entries.len());
        return Ok(());
    }

    println!(
        "measuring perf slice ({}, scaling over {:?} threads ...)",
        if quick { "quick" } else { "full" },
        thread_points,
    );
    let entry = perf::measure(&label, quick, &thread_points);
    println!(
        "{label}: {:.0} events/sec ({} events, {:.0} ms), \
         {:.2} runs/sec ({} runs on {} threads, {:.0} ms), peak {} live events",
        entry.events_per_sec,
        entry.events,
        entry.wall_ms,
        entry.runs_per_sec,
        entry.sweep_runs,
        entry.threads,
        entry.sweep_wall_ms,
        entry.peak_live_events,
    );
    println!(
        "{label}: fork-shared sweep {:.2} runs/sec ({} runs, {:.0} ms) vs plain {:.2}",
        entry.fork_runs_per_sec, entry.fork_runs, entry.fork_wall_ms, entry.runs_per_sec,
    );
    for p in &entry.scaling {
        println!(
            "{label}: farm x{} threads: {:.0} events/sec ({} events, {:.0} ms, speedup {:.2})",
            p.threads, p.events_per_sec, p.events, p.wall_ms, p.speedup,
        );
    }
    let existing = match std::fs::read_to_string(&out) {
        Ok(text) => Some(Json::parse(&text).map_err(|e| format!("{out}: {e}"))?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("cannot read {out}: {e}")),
    };
    let doc = perf::merge_report(existing.as_ref(), &entry);
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::faults;
    use rapid_transit::bench::json::Json;
    use rapid_transit::cli::flag_value;

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_faults.json")
        .to_string();
    let smoke = has_flag(args, "--smoke");

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        faults::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let n = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!("{out}: valid faults report, {n} scenarios");
        return Ok(());
    }

    println!(
        "running fault sweep ({} ...)",
        if smoke { "smoke" } else { "full" }
    );
    let results = faults::run_sweep(smoke).map_err(|e| e.to_string())?;
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}",
        "scenario", "base ms", "pf ms", "errors", "retries", "timeouts", "degr ms"
    );
    for (name, pair) in &results {
        let f = &pair.prefetch.faults;
        println!(
            "{:<16} {:>10.0} {:>10.0} {:>8} {:>8} {:>9} {:>10.0}",
            name,
            pair.base.total_time.as_millis_f64(),
            pair.prefetch.total_time.as_millis_f64(),
            f.io_errors,
            f.retries,
            f.timeouts,
            f.degraded_time.as_millis_f64(),
        );
    }
    let doc = faults::report(&results, smoke);
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_crashes(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::crashes;
    use rapid_transit::bench::json::Json;
    use rapid_transit::cli::flag_value;

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_crash.json")
        .to_string();
    let smoke = has_flag(args, "--smoke");

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        crashes::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let n = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!("{out}: valid crash report, {n} scenarios");
        return Ok(());
    }

    println!(
        "running crash sweep ({} ...)",
        if smoke { "smoke" } else { "full" }
    );
    let results = crashes::run_sweep(smoke).map_err(|e| e.to_string())?;
    println!(
        "{:<14} {:>10} {:>10} {:>7} {:>7} {:>5} {:>9} {:>8} {:>8}",
        "scenario",
        "base ms",
        "pf ms",
        "crashes",
        "rejoins",
        "lost",
        "reclaimed",
        "orphaned",
        "failover"
    );
    let mut violation = None;
    for r in &results {
        let c = &r.pair.prefetch.crash;
        println!(
            "{:<14} {:>10.0} {:>10.0} {:>7} {:>7} {:>5} {:>9} {:>8} {:>8}",
            r.name,
            r.pair.base.total_time.as_millis_f64(),
            r.pair.prefetch.total_time.as_millis_f64(),
            c.crashes,
            c.rejoins,
            c.lost_reads,
            c.reclaimed_locks + c.reclaimed_pins + c.reclaimed_waiters,
            c.orphaned_ios,
            c.redistributed_prefetches,
        );
        if let Some((half, v)) = r.violation() {
            violation = Some(format!("{} ({half}): {v}", r.name));
            write_flight_dump(&out, r.flight());
        }
    }
    if let Some(v) = violation {
        return Err(format!("crash invariant violation — {v}"));
    }
    let doc = crashes::report(&results, smoke);
    crashes::validate_report(&doc).map_err(|e| format!("refusing to write {out}: {e}"))?;
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_tail(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::json::Json;
    use rapid_transit::bench::tail;
    use rapid_transit::cli::flag_value;

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_tail.json")
        .to_string();
    let smoke = has_flag(args, "--smoke");

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        tail::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let n = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!("{out}: valid tail report, {n} scenarios");
        return Ok(());
    }

    println!(
        "running tail sweep ({} ...)",
        if smoke { "smoke" } else { "full" }
    );
    let results = tail::run_sweep(smoke).map_err(|e| e.to_string())?;
    println!(
        "{:<26} {:>9} {:>9} {:>7} {:>5} {:>7} {:>7} {:>6} {:>6}",
        "scenario", "total ms", "p99 ms", "hedges", "wins", "cancels", "denied", "opens", "dups"
    );
    let mut violation = None;
    for r in &results {
        let t = &r.metrics.tail;
        println!(
            "{:<26} {:>9.0} {:>9.2} {:>7} {:>5} {:>7} {:>7} {:>6} {:>6}",
            r.name,
            r.metrics.total_time.as_millis_f64(),
            r.metrics.read_quantile_ms(0.99),
            t.hedges_launched,
            t.hedge_wins,
            t.hedge_cancels,
            t.retries_denied,
            t.breaker_opens,
            t.duplicate_deliveries,
        );
        if let Some(v) = &r.verdict.violation {
            violation = Some(format!("{}: {v}", r.name));
            write_flight_dump(&out, r.verdict.flight.as_ref());
        }
    }
    if let Some(v) = violation {
        return Err(format!("tail invariant violation — {v}"));
    }
    let doc = tail::report(&results, smoke);
    tail::validate_report(&doc).map_err(|e| format!("refusing to write {out}: {e}"))?;
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Write a flight-recorder dump next to the report (`<out>.flight.json`)
/// and print its human-readable tail to stderr, so a failing soak or
/// integrity run leaves a postmortem behind.
fn write_flight_dump(out: &str, flight: Option<&rapid_transit::bench::FlightDump>) {
    let Some(dump) = flight else {
        return;
    };
    let path = format!("{out}.flight.json");
    match std::fs::write(&path, &dump.perfetto) {
        Ok(()) => eprintln!("flight recording written to {path}"),
        Err(e) => eprintln!("cannot write flight recording {path}: {e}"),
    }
    eprintln!("--- flight recorder tail ---");
    eprint!("{}", dump.tail);
}

fn cmd_soak(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::json::Json;
    use rapid_transit::bench::soak;
    use rapid_transit::cli::flag_value;

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_overload.json")
        .to_string();
    let smoke = has_flag(args, "--smoke");

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        soak::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let n = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!("{out}: valid overload report, {n} scenarios");
        return Ok(());
    }

    println!(
        "running overload soak ({} ...)",
        if smoke { "smoke" } else { "full" }
    );
    let results = soak::run_sweep(smoke).map_err(|e| e.to_string())?;
    println!(
        "{:<16} {:>10} {:>10} {:>6} {:>9} {:>7} {:>10} {:>6}",
        "scenario", "base ms", "pf ms", "shed", "throttled", "parked", "soak ev", "runs"
    );
    let mut violation = None;
    for (name, pair, soak) in &results {
        let o = &pair.prefetch.overload;
        println!(
            "{:<16} {:>10.0} {:>10.0} {:>6} {:>9} {:>7} {:>10} {:>6}",
            name,
            pair.base.total_time.as_millis_f64(),
            pair.prefetch.total_time.as_millis_f64(),
            o.prefetches_shed,
            o.prefetches_throttled,
            o.demand_parked,
            soak.events,
            soak.runs,
        );
        if let Some(v) = &soak.violation {
            violation = Some(format!("{name}: {v}"));
            write_flight_dump(&out, soak.flight.as_ref());
        }
    }
    if let Some(v) = violation {
        return Err(format!("soak invariant violation — {v}"));
    }
    let doc = soak::report(&results, smoke);
    soak::validate_report(&doc).map_err(|e| format!("refusing to write {out}: {e}"))?;
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_integrity(args: &[String]) -> Result<(), String> {
    use rapid_transit::bench::integrity;
    use rapid_transit::bench::json::Json;
    use rapid_transit::cli::flag_value;

    let out = flag_value(args, "--out")?
        .unwrap_or("BENCH_integrity.json")
        .to_string();
    let smoke = has_flag(args, "--smoke");

    if has_flag(args, "--check") {
        let text = std::fs::read_to_string(&out).map_err(|e| format!("cannot read {out}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
        integrity::validate_report(&doc).map_err(|e| format!("{out}: {e}"))?;
        let n = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        println!("{out}: valid integrity report, {n} scenarios");
        return Ok(());
    }

    println!(
        "running integrity sweep ({} ...)",
        if smoke { "smoke" } else { "full" }
    );
    let results = integrity::run_sweep(smoke).map_err(|e| e.to_string())?;
    println!(
        "{:<18} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "scenario", "total ms", "corrupt", "caught", "repairs", "scrubbed", "poisoned", "quarant"
    );
    let mut violation = None;
    for (s, outcome) in &results {
        let ig = &outcome.metrics.integrity;
        println!(
            "{:<18} {:>10.0} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
            s.name,
            outcome.metrics.total_time.as_millis_f64(),
            ig.corruptions,
            ig.detections + ig.scrub_detections,
            ig.repairs,
            ig.scrubbed,
            ig.poisoned_blocks,
            ig.quarantines,
        );
        if let Some(v) = &outcome.violation {
            violation = Some(format!("{}: {v}", s.name));
            write_flight_dump(&out, outcome.flight.as_ref());
        }
    }
    if let Some(v) = violation {
        return Err(format!("integrity invariant violation — {v}"));
    }
    let doc = integrity::report(&results, smoke);
    integrity::validate_report(&doc).map_err(|e| format!("refusing to write {out}: {e}"))?;
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let pattern = match args.first() {
        Some(p) => parse_pattern(p)?,
        None => return Err("trace requires a pattern".into()),
    };
    let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
    cfg.prefetch = PrefetchConfig::paper();
    let (m, trace) = run_experiment_traced(&cfg);
    let merged = trace.merged_reference_string();
    let runs = Trace::run_lengths(&merged);
    let mean_run = if runs.is_empty() {
        0.0
    } else {
        runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64
    };
    let mut t = Table::new(&["trace property", "value"]);
    t.row(&["reads".into(), trace.len().to_string()]);
    t.row(&[
        "global sequentiality".into(),
        format!("{:.3}", trace.global_sequentiality()),
    ]);
    t.row(&[
        "local sequentiality".into(),
        format!("{:.3}", trace.mean_local_sequentiality()),
    ]);
    t.row(&["mean run length".into(), format!("{mean_run:.1}")]);
    t.row(&[
        "interprocess overlap".into(),
        format!("{:.3}", trace.overlap_fraction()),
    ]);
    t.row(&["hit ratio".into(), format!("{:.3}", m.hit_ratio)]);
    t.row(&[
        "OBL replay (local)".into(),
        format!("{:.3}", replay_obl(&trace, 3, 20, false)),
    ]);
    t.row(&[
        "OBL replay (shared)".into(),
        format!("{:.3}", replay_obl(&trace, 3, 20, true)),
    ]);
    print!("{}", t.render());
    Ok(())
}
