//! Argument parsing for the `rapid-transit` command-line tool, kept in the
//! library so it can be unit-tested.

use rt_core::faults::parse_all_fault_specs;
use rt_core::{AdmissionConfig, ExperimentConfig, PolicyKind, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle};
use rt_sim::SimDuration;

/// Return the value following `--name`, if present.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.as_str())),
                None => Err(format!("{name} requires a value")),
            };
        }
    }
    Ok(None)
}

/// Return every value following an occurrence of `--name` (the flag is
/// repeatable).
pub fn flag_values<'a>(args: &'a [String], name: &str) -> Result<Vec<&'a str>, String> {
    let mut values = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            match args.get(i + 1) {
                Some(v) => values.push(v.as_str()),
                None => return Err(format!("{name} requires a value")),
            }
        }
    }
    Ok(values)
}

/// True when the bare flag `--name` is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse a pattern abbreviation (`lfp` … `gw`).
pub fn parse_pattern(s: &str) -> Result<AccessPattern, String> {
    AccessPattern::from_abbrev(s)
        .ok_or_else(|| format!("unknown pattern {s:?} (use lfp|lrp|lw|gfp|grp|gw)"))
}

/// Parse a synchronization style: `none`, `portion`, `per-proc:N`,
/// `total:N`.
pub fn parse_sync(s: &str) -> Result<SyncStyle, String> {
    match s {
        "none" => Ok(SyncStyle::None),
        "portion" => Ok(SyncStyle::EachPortion),
        other => {
            if let Some(n) = other.strip_prefix("per-proc:") {
                n.parse()
                    .map(SyncStyle::BlocksPerProc)
                    .map_err(|_| format!("bad per-proc count in {other:?}"))
            } else if let Some(n) = other.strip_prefix("total:") {
                n.parse()
                    .map(SyncStyle::BlocksTotal)
                    .map_err(|_| format!("bad total count in {other:?}"))
            } else {
                Err(format!("unknown sync style {other:?}"))
            }
        }
    }
}

/// Parse a comma-separated list of worker-thread counts (`1,2,4`), as
/// taken by `perf --threads`. Every count must be a positive integer;
/// duplicates are kept in order (the caller measures each point as given).
pub fn parse_thread_list(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let n: usize = part
            .parse()
            .map_err(|_| format!("bad thread count {part:?} in {s:?}"))?;
        if n == 0 {
            return Err("thread counts must be positive".into());
        }
        out.push(n);
    }
    if out.is_empty() {
        return Err(format!("no thread counts in {s:?}"));
    }
    Ok(out)
}

/// Build an [`ExperimentConfig`] from `run`-style command-line options.
pub fn build_config(args: &[String]) -> Result<ExperimentConfig, String> {
    let pattern = match flag_value(args, "--pattern")? {
        Some(s) => parse_pattern(s)?,
        None => AccessPattern::GlobalWholeFile,
    };
    let sync = match flag_value(args, "--sync")? {
        Some(s) => parse_sync(s)?,
        None => SyncStyle::BlocksPerProc(10),
    };
    if !sync.valid_for(pattern) {
        return Err("portion synchronization cannot be used with lw".into());
    }
    let mut cfg = ExperimentConfig::paper_default(pattern, sync);

    if let Some(v) = flag_value(args, "--procs")? {
        let procs: u16 = v.parse().map_err(|_| "bad --procs")?;
        if procs == 0 {
            return Err("--procs must be positive".into());
        }
        cfg.procs = procs;
        cfg.disks = procs;
        cfg.workload.procs = procs;
    }
    if let Some(v) = flag_value(args, "--disks")? {
        let disks: u16 = v.parse().map_err(|_| "bad --disks")?;
        if disks == 0 {
            return Err("--disks must be positive".into());
        }
        cfg.disks = disks;
    }
    if let Some(v) = flag_value(args, "--blocks")? {
        let blocks: u32 = v.parse().map_err(|_| "bad --blocks")?;
        if blocks == 0 {
            return Err("--blocks must be positive".into());
        }
        cfg.workload.file_blocks = blocks;
        cfg.workload.total_reads = blocks;
    }
    if !cfg.workload.total_reads.is_multiple_of(cfg.procs as u32) {
        return Err(format!(
            "total reads ({}) must divide evenly among {} processors",
            cfg.workload.total_reads, cfg.procs
        ));
    }
    if let Some(v) = flag_value(args, "--compute")? {
        let ms: u64 = v.parse().map_err(|_| "bad --compute")?;
        cfg.compute_mean = SimDuration::from_millis(ms);
    }
    if let Some(v) = flag_value(args, "--seed")? {
        cfg.seed = v.parse().map_err(|_| "bad --seed")?;
    }
    if has_flag(args, "--prefetch") {
        let policy = match flag_value(args, "--policy")? {
            None | Some("oracle") => PolicyKind::Oracle,
            Some("obl") => PolicyKind::Obl { depth: 3 },
            Some("learner") => PolicyKind::PortionLearner { confidence: 2 },
            Some(other) => return Err(format!("unknown policy {other:?}")),
        };
        cfg.prefetch = match policy {
            PolicyKind::Oracle => PrefetchConfig::paper(),
            other => PrefetchConfig::online(other),
        };
        if let Some(v) = flag_value(args, "--lead")? {
            cfg.prefetch.min_lead = v.parse().map_err(|_| "bad --lead")?;
        }
    }

    // Overload knobs: bound the per-device queues, and optionally enable
    // the prefetch admission controller with a credit pool. Both default
    // off, which reproduces the paper's unbounded behavior exactly.
    if let Some(v) = flag_value(args, "--queue-depth")? {
        let depth: u32 = v.parse().map_err(|_| "bad --queue-depth")?;
        if depth == 0 {
            return Err("--queue-depth must be positive".into());
        }
        cfg.queue_depth = Some(depth);
    }
    if let Some(v) = flag_value(args, "--prefetch-credits")? {
        let credits: u32 = v.parse().map_err(|_| "bad --prefetch-credits")?;
        if credits == 0 {
            return Err("--prefetch-credits must be positive".into());
        }
        cfg.admission = AdmissionConfig::on(credits);
    }

    // Fault injection: each --faults value is a comma-separated list of
    // specs — device faults (straggler:7:x4, flaky:3:p0.2@1s-4s,
    // fail:5@2s) and node crashes (crash:3@5s:rejoin@12s). The flag is
    // repeatable.
    for list in flag_values(args, "--faults")? {
        let (plan, crashes) = parse_all_fault_specs(list).map_err(|e| e.to_string())?;
        for f in plan.entries() {
            cfg.faults.plan.push(*f);
        }
        for c in crashes.entries() {
            cfg.faults.crashes.push(*c);
        }
    }
    if let Some(v) = flag_value(args, "--replicas")? {
        cfg.faults.replicas = v.parse().map_err(|_| "bad --replicas")?;
    }
    if let Some(v) = flag_value(args, "--io-timeout")? {
        let ms: u64 = v.parse().map_err(|_| "bad --io-timeout (milliseconds)")?;
        if ms == 0 {
            return Err("--io-timeout must be positive".into());
        }
        cfg.faults.retry.timeout = Some(SimDuration::from_millis(ms));
    }

    // Tail-tolerance knobs. --hedge arms a duplicate fetch against the
    // next replica once a demand read is outstanding past the delay
    // (`<ms>` fixed, or `<ms>:x<mult>` to scale off the device latency
    // EWMA once it is trusted); --retry-budget caps timeout-retries and
    // hedges with a token bucket refilled per successful completion; and
    // --breaker opens a per-device circuit on an error/timeout EWMA so
    // replica selection routes around the sick device until a half-open
    // probe succeeds.
    if let Some(v) = flag_value(args, "--hedge")? {
        let (ms, mult) = match v.split_once(':') {
            Some((ms, m)) => {
                let m = m
                    .strip_prefix('x')
                    .ok_or("bad --hedge (want <ms>[:x<multiplier>])")?;
                (ms, Some(m))
            }
            None => (v, None),
        };
        let ms: u64 = ms.parse().map_err(|_| "bad --hedge (milliseconds)")?;
        cfg.faults.hedge.delay = Some(SimDuration::from_millis(ms));
        if let Some(m) = mult {
            cfg.faults.hedge.multiplier = m.parse().map_err(|_| "bad --hedge multiplier")?;
        }
    }
    if let Some(v) = flag_value(args, "--retry-budget")? {
        let (cap, refill) = match v.split_once(':') {
            Some((c, r)) => (c, Some(r)),
            None => (v, None),
        };
        let cap: u32 = cap.parse().map_err(|_| "bad --retry-budget capacity")?;
        cfg.faults.budget.capacity = Some(cap);
        if let Some(r) = refill {
            cfg.faults.budget.refill = r.parse().map_err(|_| "bad --retry-budget refill")?;
        }
    }
    if let Some(v) = flag_value(args, "--breaker")? {
        cfg.faults.breaker.enabled = true;
        let mut parts = v.split(':');
        if let Some(t) = parts.next() {
            cfg.faults.breaker.error_threshold =
                t.parse().map_err(|_| "bad --breaker threshold")?;
        }
        if let Some(h) = parts.next() {
            let ms: u64 = h.parse().map_err(|_| "bad --breaker hold (milliseconds)")?;
            cfg.faults.breaker.hold = SimDuration::from_millis(ms);
        }
        if let Some(p) = parts.next() {
            let ms: u64 = p
                .parse()
                .map_err(|_| "bad --breaker half-open (milliseconds)")?;
            cfg.faults.breaker.half_open = SimDuration::from_millis(ms);
        }
        if parts.next().is_some() {
            return Err("bad --breaker (want <threshold>[:<hold-ms>[:<half-open-ms>]])".into());
        }
    }

    // Data-integrity knobs. Checksum verification is forced on whenever a
    // corrupt window is scheduled (corruption can never bypass detection);
    // --verify pays the checksum cost even without corruption, and --scrub
    // lets the daemon spend otherwise-empty idle slots on scrub reads.
    if has_flag(args, "--verify") {
        cfg.integrity.verify = true;
    }
    if has_flag(args, "--scrub") {
        cfg.integrity.scrub = true;
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_the_paper_config() {
        let cfg = build_config(&[]).unwrap();
        assert_eq!(cfg.pattern, AccessPattern::GlobalWholeFile);
        assert_eq!(cfg.sync, SyncStyle::BlocksPerProc(10));
        assert_eq!(cfg.procs, 20);
        assert!(!cfg.prefetch.enabled);
    }

    #[test]
    fn pattern_and_sync_parse() {
        let cfg = build_config(&args(&["--pattern", "lrp", "--sync", "total:200"])).unwrap();
        assert_eq!(cfg.pattern, AccessPattern::LocalRandomPortions);
        assert_eq!(cfg.sync, SyncStyle::BlocksTotal(200));
        assert!(parse_sync("per-proc:7").unwrap() == SyncStyle::BlocksPerProc(7));
        assert!(parse_sync("bogus").is_err());
        assert!(parse_pattern("nope").is_err());
    }

    #[test]
    fn lw_portion_combination_rejected() {
        let err = build_config(&args(&["--pattern", "lw", "--sync", "portion"])).unwrap_err();
        assert!(err.contains("portion"));
    }

    #[test]
    fn machine_shape_flags() {
        let cfg = build_config(&args(&[
            "--procs",
            "8",
            "--blocks",
            "800",
            "--compute",
            "5",
        ]))
        .unwrap();
        assert_eq!(cfg.procs, 8);
        assert_eq!(cfg.disks, 8);
        assert_eq!(cfg.workload.total_reads, 800);
        assert_eq!(cfg.compute_mean, SimDuration::from_millis(5));
        // Explicit --disks overrides the procs default.
        let cfg =
            build_config(&args(&["--procs", "4", "--disks", "2", "--blocks", "100"])).unwrap();
        assert_eq!(cfg.disks, 2);
    }

    #[test]
    fn uneven_division_rejected() {
        let err = build_config(&args(&["--procs", "7", "--blocks", "100"])).unwrap_err();
        assert!(err.contains("divide evenly"));
    }

    #[test]
    fn prefetch_flags() {
        let cfg = build_config(&args(&["--prefetch", "--lead", "30"])).unwrap();
        assert!(cfg.prefetch.enabled);
        assert_eq!(cfg.prefetch.min_lead, 30);
        assert_eq!(cfg.prefetch.policy, PolicyKind::Oracle);
        assert!(!cfg.prefetch.evict_unused);

        let cfg = build_config(&args(&["--prefetch", "--policy", "obl"])).unwrap();
        assert_eq!(cfg.prefetch.policy, PolicyKind::Obl { depth: 3 });
        assert!(cfg.prefetch.evict_unused, "online policies relax eviction");

        assert!(build_config(&args(&["--prefetch", "--policy", "psychic"])).is_err());
    }

    #[test]
    fn missing_value_reported() {
        let err = build_config(&args(&["--pattern"])).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    #[test]
    fn zero_values_rejected() {
        assert!(build_config(&args(&["--procs", "0"])).is_err());
        assert!(build_config(&args(&["--blocks", "0"])).is_err());
        assert!(build_config(&args(&["--disks", "0"])).is_err());
    }

    #[test]
    fn fault_flags_parse() {
        let cfg = build_config(&args(&[
            "--faults",
            "straggler:7:x4,flaky:3:p0.2@1s-4s",
            "--faults",
            "fail:5@2s-6s",
            "--io-timeout",
            "500",
            "--replicas",
            "1",
        ]))
        .unwrap();
        assert_eq!(cfg.faults.plan.entries().len(), 3);
        assert_eq!(cfg.faults.replicas, 1);
        assert_eq!(
            cfg.faults.retry.timeout,
            Some(SimDuration::from_millis(500))
        );
        assert!(cfg.faults.is_active());
    }

    #[test]
    fn tail_flags_parse() {
        let cfg = build_config(&args(&[
            "--replicas",
            "1",
            "--io-timeout",
            "150",
            "--hedge",
            "60:x3.5",
            "--retry-budget",
            "32:0.25",
            "--breaker",
            "0.5:300:250",
        ]))
        .unwrap();
        assert_eq!(cfg.faults.hedge.delay, Some(SimDuration::from_millis(60)));
        assert_eq!(cfg.faults.hedge.multiplier, 3.5);
        assert_eq!(cfg.faults.budget.capacity, Some(32));
        assert_eq!(cfg.faults.budget.refill, 0.25);
        assert!(cfg.faults.breaker.enabled);
        assert_eq!(cfg.faults.breaker.error_threshold, 0.5);
        assert_eq!(cfg.faults.breaker.hold, SimDuration::from_millis(300));
        assert_eq!(cfg.faults.breaker.half_open, SimDuration::from_millis(250));
        assert!(cfg.faults.is_active());

        // Short forms keep the defaults for the optional fields.
        let cfg = build_config(&args(&[
            "--replicas",
            "1",
            "--hedge",
            "40",
            "--retry-budget",
            "8",
            "--breaker",
            "0.6",
        ]))
        .unwrap();
        assert_eq!(cfg.faults.hedge.delay, Some(SimDuration::from_millis(40)));
        assert_eq!(cfg.faults.hedge.multiplier, 2.0);
        assert_eq!(cfg.faults.budget.capacity, Some(8));
        assert_eq!(cfg.faults.budget.refill, 0.1);
        assert!(cfg.faults.breaker.enabled);
        assert_eq!(cfg.faults.breaker.hold, SimDuration::from_millis(200));

        // Hedging needs a replica to hedge onto, and junk is rejected.
        let err = build_config(&args(&["--hedge", "60"])).unwrap_err();
        assert!(err.contains("replica"), "{err}");
        assert!(build_config(&args(&["--hedge", "60:3"])).is_err());
        assert!(build_config(&args(&["--retry-budget", "0"])).is_err());
        assert!(build_config(&args(&["--breaker", "0.5:0"])).is_err());
        assert!(build_config(&args(&["--breaker", "0.5:1:1:1"])).is_err());
    }

    #[test]
    fn fault_flags_validated() {
        // Disk 25 does not exist on the default 20-disk machine.
        let err = build_config(&args(&["--faults", "straggler:25:x4"])).unwrap_err();
        assert!(err.contains("disk 25"), "{err}");
        // A permanent outage needs a replica to redirect to.
        let err = build_config(&args(&["--faults", "fail:3@5s"])).unwrap_err();
        assert!(err.contains("replicas"), "{err}");
        assert!(build_config(&args(&["--faults", "fail:3@5s", "--replicas", "1"])).is_ok());
        // Malformed specs are reported with the offending text.
        let err = build_config(&args(&["--faults", "meteor:3"])).unwrap_err();
        assert!(err.contains("meteor"), "{err}");
        assert!(build_config(&args(&["--io-timeout", "0"])).is_err());
    }

    #[test]
    fn crash_flags_parse() {
        let cfg = build_config(&args(&[
            "--faults",
            "crash:3@5s:rejoin@12s,straggler:7:x4",
            "--faults",
            "crash:9@8s",
        ]))
        .unwrap();
        assert_eq!(cfg.faults.crashes.entries().len(), 2);
        assert_eq!(cfg.faults.crashes.entries()[0].node, 3);
        assert!(cfg.faults.crashes.entries()[0].rejoin.is_some());
        assert_eq!(cfg.faults.crashes.entries()[1].rejoin, None);
        assert_eq!(cfg.faults.plan.entries().len(), 1);
        // Node 25 does not exist on the default 20-proc machine.
        let err = build_config(&args(&["--faults", "crash:25@5s"])).unwrap_err();
        assert!(err.contains("node 25"), "{err}");
        // A rejoin must come after its crash.
        let err = build_config(&args(&["--faults", "crash:3@5s:rejoin@2s"])).unwrap_err();
        assert!(err.contains("rejoin"), "{err}");
    }

    #[test]
    fn integrity_flags_parse() {
        let cfg = build_config(&args(&["--verify", "--scrub"])).unwrap();
        assert!(cfg.integrity.verify);
        assert!(cfg.integrity.scrub);
        assert!(cfg.integrity.active_with(&cfg.faults.plan));
        // Defaults leave the integrity layer off entirely.
        let cfg = build_config(&[]).unwrap();
        assert!(!cfg.integrity.verify);
        assert!(!cfg.integrity.scrub);
        assert!(!cfg.integrity.active_with(&cfg.faults.plan));
        // A corrupt window activates the layer without any flag.
        let cfg = build_config(&args(&["--faults", "corrupt:1:p0.2", "--replicas", "1"])).unwrap();
        assert!(!cfg.integrity.verify);
        assert!(cfg.integrity.active_with(&cfg.faults.plan));
    }

    #[test]
    fn overload_flags_parse() {
        let cfg = build_config(&args(&["--queue-depth", "4", "--prefetch-credits", "8"])).unwrap();
        assert_eq!(cfg.queue_depth, Some(4));
        assert!(cfg.admission.enabled);
        assert_eq!(cfg.admission.prefetch_credits, 8);
        // Defaults leave the overload layer off entirely.
        let cfg = build_config(&[]).unwrap();
        assert_eq!(cfg.queue_depth, None);
        assert!(!cfg.admission.enabled);
        // Zero values are rejected at parse time.
        assert!(build_config(&args(&["--queue-depth", "0"])).is_err());
        assert!(build_config(&args(&["--prefetch-credits", "0"])).is_err());
    }

    #[test]
    fn thread_lists_parse() {
        assert_eq!(parse_thread_list("1,2,4").unwrap(), vec![1, 2, 4]);
        assert_eq!(parse_thread_list(" 8 ").unwrap(), vec![8]);
        assert_eq!(parse_thread_list("2,,3").unwrap(), vec![2, 3]);
        assert!(parse_thread_list("0").is_err());
        assert!(parse_thread_list("two").is_err());
        assert!(parse_thread_list("").is_err());
    }

    #[test]
    fn flag_helpers() {
        let a = args(&["--x", "1", "--y"]);
        assert_eq!(flag_value(&a, "--x").unwrap(), Some("1"));
        assert_eq!(flag_value(&a, "--z").unwrap(), None);
        assert!(has_flag(&a, "--y"));
        assert!(!has_flag(&a, "--w"));
    }
}
