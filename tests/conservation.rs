//! Cross-crate accounting invariants: every read, fetch, and disk
//! operation must balance, for every pattern, synchronization style, and
//! prefetch setting, at paper scale.

use rapid_transit::core::experiment::run_experiment;
use rapid_transit::core::{ExperimentConfig, PrefetchConfig, RunMetrics};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn check(m: &RunMetrics, label: &str) {
    // Every read is classified exactly once.
    assert_eq!(
        m.ready_hits + m.unready_hits + m.misses,
        m.total_reads(),
        "{label}: read classification does not balance"
    );
    // Every miss triggers a demand fetch, except a miss whose allocation
    // spun on pinned buffers and found the block fetched by someone else
    // meanwhile.
    assert!(
        m.demand_fetches <= m.misses,
        "{label}: more fetches than misses"
    );
    assert!(
        m.misses - m.demand_fetches <= m.alloc_retries,
        "{label}: unexplained miss/fetch gap ({} misses, {} fetches, {} retries)",
        m.misses,
        m.demand_fetches,
        m.alloc_retries
    );
    // The disks served exactly the issued fetches.
    assert_eq!(
        m.disk_ops,
        m.demand_fetches + m.prefetches,
        "{label}: disk ops do not balance fetches"
    );
    // Hit-wait observations cover ready and unready hits.
    assert_eq!(
        m.hit_wait.count(),
        m.ready_hits + m.unready_hits,
        "{label}: hit-wait accounting mismatch"
    );
    // All processes finish, and the run's span is the latest finish.
    let max_finish = m.proc_finish.iter().max().expect("procs");
    assert_eq!(
        max_finish.as_nanos(),
        m.total_time.as_nanos(),
        "{label}: total time is not the last finish"
    );
    // Per-process breakdowns add up to the run totals.
    let proc_reads: u64 = m.per_proc.iter().map(|p| p.reads.count()).sum();
    assert_eq!(proc_reads, m.total_reads(), "{label}: per-proc reads drift");
    let proc_hits: u64 = m.per_proc.iter().map(|p| p.hits).sum();
    assert_eq!(
        proc_hits,
        m.ready_hits + m.unready_hits,
        "{label}: per-proc hits drift"
    );
    let proc_pf: u64 = m.per_proc.iter().map(|p| p.prefetches_issued).sum();
    assert_eq!(proc_pf, m.prefetches, "{label}: per-proc prefetches drift");
}

#[test]
fn balances_for_every_grid_cell() {
    for pattern in AccessPattern::ALL {
        for sync in SyncStyle::PAPER {
            if !sync.valid_for(pattern) {
                continue;
            }
            for &prefetch in &[false, true] {
                let mut cfg = ExperimentConfig::paper_default(pattern, sync);
                if prefetch {
                    cfg.prefetch = PrefetchConfig::paper();
                }
                let m = run_experiment(&cfg);
                assert_eq!(
                    m.total_reads(),
                    2000,
                    "{pattern}/{sync}: grid reads must total 2000"
                );
                check(&m, &format!("{pattern}/{sync}/pf={prefetch}"));
            }
        }
    }
}

#[test]
fn oracle_prefetching_never_fetches_unneeded_blocks_in_gw() {
    // gw reads each of 2000 blocks exactly once and nothing is ever reused,
    // so with a mistake-free oracle the disks serve exactly 2000 requests.
    let mut cfg = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
    cfg.prefetch = PrefetchConfig::paper();
    let m = run_experiment(&cfg);
    assert_eq!(
        m.disk_ops, 2000,
        "oracle must fetch each block exactly once"
    );
}

#[test]
fn io_bound_runs_balance_too() {
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalRandomPortions,
    ] {
        let mut cfg = ExperimentConfig::paper_io_bound(pattern, SyncStyle::BlocksTotal(200));
        cfg.prefetch = PrefetchConfig::paper();
        let m = run_experiment(&cfg);
        check(&m, &format!("io-bound/{pattern}"));
    }
}

#[test]
fn lead_runs_balance() {
    for pattern in [
        AccessPattern::LocalFixedPortions,
        AccessPattern::GlobalWholeFile,
    ] {
        let cfg = ExperimentConfig::paper_lead(pattern, 45);
        let m = run_experiment(&cfg);
        let expected = if pattern.is_local() { 40_000 } else { 2000 };
        assert_eq!(m.total_reads(), expected, "{pattern}: lead workload size");
        check(&m, &format!("lead/{pattern}"));
    }
}
