//! Edge-of-envelope configurations: degenerate machine shapes and
//! workloads must still complete and balance.

use rapid_transit::core::experiment::{run_experiment, run_pair};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rapid_transit::sim::SimDuration;

fn tiny(procs: u16, blocks_per_proc: u32) -> ExperimentConfig {
    let total = procs as u32 * blocks_per_proc;
    let mut cfg = ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
    cfg.procs = procs;
    cfg.disks = procs;
    cfg.workload = WorkloadParams {
        procs,
        file_blocks: total,
        total_reads: total,
        ..WorkloadParams::paper()
    };
    cfg.compute_mean = SimDuration::from_millis(1);
    cfg
}

#[test]
fn single_processor_single_disk() {
    // The degenerate "uniprocessor" case: one process, one disk; gw
    // becomes plain sequential reading and OBL-style prefetching works.
    let mut cfg = tiny(1, 50);
    cfg.prefetch = PrefetchConfig::paper();
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 50);
    assert!(m.hit_ratio > 0.5, "sequential reads should be prefetchable");
    // One disk: everything serializes, so the run cannot beat 50 accesses.
    assert!(m.total_time >= SimDuration::from_millis(50 * 30));
}

#[test]
fn one_read_per_process() {
    let cfg = tiny(4, 1);
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 4);
    assert_eq!(m.misses, 4, "nothing to share or prefetch");
}

#[test]
fn more_processes_than_disks() {
    let mut cfg = tiny(8, 25);
    cfg.disks = 2; // heavy disk contention
    let pair = run_pair(&cfg);
    assert_eq!(pair.base.total_reads(), 200);
    // Two disks bound the run: 200 × 30 ms / 2.
    assert!(
        pair.base.total_time >= SimDuration::from_millis(200 / 2 * 30),
        "cannot beat aggregate disk bandwidth"
    );
    // Contention shows up as queueing in the disk response time.
    assert!(pair.base.mean_disk_response_ms() > 30.0);
}

#[test]
fn more_disks_than_processes() {
    let mut cfg = tiny(2, 50);
    cfg.disks = 16;
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 100);
    // Plenty of disks: no queueing at all without prefetching.
    assert!((m.mean_disk_response_ms() - 30.0).abs() < 1.0);
}

#[test]
fn large_ru_sets_act_as_a_bigger_cache() {
    let mut small = tiny(4, 50);
    small.pattern = AccessPattern::LocalWholeFile;
    small.workload.total_reads = 200;
    small.workload.file_blocks = 200;
    let mut large = small.clone();
    large.ru_set_size = 8;
    let m_small = run_experiment(&small);
    let m_large = run_experiment(&large);
    // lw rereads blocks across processes; more demand buffers can only
    // help retention.
    assert!(m_large.hit_ratio >= m_small.hit_ratio);
}

#[test]
fn zero_compute_with_sync_everywhere() {
    let mut cfg = tiny(4, 25);
    cfg.sync = SyncStyle::BlocksPerProc(5);
    cfg.compute_mean = SimDuration::ZERO;
    cfg.prefetch = PrefetchConfig::paper();
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 100);
    assert_eq!(
        m.barriers, 4,
        "barrier every 5 reads, last coincides with exit"
    );
}

#[test]
fn huge_compute_makes_io_invisible() {
    let mut cfg = tiny(4, 10);
    cfg.compute_mean = SimDuration::from_millis(500);
    let pair = run_pair(&cfg);
    // Compute dominates: prefetching can't change much of the total.
    let delta = pair.total_time_improvement().abs();
    assert!(
        delta < 0.25,
        "compute-bound run should be mostly insensitive, saw {delta:.3}"
    );
}

#[test]
fn minimal_prefetch_window() {
    let mut cfg = tiny(4, 25);
    cfg.prefetch = PrefetchConfig {
        buffers_per_proc: 1,
        global_cap_per_proc: 1,
        ..PrefetchConfig::paper()
    };
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 100);
    assert!(m.prefetches > 0, "even one buffer per node prefetches");
}

#[test]
fn lead_larger_than_string_relaxes_to_plain_prefetching() {
    let mut cfg = tiny(4, 10);
    cfg.prefetch = PrefetchConfig {
        min_lead: 10_000, // far beyond the 40-access string
        ..PrefetchConfig::paper()
    };
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 40);
    // End-of-string relaxation applies from the start: prefetching happens.
    assert!(m.prefetches > 0);
}
