//! The observability layer must be *provably inert*: enabling recording
//! — any ring size, any sampling cadence — cannot change a single
//! simulated outcome, because recording never schedules events, never
//! touches the RNG, and never perturbs ordering. These tests pin that
//! property, the exactness of per-read latency attribution, and the
//! flight recorder's postmortem path.

use proptest::prelude::*;

use rapid_transit::bench::json::Json;
use rapid_transit::bench::trace_check::validate_trace;
use rapid_transit::bench::{soak, FlightDump};
use rapid_transit::core::experiment::{
    run_experiment, run_experiment_observed, run_experiment_traced,
};
use rapid_transit::core::faults::parse_fault_specs;
use rapid_transit::core::{
    AdmissionConfig, ExperimentConfig, ObsConfig, PrefetchConfig, RunMetrics, World,
};
use rapid_transit::patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rapid_transit::sim::{run_observed, ObservedEnd, Scheduler, SimDuration};

/// The fields that pin a run bit-for-bit.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        m.total_time.as_nanos(),
        m.reads.total().as_nanos(),
        m.ready_hits,
        m.unready_hits,
        m.misses,
        m.disk_ops,
        m.prefetches,
        m.barriers,
    )
}

/// Every paper pattern, with and without prefetching, produces the
/// bit-identical fingerprint whether observation is off, on with the
/// default ring, or on with the tiny flight-recorder ring (so eviction
/// under overwrite pressure is covered too).
#[test]
fn recording_is_inert_for_every_paper_pattern() {
    for pattern in AccessPattern::ALL {
        for &pf in &[false, true] {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if pf {
                cfg.prefetch = PrefetchConfig::paper();
            }
            let plain = fingerprint(&run_experiment(&cfg));
            let (observed, data) = run_experiment_observed(&cfg, ObsConfig::default());
            assert_eq!(
                plain,
                fingerprint(&observed),
                "{pattern}/pf={pf}: recording with the default ring changed the run"
            );
            assert!(
                !data.events.is_empty(),
                "{pattern}/pf={pf}: observed run recorded nothing"
            );
            let (tiny, _) = run_experiment_observed(&cfg, ObsConfig::flight_recorder());
            assert_eq!(
                plain,
                fingerprint(&tiny),
                "{pattern}/pf={pf}: the flight-recorder ring changed the run"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Attribution telescopes: for every completed read — under any mix of
    /// device faults, silent corruption, bounded queues, prefetch
    /// admission, hedged reads, retry budgets, and circuit breakers —
    /// the eight latency components sum *exactly* (integer nanoseconds)
    /// to the observed read time.
    #[test]
    fn attribution_sums_to_read_time_under_chaos(
        seed in any::<u64>(),
        pattern in prop::sample::select(AccessPattern::ALL.to_vec()),
        bounded_queue in any::<bool>(),
        admission in any::<bool>(),
        straggler in any::<bool>(),
        flaky in any::<bool>(),
        corrupt in any::<bool>(),
        hedge in any::<bool>(),
        budget in any::<bool>(),
        breaker in any::<bool>(),
    ) {
        let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.compute_mean = SimDuration::from_millis(1);
        cfg.seed = seed;
        cfg.prefetch = PrefetchConfig::paper();
        if bounded_queue {
            cfg.queue_depth = Some(2);
        }
        if admission {
            cfg.admission = AdmissionConfig::on(4);
        }
        let mut specs = Vec::new();
        if straggler {
            specs.push("straggler:0:x4@10ms-400ms");
        }
        if flaky {
            specs.push("flaky:1:p0.1");
        }
        if corrupt {
            specs.push("corrupt:2:p0.2@0ms-800ms");
        }
        if !specs.is_empty() {
            cfg.faults.plan = parse_fault_specs(&specs.join(",")).unwrap();
        }
        // The tail layer feeds the hedge_wait component; any knob needs a
        // replica to steer to and a timeout to drive the retry machinery.
        if hedge || budget || breaker {
            cfg.faults.replicas = 1;
            cfg.faults.retry.timeout = Some(SimDuration::from_millis(150));
        }
        if hedge {
            cfg.faults.hedge.delay = Some(SimDuration::from_millis(40));
        }
        if budget {
            cfg.faults.budget.capacity = Some(4);
            cfg.faults.budget.refill = 0.25;
        }
        if breaker {
            cfg.faults.breaker.enabled = true;
            cfg.faults.breaker.error_threshold = 0.5;
        }
        let (m, trace) = run_experiment_traced(&cfg);
        prop_assert_eq!(trace.len() as u64, m.total_reads());
        for (i, ev) in trace.events().iter().enumerate() {
            prop_assert_eq!(
                ev.attr.sum(),
                ev.read_time().as_nanos(),
                "read {} ({:?}): attribution {:?} does not telescope to {} ns",
                i, ev.outcome, ev.attr, ev.read_time().as_nanos()
            );
        }
    }
}

/// A mid-run invariant violation leaves a usable postmortem: the flight
/// recorder's Perfetto dump parses, passes the full trace validator
/// (track discipline, exact attribution sums), and the human-readable
/// tail is non-empty.
#[test]
fn forced_violation_yields_valid_flight_dump() {
    let cfg = soak::scenarios()
        .unwrap()
        .into_iter()
        .next()
        .expect("soak scenario set is non-empty")
        .cfg;
    let mut world = World::new(cfg);
    world.enable_obs(ObsConfig::flight_recorder());
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    let end = run_observed(&mut world, &mut sched, 1_000_000, |_, events| {
        if events >= 2_000 {
            Err("synthetic tripwire".to_string())
        } else {
            Ok(())
        }
    });
    match end {
        ObservedEnd::Violation {
            message, events, ..
        } => {
            assert!(message.contains("synthetic tripwire"), "{message}");
            assert!(events >= 2_000);
        }
        other => panic!("expected a violation, got {other:?}"),
    }
    let dump = FlightDump::take(&mut world).expect("observed world yields a dump");
    let doc = Json::parse(&dump.perfetto).expect("flight dump parses as JSON");
    let stats = validate_trace(&doc).expect("flight dump passes the trace validator");
    assert!(stats.events > 0, "empty flight recording");
    assert!(!dump.tail.is_empty(), "empty human-readable tail");
}
