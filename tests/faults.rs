//! Integration tests for the fault-injection subsystem: determinism of
//! faulty runs, the empty-plan identity (a zero-fault configuration must
//! be indistinguishable from no fault layer at all, down to the engine's
//! event count), and the graceful-degradation acceptance bound on the
//! paper's `lfp` pattern.

use proptest::prelude::*;

use rapid_transit::core::experiment::{run_experiment, run_experiment_instrumented, run_pair};
use rapid_transit::core::faults::{parse_fault_specs, FaultConfig};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig, RunMetrics};
use rapid_transit::disk::{DiskId, FaultPlan};
use rapid_transit::patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rapid_transit::sim::{SimDuration, SimTime};

/// A small machine the fault proptests can afford to run repeatedly.
fn small_cfg(pattern: AccessPattern, prefetch: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
    cfg.procs = 4;
    cfg.disks = 4;
    cfg.workload = WorkloadParams {
        procs: 4,
        file_blocks: 200,
        total_reads: 200,
        ..WorkloadParams::paper()
    };
    if prefetch {
        cfg.prefetch = PrefetchConfig::paper();
    } else {
        cfg.prefetch = PrefetchConfig::disabled();
    }
    cfg
}

/// Everything observable a run produced, as a comparable value.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64, Vec<u64>) {
    (
        m.total_time.as_nanos(),
        m.reads.mean().as_nanos(),
        m.ready_hits,
        m.unready_hits,
        m.misses,
        m.disk_ops,
        vec![
            m.faults.io_errors,
            m.faults.retries,
            m.faults.retries_exhausted,
            m.faults.timeouts,
            m.faults.redirects,
            m.faults.aborted_prefetches,
            m.faults.degraded_skips,
            m.faults.stale_completions,
            m.faults.degraded_intervals,
            m.faults.degraded_time.as_nanos(),
        ],
    )
}

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn at(n: u64) -> SimTime {
    SimTime::ZERO + ms(n)
}

/// One random fault window on the 4-disk test machine:
/// (disk, kind selector, magnitude, window start ms, window length ms).
fn fault_strategy() -> impl Strategy<Value = (u16, u8, u32, u64, u64)> {
    ((0u16..4, 0u8..3, 1u32..80), (0u64..1500, 50u64..2000))
        .prop_map(|((disk, kind, mag), (from, len))| (disk, kind, mag, from, len))
}

fn plan_from(faults: &[(u16, u8, u32, u64, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(disk, kind, magnitude, from, len) in faults {
        let disk = DiskId(disk);
        let from = at(from);
        // Open-endedness derived from the drawn length so both shapes are
        // exercised (outages stay repaired: open-ended ones need replicas).
        let until = (len % 5 != 0).then(|| from + ms(len));
        plan = match kind {
            0 => plan.straggler(disk, 1.0 + magnitude as f64 / 10.0, from, until),
            1 => plan.flaky(disk, (magnitude as f64 / 100.0).min(0.8), from, until),
            _ => plan.outage(disk, from, Some(from + ms(len))),
        };
    }
    plan
}

/// One random silent-corruption window on the 4-disk test machine:
/// (disk, probability percent, window start ms, window length ms).
fn corrupt_strategy() -> impl Strategy<Value = (u16, u32, u64, u64)> {
    ((0u16..4, 5u32..80), (0u64..1500, 50u64..2000))
        .prop_map(|((disk, pct), (from, len))| (disk, pct, from, len))
}

fn corrupt_plan_from(windows: &[(u16, u32, u64, u64)]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(disk, pct, from, len) in windows {
        let from = at(from);
        let until = (len % 5 != 0).then(|| from + ms(len));
        plan = plan.corrupt(DiskId(disk), pct as f64 / 100.0, from, until);
    }
    plan
}

/// The integrity counters of a run, as a comparable value.
fn ig_fingerprint(m: &RunMetrics) -> Vec<u64> {
    vec![
        m.integrity.corruptions,
        m.integrity.detections,
        m.integrity.repairs,
        m.integrity.rewrites,
        m.integrity.scrubbed,
        m.integrity.scrub_detections,
        m.integrity.poisoned_blocks,
        m.integrity.failed_reads,
        m.integrity.corrupt_delivered,
        m.integrity.quarantines,
        m.integrity.quarantined_time.as_nanos(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any fault plan, same seed: byte-identical results, fault counters
    /// included.
    #[test]
    fn faulty_runs_are_deterministic(
        faults in prop::collection::vec(fault_strategy(), 1..4),
        prefetch in any::<bool>(),
        timeout in prop::option::of(200u64..2000),
        seed in any::<u64>(),
    ) {
        let mut cfg = small_cfg(AccessPattern::LocalFixedPortions, prefetch);
        cfg.seed = seed;
        cfg.faults.plan = plan_from(&faults);
        cfg.faults.retry.timeout = timeout.map(ms);
        cfg.validate().unwrap();
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// A configuration whose plan is empty must match the no-fault
    /// baseline exactly, whatever the rest of the fault config says.
    #[test]
    fn empty_plan_matches_baseline(
        pattern in prop::sample::select(AccessPattern::ALL.to_vec()),
        prefetch in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut base = small_cfg(pattern, prefetch);
        base.seed = seed;
        base.faults = FaultConfig::none();
        let mut empty = base.clone();
        empty.faults.plan = FaultPlan::none();
        empty.faults.degrade.alpha = 0.7; // irrelevant without faults
        let a = run_experiment(&base);
        let b = run_experiment(&empty);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    /// The end-to-end integrity guarantee, under any corruption plan the
    /// grammar can express: the run completes with every access accounted
    /// for, never delivers a corrupt payload as clean, detects every
    /// corrupt completion it sees, and is deterministic down to the
    /// integrity counters — with or without replicas, scrubbing, or
    /// prefetching.
    #[test]
    fn random_corruption_is_never_delivered(
        windows in prop::collection::vec(corrupt_strategy(), 1..4),
        replicas in 0u16..=2,
        scrub in any::<bool>(),
        prefetch in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut cfg = small_cfg(AccessPattern::LocalFixedPortions, prefetch);
        cfg.seed = seed;
        cfg.faults.plan = corrupt_plan_from(&windows);
        cfg.faults.replicas = replicas;
        cfg.integrity.scrub = scrub;
        cfg.validate().unwrap();
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);

        // Never a corrupt block to a reader, and every access terminates.
        prop_assert_eq!(a.integrity.corrupt_delivered, 0);
        prop_assert_eq!(a.reads.count(), 200);
        // Every corrupt completion the engine saw was caught by a check:
        // demand-path verification or the scrubber, nothing slips through.
        prop_assert_eq!(
            a.integrity.corruptions,
            a.integrity.detections + a.integrity.scrub_detections
        );
        // Read-repair needs a healthy copy to fetch; without replicas the
        // only resolution for a corrupt block is poisoning.
        if replicas == 0 {
            prop_assert_eq!(a.integrity.repairs, 0);
            prop_assert_eq!(a.integrity.rewrites, 0);
        }
        // Poisoned blocks surface as typed failures, never silently.
        if a.integrity.failed_reads > 0 {
            prop_assert!(a.integrity.poisoned_blocks > 0);
        }

        // Deterministic, integrity counters included.
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(ig_fingerprint(&a), ig_fingerprint(&b));
    }
}

/// The empty-plan identity down to the engine itself: an inactive fault
/// layer must not schedule a single extra event on any paper-default
/// pattern, with or without prefetching.
#[test]
fn inactive_fault_layer_adds_no_events() {
    for pattern in AccessPattern::ALL {
        for prefetch in [false, true] {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if prefetch {
                cfg.prefetch = PrefetchConfig::paper();
            }
            let (m_base, perf_base) = run_experiment_instrumented(&cfg);
            cfg.faults = FaultConfig::none();
            let (m_none, perf_none) = run_experiment_instrumented(&cfg);
            assert_eq!(
                fingerprint(&m_base),
                fingerprint(&m_none),
                "{pattern}/pf={prefetch}: explicit empty fault config changed the run"
            );
            assert_eq!(
                perf_base.events, perf_none.events,
                "{pattern}/pf={prefetch}: inactive fault layer changed the event count"
            );
            assert_eq!(m_none.faults.io_errors, 0);
            assert_eq!(m_none.faults.retries, 0);
            assert_eq!(m_none.faults.timeouts, 0);
        }
    }
}

/// An armed timeout policy with no faults must change no outcome: every
/// timer is cancelled or lands after delivery, and the metrics fingerprint
/// (event counts aside) stays identical to the fault-free run.
#[test]
fn unfired_timeouts_change_nothing() {
    for prefetch in [false, true] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::LocalFixedPortions,
            SyncStyle::BlocksPerProc(10),
        );
        if prefetch {
            cfg.prefetch = PrefetchConfig::paper();
        }
        let baseline = run_experiment(&cfg);
        // A 10-second timeout can never fire on a healthy 30 ms disk.
        cfg.faults.retry.timeout = Some(ms(10_000));
        let timed = run_experiment(&cfg);
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&timed),
            "pf={prefetch}: a never-firing timeout perturbed the run"
        );
    }
}

/// Acceptance bound (§ISSUE 2): with a straggler plan on the paper's
/// `lfp` pattern, degradation engages and prefetching never loses more
/// than the no-fault gap against the non-prefetching run.
#[test]
fn lfp_straggler_degrades_gracefully() {
    let cfg = |faulty: bool| {
        let mut c = ExperimentConfig::paper_default(
            AccessPattern::LocalFixedPortions,
            SyncStyle::BlocksPerProc(10),
        );
        if faulty {
            c.faults.plan = parse_fault_specs("straggler:7:x4").unwrap();
        }
        c
    };
    let healthy = run_pair(&cfg(false));
    let faulty = run_pair(&cfg(true));

    // The daemon noticed the sick device and backed off.
    let f = &faulty.prefetch.faults;
    assert!(f.degraded_intervals > 0, "device never classified degraded");
    assert!(f.degraded_skips > 0, "daemon never skipped the sick device");
    assert!(
        f.degraded_time > SimDuration::ZERO,
        "no degraded time recorded"
    );

    // Prefetching may lose its edge under the straggler, but it must not
    // fall behind demand-only by more than it was ahead without faults.
    let healthy_gap =
        healthy.base.total_time.as_nanos() as i128 - healthy.prefetch.total_time.as_nanos() as i128;
    let faulty_loss =
        faulty.prefetch.total_time.as_nanos() as i128 - faulty.base.total_time.as_nanos() as i128;
    assert!(
        faulty_loss <= healthy_gap,
        "prefetch under a straggler lost {faulty_loss} ns, more than the \
         no-fault gap of {healthy_gap} ns"
    );

    // The straggler slows everything down; sanity-check the fault actually
    // bit, so this test cannot silently pass on a no-op plan.
    assert!(faulty.base.total_time > healthy.base.total_time);
}
