//! Reproducibility: the simulation is a pure function of its
//! configuration. Identical configs give bit-identical metrics; seeds and
//! parallel execution behave as documented.

use rapid_transit::core::experiment::{run_experiment, run_pairs_parallel};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig, RunMetrics};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        AccessPattern::GlobalRandomPortions,
        SyncStyle::BlocksPerProc(10),
    );
    cfg.prefetch = PrefetchConfig::paper();
    cfg.seed = seed;
    cfg
}

fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.total_time.as_nanos(),
        m.reads.mean().as_nanos(),
        m.ready_hits,
        m.unready_hits,
        m.misses,
        m.disk_ops,
    )
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = run_experiment(&cfg(7));
    let b = run_experiment(&cfg(7));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.proc_finish, b.proc_finish);
    assert_eq!(a.sync_wait.count(), b.sync_wait.count());
    assert_eq!(a.action_time.count(), b.action_time.count());
}

#[test]
fn different_seeds_change_stochastic_runs() {
    // grp draws random portions and exponential compute delays from the
    // seed, so two seeds must differ somewhere observable.
    let a = run_experiment(&cfg(1));
    let b = run_experiment(&cfg(2));
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "distinct seeds produced identical runs"
    );
}

#[test]
fn deterministic_even_with_zero_compute_and_fixed_pattern() {
    // gw with no computation has no randomness at all: the run must be
    // identical across *any* seeds.
    let mk = |seed| {
        let mut c =
            ExperimentConfig::paper_io_bound(AccessPattern::GlobalWholeFile, SyncStyle::None);
        c.prefetch = PrefetchConfig::paper();
        c.seed = seed;
        run_experiment(&c)
    };
    let a = mk(1);
    let b = mk(99);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_sweep_equals_serial() {
    let configs: Vec<ExperimentConfig> = (0..4).map(|i| cfg(100 + i)).collect();
    let serial: Vec<_> = configs
        .iter()
        .map(rapid_transit::core::experiment::run_pair)
        .collect();
    for threads in [1, 2, 8] {
        let parallel = run_pairs_parallel(&configs, threads);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(fingerprint(&s.base), fingerprint(&p.base));
            assert_eq!(fingerprint(&s.prefetch), fingerprint(&p.prefetch));
        }
    }
}
