//! End-to-end integration tests asserting the paper's qualitative claims
//! on the real (20-processor) configuration. Each test corresponds to a
//! result in §V; the benchmark harness prints the full tables, these tests
//! pin the *shape* so regressions are caught by `cargo test`.

use rapid_transit::core::experiment::{run_experiment, run_pair};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle};
use rapid_transit::sim::SimDuration;

fn paper_pair(pattern: AccessPattern, sync: SyncStyle) -> rapid_transit::core::RunPair {
    run_pair(&ExperimentConfig::paper_default(pattern, sync))
}

#[test]
fn fig3_prefetching_reduces_read_time_for_gw() {
    let pair = paper_pair(AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
    assert!(
        pair.read_time_improvement() > 0.35,
        "gw read-time improvement too small: {:.3}",
        pair.read_time_improvement()
    );
}

#[test]
fn fig4_hit_ratio_transformed_by_prefetching() {
    let pair = paper_pair(AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
    assert!(
        pair.base.hit_ratio < 0.05,
        "gw base should miss nearly always"
    );
    assert!(
        pair.prefetch.hit_ratio > 0.69,
        "paper: every prefetch run exceeds 0.69, got {:.3}",
        pair.prefetch.hit_ratio
    );
}

#[test]
fn fig4_lw_has_locality_even_without_prefetching() {
    let pair = paper_pair(AccessPattern::LocalWholeFile, SyncStyle::BlocksPerProc(10));
    assert!(
        pair.base.hit_ratio > 0.5,
        "lw interprocess temporal locality should produce hits without \
         prefetching, got {:.3}",
        pair.base.hit_ratio
    );
}

#[test]
fn fig5_unready_hits_are_significant() {
    let pair = paper_pair(AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
    let m = &pair.prefetch;
    assert!(
        m.unready_fraction() > 0.1,
        "unready hits should be a significant portion, got {:.3}",
        m.unready_fraction()
    );
    // Paper: average hit-wait small (70% of runs < 6 ms, all < 17 ms).
    assert!(
        m.mean_hit_wait_ms() < 17.0,
        "hit-wait out of the paper's band: {:.2} ms",
        m.mean_hit_wait_ms()
    );
}

#[test]
fn fig7_disk_response_worsens_under_prefetching() {
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalFixedPortions,
    ] {
        let pair = paper_pair(pattern, SyncStyle::BlocksPerProc(10));
        assert!(
            pair.prefetch.mean_disk_response_ms() >= pair.base.mean_disk_response_ms(),
            "{pattern}: prefetching should increase disk contention"
        );
    }
}

#[test]
fn fig8_lw_gains_most_from_prefetching() {
    let lw = paper_pair(AccessPattern::LocalWholeFile, SyncStyle::None);
    let lfp = paper_pair(AccessPattern::LocalFixedPortions, SyncStyle::None);
    assert!(
        lw.total_time_improvement() > lfp.total_time_improvement(),
        "lw (every prefetched block helps all 20 processes) must beat lfp"
    );
    assert!(
        lw.total_time_improvement() > 0.3,
        "lw improvement too small: {:.3}",
        lw.total_time_improvement()
    );
}

#[test]
fn fig9_sync_wait_grows_under_prefetching_somewhere() {
    // The paper: prefetching usually increases synchronization time. Assert
    // it happens for at least one of the synchronizing patterns.
    let increased = [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalFixedPortions,
        AccessPattern::GlobalRandomPortions,
    ]
    .iter()
    .map(|&p| paper_pair(p, SyncStyle::BlocksPerProc(10)))
    .any(|pair| pair.prefetch.sync_wait.mean_millis() > pair.base.sync_wait.mean_millis());
    assert!(
        increased,
        "no pattern converted I/O savings into sync waits"
    );
}

#[test]
fn fig12_balanced_runs_benefit_more_than_io_bound() {
    let io_bound = run_pair(&ExperimentConfig::paper_io_bound(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(10),
    ));
    let balanced = paper_pair(AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
    assert!(
        balanced.total_time_improvement() > io_bound.total_time_improvement(),
        "overlap of I/O with computation should make balanced runs gain more \
         ({:.3} vs {:.3})",
        balanced.total_time_improvement(),
        io_bound.total_time_improvement()
    );
}

#[test]
fn fig13_lead_raises_lw_hit_wait() {
    let near = run_experiment(&ExperimentConfig::paper_lead(
        AccessPattern::LocalWholeFile,
        0,
    ));
    let led = run_experiment(&ExperimentConfig::paper_lead(
        AccessPattern::LocalWholeFile,
        60,
    ));
    assert!(
        led.mean_hit_wait_ms() > near.mean_hit_wait_ms(),
        "paper: lw hit-wait increases with lead ({:.2} vs {:.2})",
        led.mean_hit_wait_ms(),
        near.mean_hit_wait_ms()
    );
}

#[test]
fn fig14_lead_raises_global_miss_ratio() {
    let near = run_experiment(&ExperimentConfig::paper_lead(
        AccessPattern::GlobalWholeFile,
        0,
    ));
    let led = run_experiment(&ExperimentConfig::paper_lead(
        AccessPattern::GlobalWholeFile,
        60,
    ));
    assert!(
        led.miss_ratio() > near.miss_ratio() + 0.1,
        "paper: the miss ratio climbs drastically with lead ({:.3} vs {:.3})",
        led.miss_ratio(),
        near.miss_ratio()
    );
}

#[test]
fn fig16_lead_slows_gw_and_lw() {
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalWholeFile,
    ] {
        let near = run_experiment(&ExperimentConfig::paper_lead(pattern, 0));
        let led = run_experiment(&ExperimentConfig::paper_lead(pattern, 90));
        assert!(
            led.total_time > near.total_time,
            "{pattern}: paper says large leads slow the whole-file patterns"
        );
    }
}

#[test]
fn sec5d_min_prefetch_time_lowers_overrun_but_degrades_hit_ratio() {
    let mk = |min_ms: u64| {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.prefetch = PrefetchConfig {
            min_action_time: SimDuration::from_millis(min_ms),
            ..PrefetchConfig::paper()
        };
        run_experiment(&cfg)
    };
    let without = mk(0);
    let with = mk(20);
    // The threshold suppresses the actions that would have overrun: the
    // *aggregate* overrun falls (individual overruns that remain can be
    // larger, which is why the idea bought so little).
    assert!(
        with.overrun.total() <= without.overrun.total(),
        "thresholding idle time should reduce aggregate overrun ({} vs {})",
        with.overrun.total(),
        without.overrun.total()
    );
    assert!(
        with.hit_ratio < without.hit_ratio,
        "paper: the hit ratio degrades steadily under the threshold"
    );
}

#[test]
fn sec5f_one_prefetch_buffer_is_worse_than_three() {
    let mk = |bufs: u16| {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.prefetch = PrefetchConfig {
            buffers_per_proc: bufs,
            global_cap_per_proc: bufs,
            ..PrefetchConfig::paper()
        };
        run_experiment(&cfg)
    };
    let one = mk(1);
    let three = mk(3);
    assert!(
        three.total_time <= one.total_time,
        "paper: a single prefetch buffer per process obtains smaller \
         improvements ({} vs {})",
        three.total_time,
        one.total_time
    );
}

#[test]
fn oracle_beats_local_obl_on_global_patterns() {
    let mk = |policy| {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.prefetch = PrefetchConfig {
            policy,
            ..PrefetchConfig::paper()
        };
        run_experiment(&cfg)
    };
    let oracle = mk(rapid_transit::core::PolicyKind::Oracle);
    let obl = mk(rapid_transit::core::PolicyKind::Obl { depth: 3 });
    assert!(
        oracle.hit_ratio > obl.hit_ratio + 0.2,
        "global sequentiality should be invisible to per-process OBL \
         (oracle {:.3} vs obl {:.3})",
        oracle.hit_ratio,
        obl.hit_ratio
    );
}

#[test]
fn fallible_predictors_wedge_without_eviction_relaxation() {
    // An emergent interaction the paper never had to face: its policy
    // never evicts prefetched-but-unused blocks because the oracle never
    // errs. A fallible predictor's wrong guesses (e.g. OBL predicting past
    // an lfp portion boundary) then accumulate as permanently protected
    // buffers until prefetching wedges entirely.
    let mk = |evict_unused: bool| {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::LocalFixedPortions,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.prefetch = PrefetchConfig {
            policy: rapid_transit::core::PolicyKind::Obl { depth: 3 },
            evict_unused,
            ..PrefetchConfig::paper()
        };
        run_experiment(&cfg)
    };
    let wedged = mk(false);
    let relaxed = mk(true);
    assert!(
        wedged.prefetches < 200,
        "protected junk should throttle prefetching ({} prefetches)",
        wedged.prefetches
    );
    assert!(
        relaxed.prefetches > wedged.prefetches * 3,
        "the relaxation should revive prefetching ({} vs {})",
        relaxed.prefetches,
        wedged.prefetches
    );
    assert!(relaxed.hit_ratio > wedged.hit_ratio);
}
