//! Integration tests for the overload-robustness layer: bounded device
//! queues, demand parking, and the prefetch admission controller.
//!
//! The two load-bearing properties:
//! * **Bound holds universally** — under any random workload shape,
//!   prefetch setting, admission setting, and fault plan, no device queue
//!   ever exceeds its configured depth, and every read still completes.
//! * **Defaults-off identity** — with `queue_depth` unset and admission
//!   disabled (the defaults), runs are indistinguishable from builds
//!   without the overload layer, down to the engine's event count, for
//!   every pattern with and without prefetching.

use proptest::prelude::*;

use rapid_transit::core::experiment::{run_experiment, run_experiment_instrumented};
use rapid_transit::core::faults::parse_fault_specs;
use rapid_transit::core::{AdmissionConfig, ExperimentConfig, PrefetchConfig, RunMetrics};
use rapid_transit::patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rapid_transit::sim::SimDuration;

/// A small machine the proptests can afford to run repeatedly.
fn small_cfg(pattern: AccessPattern, sync: SyncStyle, prefetch: bool) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(pattern, sync);
    cfg.procs = 4;
    cfg.disks = 4;
    cfg.workload = WorkloadParams {
        procs: 4,
        file_blocks: 200,
        total_reads: 200,
        ..WorkloadParams::paper()
    };
    if prefetch {
        cfg.prefetch = PrefetchConfig::paper();
    } else {
        cfg.prefetch = PrefetchConfig::disabled();
    }
    cfg
}

/// Everything observable a run produced, as a comparable value.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64) {
    (
        m.total_time.as_nanos(),
        m.reads.mean().as_nanos(),
        m.ready_hits,
        m.unready_hits,
        m.misses,
        m.disk_ops,
    )
}

fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop::sample::select(AccessPattern::ALL.to_vec())
}

fn fault_strategy() -> impl Strategy<Value = &'static str> {
    // Only disks 0 and 1 appear, so every spec is valid for any machine
    // the strategy draws (disks >= 2).
    prop::sample::select(vec![
        "",
        "straggler:1:x6",
        "flaky:0:p0.2",
        "straggler:0:x4@20ms-300ms,flaky:1:p0.1",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any bounded configuration completes every read, never exceeds the
    /// queue bound, and keeps its cache/read accounting balanced — with
    /// or without prefetch, admission, faults, and under disk scarcity.
    #[test]
    fn queue_bound_holds_under_random_overload(
        depth in 1u32..5,
        disks in 2u16..5,
        credits in prop::option::of(1u32..8),
        prefetch in any::<bool>(),
        compute_us in prop::sample::select(vec![0u64, 500, 2_000, 10_000]),
        pattern in pattern_strategy(),
        faults in fault_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut cfg = small_cfg(pattern, SyncStyle::BlocksPerProc(10), prefetch);
        cfg.disks = disks;
        cfg.compute_mean = SimDuration::from_micros(compute_us);
        cfg.queue_depth = Some(depth);
        if let Some(c) = credits {
            cfg.admission = AdmissionConfig::on(c);
        }
        if !faults.is_empty() {
            cfg.faults.plan = parse_fault_specs(faults).unwrap();
        }
        cfg.seed = seed;
        cfg.validate().unwrap();
        let m = run_experiment(&cfg);
        prop_assert_eq!(m.total_reads(), 200, "every read completes");
        prop_assert!(
            m.overload.max_queue_depth <= depth as u64,
            "queue depth {} exceeded bound {}",
            m.overload.max_queue_depth, depth
        );
        prop_assert_eq!(m.ready_hits + m.unready_hits + m.misses, 200);
        if !prefetch {
            prop_assert_eq!(m.overload.prefetches_shed, 0);
            prop_assert_eq!(m.overload.prefetches_throttled, 0);
        }
    }
}

/// With the overload knobs at their defaults, the layer must not exist:
/// fingerprints and engine event counts match a run with an effectively
/// infinite queue bound removed, for every pattern × prefetch setting.
#[test]
fn default_config_is_event_identical_to_unbounded() {
    for pattern in AccessPattern::ALL {
        for prefetch in [false, true] {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if prefetch {
                cfg.prefetch = PrefetchConfig::paper();
            }
            assert_eq!(cfg.queue_depth, None, "unbounded by default");
            assert!(!cfg.admission.enabled, "admission off by default");
            let (m_default, perf_default) = run_experiment_instrumented(&cfg);
            // A bound deep enough never to reject must not change a
            // single simulated number or event, only allocate tracking.
            cfg.queue_depth = Some(1_000_000);
            let (m_deep, perf_deep) = run_experiment_instrumented(&cfg);
            assert_eq!(
                fingerprint(&m_default),
                fingerprint(&m_deep),
                "{pattern}/pf={prefetch}: an unreachable queue bound changed the run"
            );
            assert_eq!(
                perf_default.events, perf_deep.events,
                "{pattern}/pf={prefetch}: an unreachable queue bound changed the event count"
            );
            assert_eq!(m_default.overload.demand_parked, 0);
            assert_eq!(m_deep.overload.demand_parked, 0);
            assert_eq!(m_deep.overload.prefetches_shed, 0);
        }
    }
}

/// The tightest possible bound (depth 1) with admission, faults, and
/// prefetch all active at once still finishes and balances accounting.
#[test]
fn depth_one_with_admission_and_faults_survives() {
    let mut cfg = small_cfg(
        AccessPattern::LocalFixedPortions,
        SyncStyle::BlocksPerProc(10),
        true,
    );
    cfg.disks = 2;
    cfg.compute_mean = SimDuration::from_micros(500);
    cfg.queue_depth = Some(1);
    cfg.admission = AdmissionConfig::on(2);
    cfg.faults.plan = parse_fault_specs("straggler:1:x8@10ms-500ms").unwrap();
    let m = run_experiment(&cfg);
    assert_eq!(m.total_reads(), 200);
    assert!(m.overload.max_queue_depth <= 1);
    assert_eq!(m.ready_hits + m.unready_hits + m.misses, 200);
}
