//! Property tests over randomly drawn experiment configurations: any
//! machine shape × pattern × synchronization × prefetch setting must
//! complete, balance its accounting, and stay within physical bounds.

use proptest::prelude::*;

use rapid_transit::core::experiment::{run_experiment, RunHandle};
use rapid_transit::core::faults::{parse_fault_spec, CrashSpec};
use rapid_transit::core::world::generate_workload;
use rapid_transit::core::{AdmissionConfig, RunMetrics, World};
use rapid_transit::core::{ExperimentConfig, PolicyKind, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rapid_transit::sim::engine::run;
use rapid_transit::sim::{Scheduler, SimDuration, SimTime};

fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop::sample::select(AccessPattern::ALL.to_vec())
}

fn sync_strategy() -> impl Strategy<Value = SyncStyle> {
    prop_oneof![
        Just(SyncStyle::None),
        (2u32..20).prop_map(SyncStyle::BlocksPerProc),
        (10u32..100).prop_map(SyncStyle::BlocksTotal),
        Just(SyncStyle::EachPortion),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Oracle),
        (1u32..5).prop_map(|depth| PolicyKind::Obl { depth }),
        (1u32..4).prop_map(|confidence| PolicyKind::PortionLearner { confidence }),
    ]
}

prop_compose! {
    fn config_strategy()(
        procs in 2u16..8,
        blocks_per_proc in 10u32..60,
        pattern in pattern_strategy(),
        sync in sync_strategy(),
        compute_ms in 0u64..20,
        prefetch_on in any::<bool>(),
        bufs in 1u16..5,
        lead in 0u32..30,
        policy in policy_strategy(),
        seed in any::<u64>(),
    ) -> ExperimentConfig {
        let sync = if sync.valid_for(pattern) { sync } else { SyncStyle::None };
        // Keep the portion geometry consistent with the machine size:
        // lfp needs reads_per_proc to be whole portions; gfp needs the
        // file to be a whole number of 2L stretches.
        let len = 5;
        let total = procs as u32 * (blocks_per_proc - blocks_per_proc % len).max(len);
        let global_len = total / 10 / (2 * len) * len + len; // small but valid
        let file = total;
        let mut cfg = ExperimentConfig::paper_default(pattern, sync);
        cfg.procs = procs;
        cfg.disks = procs;
        cfg.workload = WorkloadParams {
            procs,
            file_blocks: file,
            total_reads: total,
            fixed_portion_len: len,
            global_fixed_portion_len: global_len,
            rand_portion_min: 1,
            rand_portion_max: 8.min(file),
            global_rand_portion_min: 2,
            global_rand_portion_max: 16.min(file),
        };
        cfg.compute_mean = SimDuration::from_millis(compute_ms);
        cfg.seed = seed;
        if prefetch_on {
            cfg.prefetch = PrefetchConfig {
                buffers_per_proc: bufs,
                global_cap_per_proc: bufs,
                min_lead: lead,
                policy,
                ..PrefetchConfig::paper()
            };
        }
        cfg
    }
}

/// gfp requires `file % 2L == 0`; fix up configs that drew a bad geometry.
fn fixup(mut cfg: ExperimentConfig) -> ExperimentConfig {
    if cfg.pattern == AccessPattern::GlobalFixedPortions {
        let l = cfg.workload.global_fixed_portion_len.max(1);
        let stretch = 2 * l;
        let file = (cfg.workload.file_blocks / stretch).max(1) * stretch;
        cfg.workload.file_blocks = file;
        cfg.workload.total_reads = file;
        // total_reads must divide evenly among procs.
        let per = (file / cfg.procs as u32).max(1);
        cfg.workload.total_reads = per * cfg.procs as u32;
        if cfg.workload.total_reads != file {
            // Fall back to a geometry that satisfies both constraints.
            let per_proc = stretch;
            cfg.workload.file_blocks = per_proc * cfg.procs as u32;
            cfg.workload.total_reads = cfg.workload.file_blocks;
        }
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn any_config_completes_and_balances(cfg in config_strategy()) {
        let cfg = fixup(cfg);
        let m = run_experiment(&cfg);
        prop_assert_eq!(m.total_reads(), cfg.workload.total_reads as u64);
        prop_assert_eq!(m.ready_hits + m.unready_hits + m.misses, m.total_reads());
        // A miss whose allocation spun on pinned buffers can be rescued by
        // another process's fetch, so fetches may lag misses by at most the
        // number of retries.
        prop_assert!(m.demand_fetches <= m.misses);
        prop_assert!(m.misses - m.demand_fetches <= m.alloc_retries);
        prop_assert_eq!(m.disk_ops, m.demand_fetches + m.prefetches);
        prop_assert!(m.hit_ratio >= 0.0 && m.hit_ratio <= 1.0);
        prop_assert_eq!(m.proc_finish.len(), cfg.procs as usize);
        // Physical bound: the run cannot beat perfect disk parallelism.
        // total_time ends at the last *read*, but prefetches in flight or
        // queued at that instant complete afterwards and must not be
        // charged. Each unfinished prefetch holds a prefetch buffer, so at
        // most procs * buffers_per_proc disk ops can outlive the run.
        let tail_cap = if cfg.prefetch.enabled {
            cfg.procs as u64 * cfg.prefetch.buffers_per_proc as u64
        } else {
            0
        };
        let charged = m.disk_ops.saturating_sub(tail_cap);
        let min_ms = (charged as f64 * 30.0) / cfg.disks as f64;
        prop_assert!(
            m.total_time.as_millis_f64() >= min_ms * 0.99,
            "total {} ms beats the disk bound {} ms (cfg {:?})",
            m.total_time.as_millis_f64(), min_ms, cfg
        );
    }

    #[test]
    fn runs_are_reproducible(cfg in config_strategy()) {
        let cfg = fixup(cfg);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.ready_hits, b.ready_hits);
        prop_assert_eq!(a.unready_hits, b.unready_hits);
        prop_assert_eq!(a.misses, b.misses);
        prop_assert_eq!(a.disk_ops, b.disk_ops);
    }

    /// Snapshot/clone equivalence: a world cloned mid-run (together with
    /// its scheduler) and resumed produces the bit-identical run — for any
    /// machine shape, pattern, sync style, policy, and fork point. Both
    /// the fork and the original-after-fork must match an uninterrupted
    /// run of the same configuration.
    #[test]
    fn forked_runs_are_bit_identical(
        cfg in config_strategy(),
        fork_at_pct in 0u32..95,
        overload in any::<bool>(),
        faulty in any::<bool>(),
    ) {
        let mut cfg = fixup(cfg);
        // Fold in the optional layers so clones carry admission state,
        // fault plans, and armed timeouts across the fork point too.
        if overload {
            cfg.queue_depth = Some(2);
            cfg.admission = AdmissionConfig::on(2);
        }
        if faulty {
            parse_fault_spec(&mut cfg.faults.plan, "straggler:0:x4").unwrap();
            parse_fault_spec(&mut cfg.faults.plan, "flaky:1:p0.1@1s-4s").unwrap();
        }
        let straight = run_experiment(&cfg);

        let mut warm = RunHandle::start(&cfg);
        let target = cfg.workload.total_reads as u64 * fork_at_pct as u64 / 100;
        warm.advance_to_reads(target);
        let fork = warm.fork();
        prop_assert_eq!(fork.events_fired(), warm.events_fired());

        let from_fork = fork.finish();
        let from_original = warm.finish();
        prop_assert_eq!(fingerprint(&from_fork), fingerprint(&straight));
        prop_assert_eq!(fingerprint(&from_original), fingerprint(&straight));
    }

    /// Node-crash robustness: any random crash/rejoin plan, layered over
    /// any machine shape × pattern × prefetch setting and optionally over
    /// device faults and bounded admission, must drain its event queue,
    /// leak nothing (lock leases, buffer pins, waiter registrations,
    /// parked demand), close its read accounting against the generated
    /// workload, and remain deterministic.
    #[test]
    fn crashed_runs_terminate_reclaim_and_balance(
        cfg in config_strategy(),
        plan in prop::collection::vec(
            (any::<u16>(), 1u64..600, prop::option::of(1u64..600)),
            1..4,
        ),
        overload in any::<bool>(),
        faulty in any::<bool>(),
    ) {
        let mut cfg = fixup(cfg);
        if overload {
            cfg.queue_depth = Some(2);
            cfg.admission = AdmissionConfig::on(2);
        }
        if faulty {
            parse_fault_spec(&mut cfg.faults.plan, "straggler:0:x4").unwrap();
        }
        // Sanitize the drawn plan into a valid one: distinct nodes that
        // exist on the machine, rejoins strictly after their crash.
        let mut used = std::collections::BTreeSet::new();
        for (node, at_ms, rejoin_after_ms) in plan {
            let node = node % cfg.procs;
            if !used.insert(node) {
                continue;
            }
            cfg.faults.crashes.push(CrashSpec {
                node,
                at: SimTime::from_nanos(at_ms * 1_000_000),
                rejoin: rejoin_after_ms
                    .map(|d| SimTime::from_nanos((at_ms + d) * 1_000_000)),
            });
        }
        prop_assert!(cfg.validate().is_ok(), "sanitized plan invalid: {:?}", cfg.faults.crashes);

        let expected = generate_workload(&cfg).total_reads() as u64;
        let first = drain_crashed(&cfg);
        match &first {
            Ok(v) => prop_assert_eq!(
                v.completed + v.lost + v.abandoned,
                expected,
                "read accounting open: {:?} (cfg {:?})",
                v,
                cfg
            ),
            Err(e) => prop_assert!(false, "{} (cfg {:?})", e, cfg),
        }
        // Crash handling must not perturb determinism: the identical
        // config replays to the identical drain.
        let second = drain_crashed(&cfg);
        prop_assert_eq!(first, second);
    }

    /// Tail-tolerance robustness: any combination of hedging, retry
    /// budget, and circuit breakers, layered over any machine shape ×
    /// pattern × prefetch setting and optionally over device faults, a
    /// node crash, and bounded admission, must deliver every block
    /// exactly once, keep budget spend within the bucket bound, stay
    /// inert where unconfigured, and remain deterministic.
    #[test]
    fn tail_tolerant_runs_stay_exactly_once_and_deterministic(
        cfg in config_strategy(),
        hedge in any::<bool>(),
        budget in prop::option::of((1u32..8, 1u32..50)),
        breaker in any::<bool>(),
        faulty in any::<bool>(),
        crash in prop::option::of((any::<u16>(), 1u64..400, prop::option::of(1u64..400))),
        overload in any::<bool>(),
    ) {
        let mut cfg = fixup(cfg);
        if overload {
            cfg.queue_depth = Some(2);
            cfg.admission = AdmissionConfig::on(2);
        }
        if faulty {
            parse_fault_spec(&mut cfg.faults.plan, "straggler:0:x4").unwrap();
        }
        if let Some((node, at_ms, rejoin_after_ms)) = crash {
            cfg.faults.crashes.push(CrashSpec {
                node: node % cfg.procs,
                at: SimTime::from_nanos(at_ms * 1_000_000),
                rejoin: rejoin_after_ms
                    .map(|d| SimTime::from_nanos((at_ms + d) * 1_000_000)),
            });
        }
        // Any tail knob needs somewhere to steer: mirror once and arm
        // the demand timeout that drives hedging and breaker feedback.
        if hedge || budget.is_some() || breaker {
            cfg.faults.replicas = 1;
            cfg.faults.retry.timeout = Some(SimDuration::from_millis(150));
        }
        if hedge {
            cfg.faults.hedge.delay = Some(SimDuration::from_millis(40));
        }
        if let Some((cap, refill_pct)) = budget {
            cfg.faults.budget.capacity = Some(cap);
            cfg.faults.budget.refill = refill_pct as f64 / 100.0;
        }
        if breaker {
            cfg.faults.breaker.enabled = true;
            cfg.faults.breaker.error_threshold = 0.5;
        }
        prop_assert!(cfg.validate().is_ok(), "config invalid: {:?}", cfg);

        let m = run_experiment(&cfg);
        // Exactly-once delivery is the hedging layer's core promise.
        prop_assert_eq!(m.tail.duplicate_deliveries, 0, "cfg {:?}", cfg);
        // Every hedge resolves as a win or a waste (or was orphaned by a
        // crash); each resolution cancels at most one queued loser.
        prop_assert!(m.tail.hedge_wins + m.tail.hedge_wasted <= m.tail.hedges_launched);
        prop_assert!(m.tail.hedge_cancels <= m.tail.hedge_wins + m.tail.hedge_wasted);
        // Unconfigured slices of the layer must stay inert.
        if !hedge {
            prop_assert_eq!(m.tail.hedges_launched, 0);
        }
        if budget.is_none() {
            prop_assert_eq!(m.tail.retries_denied, 0);
            prop_assert_eq!(m.tail.budget_spent, 0);
        }
        if !breaker {
            prop_assert_eq!(m.tail.breaker_opens, 0);
            prop_assert_eq!(m.tail.probe_successes, 0);
        }
        // Token-bucket bound: spend never exceeds the initial capacity
        // plus what successful completions refilled.
        if let Some((cap, _)) = budget {
            let bound = cap as f64 + cfg.faults.budget.refill * m.disk_ops as f64;
            prop_assert!(
                m.tail.budget_spent as f64 <= bound + 1e-9,
                "budget_spent {} exceeds bucket bound {} (cfg {:?})",
                m.tail.budget_spent, bound, cfg
            );
        }
        // The tail layer must not perturb determinism.
        let again = run_experiment(&cfg);
        prop_assert_eq!(fingerprint(&again), fingerprint(&m));
        prop_assert_eq!(&again.tail, &m.tail);
        prop_assert_eq!(again.hedged_read_times.count(), m.hedged_read_times.count());
    }
}

/// Everything that pins a crashed run: completion counters, crash
/// accounting, and the exact drain time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CrashDrain {
    completed: u64,
    lost: u64,
    abandoned: u64,
    crashes: u64,
    rejoins: u64,
    reclaimed: u64,
    end_ns: u64,
}

/// Run `cfg` to queue drain and apply every terminal invariant the
/// crashes sweep enforces; returns the drain fingerprint.
fn drain_crashed(cfg: &ExperimentConfig) -> Result<CrashDrain, String> {
    let mut world = World::new(cfg.clone());
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    let out = run(&mut world, &mut sched, 50_000_000);
    if out.budget_exhausted {
        return Err(format!("event budget exhausted at {:?}", out.end_time));
    }
    if !world.complete() {
        return Err("event queue drained before the run completed".into());
    }
    world.check_terminal_invariants(sched.now())?;
    let c = world.crash_metrics();
    Ok(CrashDrain {
        completed: world.reads_done(),
        lost: c.lost_reads,
        abandoned: world.abandoned_reads(),
        crashes: c.crashes,
        rejoins: c.rejoins,
        reclaimed: c.reclaimed_locks + c.reclaimed_pins + c.reclaimed_waiters,
        end_ns: out.end_time.as_nanos(),
    })
}

/// The fields that pin a run bit-for-bit: exact simulated durations plus
/// every accounting counter.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        m.total_time.as_nanos(),
        m.reads.total().as_nanos(),
        m.ready_hits,
        m.unready_hits,
        m.misses,
        m.disk_ops,
        m.prefetches,
        m.barriers,
    )
}
