//! Golden regression tests: the simulation is deterministic, so the
//! paper-default runs (per-processor sync, balanced compute, default seed)
//! must reproduce these exact fingerprints. A legitimate model change will
//! move these numbers — regenerate them deliberately (see the table below)
//! and re-validate the figure benches against EXPERIMENTS.md when it does.

use rapid_transit::core::experiment::run_experiment;
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

/// (pattern, prefetch, total ns, mean read ns, ready, unready, misses)
const GOLDEN: &[(&str, bool, u64, u64, u64, u64, u64)] = &[
    ("lfp", false, 9655075092, 44123664, 0, 0, 2000),
    ("lfp", true, 8762689957, 21717746, 1512, 68, 420),
    ("lrp", false, 8981900912, 40912441, 8, 8, 1984),
    ("lrp", true, 7039652001, 18486718, 1507, 69, 424),
    ("lw", false, 3735367087, 24580194, 64, 1832, 104),
    ("lw", true, 2678292539, 6952721, 1880, 93, 27),
    ("gfp", false, 8268681093, 33980141, 0, 0, 2000),
    ("gfp", true, 6495565390, 10332742, 1479, 464, 57),
    ("grp", false, 8323782295, 34140404, 0, 0, 2000),
    ("grp", true, 6426273094, 14161485, 1218, 663, 119),
    ("gw", false, 8258476186, 33685345, 0, 0, 2000),
    ("gw", true, 6442648341, 10153561, 1553, 387, 60),
];

#[test]
fn paper_default_runs_match_golden_fingerprints() {
    for &(abbrev, prefetch, total_ns, read_ns, ready, unready, misses) in GOLDEN {
        let pattern = AccessPattern::from_abbrev(abbrev).unwrap();
        let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
        if prefetch {
            cfg.prefetch = PrefetchConfig::paper();
        }
        let m = run_experiment(&cfg);
        let got = (
            m.total_time.as_nanos(),
            m.reads.mean().as_nanos(),
            m.ready_hits,
            m.unready_hits,
            m.misses,
        );
        assert_eq!(
            got,
            (total_ns, read_ns, ready, unready, misses),
            "{abbrev}/pf={prefetch} drifted from its golden fingerprint; if \
             this change is intentional, regenerate the GOLDEN table and \
             re-validate EXPERIMENTS.md"
        );
    }
}

#[test]
fn golden_table_spans_all_patterns_both_ways() {
    // Guard the guard: the table must cover every (pattern, prefetch) cell.
    assert_eq!(GOLDEN.len(), 12);
    for pattern in AccessPattern::ALL {
        for &pf in &[false, true] {
            assert!(
                GOLDEN
                    .iter()
                    .any(|&(a, p, ..)| a == pattern.abbrev() && p == pf),
                "missing golden entry for {pattern}/pf={pf}"
            );
        }
    }
}
