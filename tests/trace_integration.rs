//! Traced runs: the recorded access pattern must match the workload the
//! generators promised, and the off-line analyses must recover each
//! pattern's signature.

use rapid_transit::core::experiment::run_experiment_traced;
use rapid_transit::core::trace::{replay_obl, Trace};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn traced(pattern: AccessPattern) -> (rapid_transit::core::RunMetrics, Trace) {
    let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
    cfg.prefetch = PrefetchConfig::paper();
    run_experiment_traced(&cfg)
}

#[test]
fn trace_covers_every_read() {
    for pattern in AccessPattern::ALL {
        let (metrics, trace) = traced(pattern);
        assert_eq!(
            trace.len() as u64,
            metrics.total_reads(),
            "{pattern}: trace must record every read"
        );
        assert!(
            (trace.observed_hit_ratio() - metrics.hit_ratio).abs() < 1e-9,
            "{pattern}: trace and metrics disagree on the hit ratio"
        );
    }
}

#[test]
fn gw_trace_is_perfectly_sequential_globally() {
    let (_, trace) = traced(AccessPattern::GlobalWholeFile);
    // The shared cursor hands out blocks in file order, so the merged
    // string ordered by request time is exactly 0..2000.
    assert_eq!(trace.global_sequentiality(), 1.0);
    // Locally the stream looks nearly random (stride ~20).
    assert!(trace.mean_local_sequentiality() < 0.1);
    assert_eq!(trace.overlap_fraction(), 0.0);
}

#[test]
fn lw_trace_overlaps_fully_and_is_locally_sequential() {
    let (_, trace) = traced(AccessPattern::LocalWholeFile);
    assert_eq!(trace.overlap_fraction(), 1.0, "every block read by all");
    assert!(trace.mean_local_sequentiality() > 0.99);
}

#[test]
fn lfp_trace_is_locally_portioned_and_disjoint() {
    let (_, trace) = traced(AccessPattern::LocalFixedPortions);
    assert_eq!(trace.overlap_fraction(), 0.0, "lfp processes are disjoint");
    let strings = trace.per_process_strings();
    for string in strings.values() {
        let runs = Trace::run_lengths(string);
        // Portions of five blocks; run detection may merge portions only if
        // they were adjacent in the file, which the lfp geometry prevents.
        assert!(
            runs.iter().all(|&r| r == 5),
            "lfp portions must be 5 blocks, got {runs:?}"
        );
    }
}

#[test]
fn obl_replay_separates_local_from_global_patterns() {
    let (_, lw) = traced(AccessPattern::LocalWholeFile);
    let (_, gw) = traced(AccessPattern::GlobalWholeFile);
    let lw_local = replay_obl(&lw, 3, 20, false);
    let gw_local = replay_obl(&gw, 3, 20, false);
    assert!(
        lw_local > gw_local + 0.5,
        "per-process OBL should track lw but not gw ({lw_local:.3} vs {gw_local:.3})"
    );
    // On the global pattern a shared, timeless replay still looks great —
    // the optimism the paper warns about.
    assert!(replay_obl(&gw, 3, 20, true) > 0.8);
}

#[test]
fn grp_trace_sequential_within_portions() {
    let (_, trace) = traced(AccessPattern::GlobalRandomPortions);
    let merged = trace.merged_reference_string();
    let runs = Trace::run_lengths(&merged);
    let mean_run = runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64;
    // Portions are 20..=80 blocks; cooperative consumption keeps the merged
    // string nearly sequential inside each portion, so observable runs are
    // much longer than 1 (random) but can be split by stragglers.
    assert!(
        mean_run > 5.0,
        "grp merged string should show sequential runs, mean {mean_run:.2}"
    );
}
