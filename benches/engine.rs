//! Microbenchmarks for the hot engine primitives behind every run: the
//! slab event queue (schedule / pop / cancel), the sharded farm engine at
//! one and two threads (stream merge + window computation included), and
//! world snapshot/clone (the cost of forking a warmed-up run).
//!
//! Run with `cargo bench --bench engine`. The vendored criterion shim
//! prints mean time per iteration; there is no statistical machinery, so
//! compare numbers only across runs on the same host.

use criterion::{criterion_group, criterion_main, BatchSize, Bencher, Criterion};

use rapid_transit::core::experiment::RunHandle;
use rapid_transit::core::ExperimentConfig;
use rapid_transit::disk::FarmConfig;
use rapid_transit::patterns::{AccessPattern, SyncStyle};
use rapid_transit::sim::{EventQueue, SimDuration, SimTime};

/// Events pushed per queue iteration — enough to exercise heap reshuffles
/// and slot recycling without dominating the bench in setup.
const QUEUE_EVENTS: u64 = 256;

fn queue_schedule_pop(b: &mut Bencher) {
    b.iter(|| {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Interleave two time streams so pops actually reorder the heap.
        for i in 0..QUEUE_EVENTS {
            let t = if i % 2 == 0 { i } else { QUEUE_EVENTS + i };
            q.schedule(SimTime::ZERO + SimDuration::from_micros(t), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
}

fn queue_cancel(b: &mut Bencher) {
    b.iter_batched(
        || {
            let mut q: EventQueue<u64> = EventQueue::new();
            let ids: Vec<_> = (0..QUEUE_EVENTS)
                .map(|i| q.schedule(SimTime::ZERO + SimDuration::from_micros(i), i))
                .collect();
            (q, ids)
        },
        |(mut q, ids)| {
            // Cancel every other event, then drain: the pop loop must skip
            // the tombstones, which is the path a timeout-heavy run exercises.
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut live = 0u64;
            while q.pop().is_some() {
                live += 1;
            }
            live
        },
        BatchSize::SmallInput,
    );
}

/// A farm small enough to finish in single-digit milliseconds but with
/// real cross-shard traffic (forwarding on, 4 devices).
fn bench_farm() -> FarmConfig {
    FarmConfig {
        devices: 4,
        requests_per_device: 200,
        ..FarmConfig::default()
    }
}

fn farm_serial(b: &mut Bencher) {
    let cfg = bench_farm();
    b.iter(|| cfg.run(1).completions);
}

fn farm_two_threads(b: &mut Bencher) {
    let cfg = bench_farm();
    b.iter(|| cfg.run(2).completions);
}

/// A small but non-trivial machine for the clone benches: 4 procs, 4
/// disks, prefetching on, enough reads that the warmed world holds live
/// cache state, armed events, and per-proc predictors.
fn bench_experiment() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(8),
    );
    cfg.procs = 4;
    cfg.disks = 4;
    cfg.workload.procs = 4;
    cfg.workload.file_blocks = 400;
    cfg.workload.total_reads = 400;
    cfg
}

fn world_clone(b: &mut Bencher) {
    let cfg = bench_experiment();
    let mut warm = RunHandle::start(&cfg);
    warm.advance_to_reads(200);
    b.iter(|| warm.fork().events_fired());
}

fn world_fork_and_finish(b: &mut Bencher) {
    let cfg = bench_experiment();
    let mut warm = RunHandle::start(&cfg);
    warm.advance_to_reads(200);
    b.iter(|| warm.fork().finish().disk_ops);
}

fn engine_benches(c: &mut Criterion) {
    c.bench_function("queue/schedule_pop_256", queue_schedule_pop);
    c.bench_function("queue/cancel_half_256", queue_cancel);
    c.bench_function("farm/serial_4dev", farm_serial);
    c.bench_function("farm/two_threads_4dev", farm_two_threads);
    c.bench_function("world/clone_warm", world_clone);
    c.bench_function("world/fork_and_finish", world_fork_and_finish);
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
