//! Off-line trace analysis (§IV-C): run an experiment with the exact
//! access pattern recorded, then analyze the trace the way the paper's
//! off-line studies do — global vs. local sequentiality, observable
//! portion structure, interprocess overlap, and a replay asking what a
//! one-block-lookahead prefetcher would have achieved on this very run.
//!
//! ```sh
//! cargo run --release --example trace_analysis [lfp|lrp|lw|gfp|grp|gw]
//! ```

use rapid_transit::core::experiment::run_experiment_traced;
use rapid_transit::core::report::Table;
use rapid_transit::core::trace::{replay_obl, Trace};
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn main() {
    let pattern = std::env::args()
        .nth(1)
        .and_then(|s| AccessPattern::from_abbrev(&s))
        .unwrap_or(AccessPattern::GlobalWholeFile);

    let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
    cfg.prefetch = PrefetchConfig::paper();
    println!("Recording the exact access pattern of {}...\n", cfg.label());
    let (metrics, trace) = run_experiment_traced(&cfg);

    let merged = trace.merged_reference_string();
    let runs = Trace::run_lengths(&merged);
    let mean_run = if runs.is_empty() {
        0.0
    } else {
        runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64
    };

    let mut t = Table::new(&["trace property", "value"]);
    t.row(&["reads recorded".into(), trace.len().to_string()]);
    t.row(&[
        "global sequentiality".into(),
        format!("{:.3}", trace.global_sequentiality()),
    ]);
    t.row(&[
        "mean local sequentiality".into(),
        format!("{:.3}", trace.mean_local_sequentiality()),
    ]);
    t.row(&[
        "mean global run length".into(),
        format!("{mean_run:.1} blocks"),
    ]);
    t.row(&[
        "interprocess overlap".into(),
        format!("{:.3}", trace.overlap_fraction()),
    ]);
    t.row(&[
        "observed hit ratio".into(),
        format!("{:.3}", trace.observed_hit_ratio()),
    ]);
    t.row(&[
        "measured avg read time".into(),
        format!("{:.2} ms", metrics.mean_read_ms()),
    ]);
    print!("{}", t.render());

    println!("\nOff-line OBL replay on this trace (3 predictions/process):");
    println!(
        "  local-benefit-only hit ratio: {:.3}",
        replay_obl(&trace, 3, 20, false)
    );
    println!(
        "  shared-cache (timeless) hit ratio: {:.3}",
        replay_obl(&trace, 3, 20, true)
    );
    println!(
        "\nThe gap between the two replays shows how much of a pattern's\n\
         sequentiality is only visible globally; the gap between the shared\n\
         replay and real read times is the paper's warning that hit ratios\n\
         are an optimistic measure (the predicted block is often demanded\n\
         before its prefetch completes)."
    );
}
