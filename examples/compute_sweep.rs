//! Compute-intensity sweep (the §V-C study): fix the `gw` pattern with
//! per-processor synchronization and vary the mean per-block computation
//! time from I/O-bound (0 ms) to compute-bound, watching prefetching's
//! benefit rise as I/O overlaps computation and then tail off as
//! computation dominates.
//!
//! ```sh
//! cargo run --release --example compute_sweep
//! ```

use rapid_transit::core::experiment::run_pair;
use rapid_transit::core::report::Table;
use rapid_transit::core::ExperimentConfig;
use rapid_transit::patterns::{AccessPattern, SyncStyle};
use rapid_transit::sim::SimDuration;

fn main() {
    println!("Computation sweep — gw pattern, synchronize every 10 blocks/processor\n");
    let mut t = Table::new(&[
        "compute mean (ms)",
        "total ms (base)",
        "total ms (pf)",
        "Δtotal %",
        "read ms (base)",
        "read ms (pf)",
        "Δread %",
        "action ms",
        "disk resp pf (ms)",
    ]);

    for mean_ms in [0u64, 5, 10, 20, 30, 50, 75, 100, 150, 200] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.compute_mean = SimDuration::from_millis(mean_ms);
        let pair = run_pair(&cfg);
        t.row(&[
            mean_ms.to_string(),
            format!("{:.0}", pair.base.total_time.as_millis_f64()),
            format!("{:.0}", pair.prefetch.total_time.as_millis_f64()),
            format!("{:+.1}", pair.total_time_improvement() * 100.0),
            format!("{:.2}", pair.base.mean_read_ms()),
            format!("{:.2}", pair.prefetch.mean_read_ms()),
            format!("{:+.1}", pair.read_time_improvement() * 100.0),
            format!("{:.2}", pair.prefetch.action_time.mean_millis()),
            format!("{:.2}", pair.prefetch.mean_disk_response_ms()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nExpected shape (paper §V-C): the total-time improvement grows as\n\
         computation is added (I/O overlaps compute), peaks in the balanced\n\
         region, and fades once computation dominates; prefetch actions get\n\
         cheaper as contention falls."
    );
}
