//! Oracle vs. on-line predictors (extension; the paper's future work):
//! compare the paper's supplied-reference-string oracle against one-block
//! lookahead (OBL) and the portion learner on each pattern. The expected
//! outcome motivates the whole paper: OBL tracks *locally* sequential
//! patterns but is nearly blind on *global* patterns, whose sequentiality
//! exists only in the merged reference string.
//!
//! ```sh
//! cargo run --release --example online_predictors
//! ```

use rapid_transit::core::experiment::run_experiment;
use rapid_transit::core::report::Table;
use rapid_transit::core::{ExperimentConfig, PolicyKind};
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn main() {
    println!("Prefetch policy comparison (hit ratio / Δtotal vs no prefetch)\n");
    let mut t = Table::new(&[
        "pattern",
        "base total ms",
        "oracle hit",
        "oracle Δtot%",
        "obl hit",
        "obl Δtot%",
        "learner hit",
        "learner Δtot%",
    ]);

    for pattern in AccessPattern::ALL {
        let sync = SyncStyle::BlocksPerProc(10);
        let mut base_cfg = ExperimentConfig::paper_default(pattern, sync);
        base_cfg.prefetch.enabled = false;
        let base = run_experiment(&base_cfg);
        let base_ms = base.total_time.as_millis_f64();

        let run_policy = |policy: PolicyKind| {
            let mut cfg = ExperimentConfig::paper_default(pattern, sync);
            cfg.prefetch = match policy {
                PolicyKind::Oracle => rapid_transit::core::PrefetchConfig::paper(),
                other => rapid_transit::core::PrefetchConfig::online(other),
            };
            let m = run_experiment(&cfg);
            let dtot = (base_ms - m.total_time.as_millis_f64()) / base_ms * 100.0;
            (m.hit_ratio, dtot)
        };

        let (oh, ot) = run_policy(PolicyKind::Oracle);
        let (bh, bt) = run_policy(PolicyKind::Obl { depth: 3 });
        let (lh, lt) = run_policy(PolicyKind::PortionLearner { confidence: 2 });

        t.row(&[
            pattern.abbrev().to_string(),
            format!("{base_ms:.0}"),
            format!("{oh:.3}"),
            format!("{ot:+.1}"),
            format!("{bh:.3}"),
            format!("{bt:+.1}"),
            format!("{lh:.3}"),
            format!("{lt:+.1}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nGlobal patterns (gfp/grp/gw) read consecutive blocks on *different*\n\
         processors, so a per-process OBL or portion learner rarely predicts\n\
         a block before its consumer demands it — the oracle's edge there is\n\
         the paper's motivation for pattern information beyond local history."
    );
}
