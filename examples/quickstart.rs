//! Quickstart: run the paper's headline experiment — the global whole-file
//! pattern on 20 processors and 20 disks — with and without prefetching,
//! and print the §IV-C measures side by side.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rapid_transit::core::experiment::run_pair;
use rapid_transit::core::report::Table;
use rapid_transit::core::ExperimentConfig;
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn main() {
    let cfg = ExperimentConfig::paper_default(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(10),
    );
    println!("RAPID Transit quickstart — {}", cfg.label());
    println!(
        "{} processors, {} disks, {}-block file, {} total reads\n",
        cfg.procs, cfg.disks, cfg.workload.file_blocks, cfg.workload.total_reads
    );

    let pair = run_pair(&cfg);

    let mut t = Table::new(&["measure", "no prefetch", "prefetch"]);
    let b = &pair.base;
    let p = &pair.prefetch;
    t.row(&[
        "total execution time (ms)".into(),
        format!("{:.1}", b.total_time.as_millis_f64()),
        format!("{:.1}", p.total_time.as_millis_f64()),
    ]);
    t.row(&[
        "avg block read time (ms)".into(),
        format!("{:.2}", b.mean_read_ms()),
        format!("{:.2}", p.mean_read_ms()),
    ]);
    t.row(&[
        "cache hit ratio".into(),
        format!("{:.3}", b.hit_ratio),
        format!("{:.3}", p.hit_ratio),
    ]);
    t.row(&[
        "ready hits".into(),
        b.ready_hits.to_string(),
        p.ready_hits.to_string(),
    ]);
    t.row(&[
        "unready hits".into(),
        b.unready_hits.to_string(),
        p.unready_hits.to_string(),
    ]);
    t.row(&[
        "avg hit-wait (ms)".into(),
        format!("{:.2}", b.mean_hit_wait_ms()),
        format!("{:.2}", p.mean_hit_wait_ms()),
    ]);
    t.row(&[
        "avg disk response (ms)".into(),
        format!("{:.2}", b.mean_disk_response_ms()),
        format!("{:.2}", p.mean_disk_response_ms()),
    ]);
    t.row(&[
        "blocks prefetched".into(),
        b.prefetches.to_string(),
        p.prefetches.to_string(),
    ]);
    t.row(&[
        "avg sync wait (ms)".into(),
        format!("{:.2}", b.sync_wait.mean_millis()),
        format!("{:.2}", p.sync_wait.mean_millis()),
    ]);
    t.row(&[
        "avg prefetch action (ms)".into(),
        "-".into(),
        format!("{:.2}", p.action_time.mean_millis()),
    ]);
    t.row(&[
        "avg overrun (ms)".into(),
        "-".into(),
        format!("{:.2}", p.overrun.mean_millis()),
    ]);
    print!("{}", t.render());

    println!(
        "\nPrefetching changed total execution time by {:+.1}% and the\n\
         average block read time by {:+.1}% (positive = improvement).",
        pair.total_time_improvement() * 100.0,
        pair.read_time_improvement() * 100.0,
    );
}
