//! Anatomy of a run: time-series view of one experiment. The paper's
//! averages hide the dynamics this prints — the prefetch window filling at
//! startup and draining at the end, disk queues breathing with the barrier
//! rhythm, and processes piling up at synchronization points.
//!
//! ```sh
//! cargo run --release --example run_anatomy [pattern] [sync]
//! ```

use rapid_transit::core::experiment::run_experiment;
use rapid_transit::core::{ExperimentConfig, PrefetchConfig};
use rapid_transit::patterns::{AccessPattern, SyncStyle};
use rapid_transit::sim::SimTime;

fn main() {
    let pattern = std::env::args()
        .nth(1)
        .and_then(|s| AccessPattern::from_abbrev(&s))
        .unwrap_or(AccessPattern::GlobalWholeFile);
    let sync = match std::env::args().nth(2).as_deref() {
        Some("none") => SyncStyle::None,
        Some("total") => SyncStyle::BlocksTotal(200),
        Some("portion") => SyncStyle::EachPortion,
        _ => SyncStyle::BlocksPerProc(10),
    };

    let mut cfg = ExperimentConfig::paper_default(pattern, sync);
    cfg.prefetch = PrefetchConfig::paper();
    println!("Run anatomy — {}\n", cfg.label());
    let m = run_experiment(&cfg);

    let start = SimTime::ZERO;
    let end = start + m.total_time;
    const W: usize = 72;

    println!(
        "time axis: 0 .. {:.1} ms  ({} columns of {:.1} ms)\n",
        m.total_time.as_millis_f64(),
        W,
        m.total_time.as_millis_f64() / W as f64
    );
    println!(
        "prefetched-but-unused blocks (cap {}):\n  {}  max {:.0}",
        cfg.prefetch.global_cap_per_proc as u32 * cfg.procs as u32,
        m.tl_prefetched.sparkline(start, end, W),
        m.tl_prefetched.max(),
    );
    println!(
        "\ndisk requests in flight:\n  {}  max {:.0}",
        m.tl_outstanding_io.sparkline(start, end, W),
        m.tl_outstanding_io.max(),
    );
    println!(
        "\nprocesses blocked at the barrier:\n  {}  max {:.0}",
        m.tl_barrier.sparkline(start, end, W),
        m.tl_barrier.max(),
    );

    println!(
        "\nsummary: total {:.0} ms, read {:.2} ms, hit ratio {:.3}, \
         {} prefetches, {} barrier episodes",
        m.total_time.as_millis_f64(),
        m.mean_read_ms(),
        m.hit_ratio,
        m.prefetches,
        m.barriers,
    );
    println!(
        "\nReading the charts: the prefetch window fills at startup, holds\n\
         near the cap while the computation streams, and drains at the end;\n\
         barrier spikes line up with dips in disk traffic — synchronization\n\
         stalls the I/O pipeline, one of the costs the paper identifies."
    );
}
