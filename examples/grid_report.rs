//! Full-grid report: run the paper's complete §IV-D experiment suite (46
//! configurations × prefetching off/on) in parallel and print a one-line
//! summary per configuration plus the aggregate statistics the paper
//! quotes. This is the fastest way to regenerate the whole evaluation.
//!
//! ```sh
//! cargo run --release --example grid_report
//! ```

use rapid_transit::core::experiment::{paper_grid, run_pairs_parallel};
use rapid_transit::core::report::{fraction_at_least, median, pct, Table};

fn main() {
    let grid = paper_grid();
    println!(
        "Running the paper grid: {} configurations x 2 (base/prefetch)...\n",
        grid.len()
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let pairs = run_pairs_parallel(&grid, threads);

    let mut t = Table::new(&[
        "experiment",
        "Δtotal %",
        "Δread %",
        "hit (pf)",
        "unready frac",
        "Δdisk %",
        "Δsync %",
    ]);
    for p in &pairs {
        t.row(&[
            p.label.clone(),
            format!("{:+.1}", p.total_time_improvement() * 100.0),
            format!("{:+.1}", p.read_time_improvement() * 100.0),
            format!("{:.3}", p.prefetch.hit_ratio),
            format!("{:.3}", p.prefetch.unready_fraction()),
            format!("{:+.1}", p.disk_response_improvement() * 100.0),
            if p.base.barriers > 0 {
                format!("{:+.1}", p.sync_wait_improvement() * 100.0)
            } else {
                "-".to_string()
            },
        ]);
    }
    print!("{}", t.render());

    let read_imps: Vec<f64> = pairs.iter().map(|p| p.read_time_improvement()).collect();
    let total_imps: Vec<f64> = pairs.iter().map(|p| p.total_time_improvement()).collect();
    println!("\nAggregates (paper's quoted statistics):");
    println!(
        "  read time:  median improvement {}, {} of runs >= 35%, max {}",
        pct(median(&read_imps)),
        pct(fraction_at_least(&read_imps, 0.35)),
        pct(read_imps.iter().copied().fold(f64::MIN, f64::max)),
    );
    println!(
        "  total time: {} of runs improved, median {}, best {}, worst {}",
        pct(fraction_at_least(&total_imps, 0.0)),
        pct(median(&total_imps)),
        pct(total_imps.iter().copied().fold(f64::MIN, f64::max)),
        pct(total_imps.iter().copied().fold(f64::MAX, f64::min)),
    );
}
