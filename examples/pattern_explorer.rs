//! Pattern explorer: run all six parallel access patterns of the paper's
//! workload under one synchronization style and compare how much each
//! gains from prefetching — reproducing the qualitative ranking of §V-F
//! ("Differences Among the Patterns"): `lw` benefits most (interprocess
//! temporal locality), the global patterns benefit from interprocess
//! spatial locality, and the other local patterns (`lfp`, `lrp`) benefit
//! least because each process prefetches only for itself.
//!
//! ```sh
//! cargo run --release --example pattern_explorer [per-proc|total|portion|none]
//! ```

use rapid_transit::core::experiment::run_pairs_parallel;
use rapid_transit::core::report::Table;
use rapid_transit::core::ExperimentConfig;
use rapid_transit::patterns::{AccessPattern, SyncStyle};

fn main() {
    let style = match std::env::args().nth(1).as_deref() {
        None | Some("per-proc") => SyncStyle::BlocksPerProc(10),
        Some("total") => SyncStyle::BlocksTotal(200),
        Some("portion") => SyncStyle::EachPortion,
        Some("none") => SyncStyle::None,
        Some(other) => {
            eprintln!("unknown sync style {other:?}; use per-proc|total|portion|none");
            std::process::exit(2);
        }
    };

    let configs: Vec<ExperimentConfig> = AccessPattern::ALL
        .into_iter()
        .filter(|p| style.valid_for(*p))
        .map(|p| ExperimentConfig::paper_default(p, style))
        .collect();

    println!("Pattern comparison under sync style `{style}` (balanced compute)\n");
    let pairs = run_pairs_parallel(
        &configs,
        std::thread::available_parallelism().map_or(2, |n| n.get()),
    );

    let mut t = Table::new(&[
        "pattern",
        "total ms (base)",
        "total ms (pf)",
        "Δtotal %",
        "read ms (base)",
        "read ms (pf)",
        "Δread %",
        "hit ratio (pf)",
    ]);
    for pair in &pairs {
        t.row(&[
            pair.label.split('/').next().unwrap_or("?").to_string(),
            format!("{:.0}", pair.base.total_time.as_millis_f64()),
            format!("{:.0}", pair.prefetch.total_time.as_millis_f64()),
            format!("{:+.1}", pair.total_time_improvement() * 100.0),
            format!("{:.2}", pair.base.mean_read_ms()),
            format!("{:.2}", pair.prefetch.mean_read_ms()),
            format!("{:+.1}", pair.read_time_improvement() * 100.0),
            format!("{:.3}", pair.prefetch.hit_ratio),
        ]);
    }
    print!("{}", t.render());

    let best = pairs
        .iter()
        .max_by(|a, b| {
            a.total_time_improvement()
                .partial_cmp(&b.total_time_improvement())
                .unwrap()
        })
        .expect("at least one pattern");
    println!(
        "\nLargest total-time gain: {} ({:+.1}%).",
        best.label,
        best.total_time_improvement() * 100.0
    );
}
