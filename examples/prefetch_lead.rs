//! Minimum prefetch lead (§V-E): try to shrink the hit-wait time by
//! prefetching only blocks at least `lead` string positions ahead of the
//! demand frontier — and watch the miss ratio climb, wiping out the gain
//! for most patterns (`lw` suffers most: every lost prefetch is paid by
//! all 20 processes).
//!
//! ```sh
//! cargo run --release --example prefetch_lead [gw|lw|gfp|lfp]
//! ```

use rapid_transit::core::experiment::run_experiment;
use rapid_transit::core::report::Table;
use rapid_transit::core::ExperimentConfig;
use rapid_transit::patterns::AccessPattern;

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        None | Some("gw") => AccessPattern::GlobalWholeFile,
        Some("lw") => AccessPattern::LocalWholeFile,
        Some("gfp") => AccessPattern::GlobalFixedPortions,
        Some("lfp") => AccessPattern::LocalFixedPortions,
        Some(other) => {
            eprintln!("unsupported pattern {other:?}; §V-E studied gw|lw|gfp|lfp");
            std::process::exit(2);
        }
    };

    // The no-prefetch reference for this pattern.
    let mut base_cfg = ExperimentConfig::paper_lead(pattern, 0);
    base_cfg.prefetch.enabled = false;
    let base = run_experiment(&base_cfg);
    let scale = if pattern.is_local() { 20.0 } else { 1.0 };

    println!(
        "Minimum prefetch lead sweep — pattern {pattern} \
         (total time shown ÷{scale:.0} for local patterns, as in the paper)\n"
    );
    println!(
        "no-prefetch reference: total {:.0} ms, read {:.2} ms\n",
        base.total_time.as_millis_f64() / scale,
        base.mean_read_ms()
    );

    let mut t = Table::new(&[
        "lead",
        "hit-wait ms",
        "miss ratio",
        "read ms",
        "total ms",
        "vs base %",
    ]);
    for lead in [0u32, 10, 20, 30, 45, 60, 75, 90] {
        let cfg = ExperimentConfig::paper_lead(pattern, lead);
        let m = run_experiment(&cfg);
        let total = m.total_time.as_millis_f64() / scale;
        t.row(&[
            lead.to_string(),
            format!("{:.2}", m.mean_hit_wait_ms()),
            format!("{:.3}", m.miss_ratio()),
            format!("{:.2}", m.mean_read_ms()),
            format!("{total:.0}"),
            format!(
                "{:+.1}",
                (base.total_time.as_millis_f64() / scale - total)
                    / (base.total_time.as_millis_f64() / scale)
                    * 100.0
            ),
        ]);
    }
    print!("{}", t.render());
}
