//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! path crate provides the subset of criterion's API that the benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The harness is deliberately simple: it warms each benchmark briefly,
//! then runs timed batches until a fixed wall-clock budget is spent and
//! reports the mean time per iteration. It has no statistical analysis,
//! plots, or baselines — enough to compare hot paths by eye and to keep the
//! bench targets compiling and runnable offline.

use std::time::{Duration, Instant};

/// How batched setup output is grouped. All variants behave identically in
/// this shim; the distinction only matters for upstream's memory tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    /// Accumulated time spent in measured routines.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iters: u64,
    /// Per-measurement iteration count.
    batch: u64,
}

impl Bencher {
    fn new(batch: u64) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            batch,
        }
    }

    /// Time `routine` back-to-back for this measurement's batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.batch;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.batch {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// The benchmark driver: registers and runs named benchmarks.
pub struct Criterion {
    /// Wall-clock measurement budget per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Run `f` (which drives a [`Bencher`]) under the name `id` and print
    /// the mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: one single-iteration pass gives a cost estimate.
        let mut probe = Bencher::new(1);
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        // Pick a batch so each measurement lasts roughly 10 ms.
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.measure_for;
        while Instant::now() < deadline {
            let mut b = Bencher::new(batch as u64);
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        if iters == 0 {
            println!("{id:<40} (no measurements)");
            return self;
        }
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        println!("{id:<40} {:>12} / iter  ({iters} iters)", fmt_ns(mean_ns));
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions under one group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut hits = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("smoke/iter_batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        hits += 1;
        assert_eq!(hits, 1);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5e3).ends_with("µs"));
        assert!(fmt_ns(5e6).ends_with("ms"));
        assert!(fmt_ns(5e9).ends_with('s'));
    }
}
