//! Property tests for the buffer pool: arbitrary interleavings of cache
//! operations must preserve every structural invariant.

use proptest::prelude::*;

use rt_cache::{BufferPool, Lookup, PoolConfig, Replacement};
use rt_disk::{BlockId, ProcId};
use rt_sim::{SimDuration, SimTime};

/// An abstract cache operation, interpreted against pool state.
#[derive(Clone, Debug)]
enum Op {
    Read { proc: u8, block: u16 },
    Prefetch { proc: u8, block: u16 },
    CompleteOldest,
}

fn op_strategy(procs: u8, blocks: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..procs, 0..blocks).prop_map(|(proc, block)| Op::Read { proc, block }),
        (0..procs, 0..blocks).prop_map(|(proc, block)| Op::Prefetch { proc, block }),
        Just(Op::CompleteOldest),
    ]
}

/// Drives the pool like rt-core would, keeping a queue of pending I/Os and
/// a logical clock, and checking invariants after every step.
fn drive(ops: Vec<Op>, replacement: Replacement) -> Result<(), TestCaseError> {
    const PROCS: u16 = 4;
    let mut pool = BufferPool::new(PoolConfig {
        procs: PROCS,
        demand_per_proc: 1,
        prefetch_per_proc: 2,
        global_prefetch_cap: 2 * PROCS as u32,
        replacement,
        evict_unused_prefetch: false,
    });
    let mut clock = SimTime::ZERO;
    let mut pending: std::collections::VecDeque<BlockId> = Default::default();
    // One outstanding demand read per process, as the testbed guarantees.
    let mut outstanding: std::collections::HashSet<u8> = Default::default();

    for op in ops {
        clock += SimDuration::from_millis(1);
        match op {
            Op::Read { proc, block } => {
                if outstanding.contains(&proc) {
                    continue;
                }
                let block = BlockId(block as u32);
                match pool.lookup_for_read(block, clock) {
                    Lookup::ReadyHit(buf) => {
                        pool.record_use(buf, ProcId(proc as u16), clock);
                    }
                    Lookup::UnreadyHit { .. } => {
                        // Waits; the completion path will make it ready.
                    }
                    Lookup::Miss => {
                        if let Some(buf) =
                            pool.alloc_demand(ProcId(proc as u16), block, SimTime::MAX)
                        {
                            pool.set_ready_at(buf, clock + SimDuration::from_millis(30));
                            pending.push_back(block);
                            outstanding.insert(proc);
                        }
                    }
                }
            }
            Op::Prefetch { proc, block } => {
                let block = BlockId(block as u32);
                if let Ok(buf) = pool.try_reserve_prefetch(ProcId(proc as u16), block) {
                    pool.commit_prefetch(buf, block, clock + SimDuration::from_millis(30));
                    pending.push_back(block);
                }
            }
            Op::CompleteOldest => {
                if let Some(block) = pending.pop_front() {
                    if let Some(buf) = pool.buffer_for(block) {
                        if matches!(pool.buffer(buf).state, rt_cache::BufState::Pending { .. }) {
                            pool.complete_io(buf, clock);
                        }
                    }
                    // Whoever demanded it may proceed with new reads.
                    outstanding.clear();
                }
            }
        }
        pool.assert_invariants();
        prop_assert!(
            pool.prefetched_unused() <= pool.config().global_prefetch_cap,
            "prefetch cap violated"
        );
    }

    // Final accounting sanity.
    let s = pool.stats();
    prop_assert_eq!(
        s.hit_ratio.total(),
        s.ready_hits + s.unready_hits + s.misses
    );
    prop_assert_eq!(
        s.wasted_prefetches,
        0,
        "paper policy never wastes prefetches"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn ru_set_pool_invariants_hold(ops in prop::collection::vec(op_strategy(4, 64), 1..200)) {
        drive(ops, Replacement::RuSet)?;
    }

    #[test]
    fn global_lru_pool_invariants_hold(ops in prop::collection::vec(op_strategy(4, 64), 1..200)) {
        drive(ops, Replacement::GlobalLru)?;
    }

    /// The index answers exactly the set of blocks held by buffers.
    #[test]
    fn contains_matches_buffer_contents(ops in prop::collection::vec(op_strategy(3, 32), 1..100)) {
        const PROCS: u16 = 3;
        let mut pool = BufferPool::new(PoolConfig {
            procs: PROCS,
            demand_per_proc: 1,
            prefetch_per_proc: 2,
            global_prefetch_cap: 6,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        let mut clock = SimTime::ZERO;
        for op in ops {
            clock += SimDuration::from_millis(1);
            if let Op::Prefetch { proc, block } = op {
                let block = BlockId(block as u32);
                let before = pool.contains(block);
                match pool.try_reserve_prefetch(ProcId(proc as u16), block) {
                    Ok(buf) => {
                        prop_assert!(!before, "reserved an already-cached block");
                        pool.commit_prefetch(buf, block, clock);
                        prop_assert!(pool.contains(block));
                        pool.complete_io(buf, clock);
                        prop_assert!(pool.contains(block));
                    }
                    Err(rt_cache::PrefetchBlocked::AlreadyCached) => {
                        prop_assert!(before);
                    }
                    Err(_) => {}
                }
            }
        }
    }
}
