//! The shared buffer pool with per-processor RU-set replacement.
//!
//! The testbed's cache (§III/§IV-D of the paper) partitions buffers into
//! per-processor **RU sets** for demand fetches (size 1 in the paper —
//! a "toss-immediately" variant) plus, when prefetching is enabled, a few
//! buffers per node reserved exclusively for prefetching, with a *global*
//! cap on prefetched-but-not-yet-used blocks. Lookup is global: any
//! processor hits on a block cached by any other, which "offers strong
//! locality for the more complex list manipulations while enforcing a
//! global policy".
//!
//! The pool is *passive*: rt-core drives it with explicit timestamps and
//! models the lock and memory contention around each call.

use rt_disk::{BlockId, FetchKind, ProcId};
use rt_sim::{Ratio, SimTime};

use crate::buffer::{BufState, Buffer, BufferClass, BufferId};

/// Demand-buffer replacement policy.
///
/// The testbed partitions demand buffers into per-processor **RU sets**
/// (§III): replacement is local to the requesting node, which keeps the
/// list manipulation in local memory while the index still enforces a
/// global lookup. The global-LRU alternative is the classical uniprocessor
/// design, provided as an ablation of that choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Per-processor RU sets (the paper's design).
    #[default]
    RuSet,
    /// One LRU list over all demand buffers.
    GlobalLru,
}

/// Pool geometry.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of processor nodes.
    pub procs: u16,
    /// Demand (RU-set) buffers per node. The paper uses 1.
    pub demand_per_proc: u16,
    /// Prefetch buffers per node. The paper uses 3 when prefetching, 0
    /// otherwise.
    pub prefetch_per_proc: u16,
    /// Global cap on prefetched-but-unused blocks. The paper uses
    /// `3 × procs`.
    pub global_prefetch_cap: u32,
    /// Demand-buffer replacement policy.
    pub replacement: Replacement,
    /// Allow evicting prefetched-but-unused blocks (LRU order). The paper
    /// protects them because its oracle never errs; fallible on-line
    /// predictors need this relaxation or their wrong guesses accumulate
    /// as permanently protected buffers and wedge the prefetch partition.
    pub evict_unused_prefetch: bool,
}

impl PoolConfig {
    /// The paper's non-prefetching cache: 1 buffer per node.
    pub fn paper_no_prefetch(procs: u16) -> Self {
        PoolConfig {
            procs,
            demand_per_proc: 1,
            prefetch_per_proc: 0,
            global_prefetch_cap: 0,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        }
    }

    /// The paper's prefetching cache: 1 demand + 3 prefetch buffers per
    /// node, global unused-prefetch cap of 3 per node.
    pub fn paper_prefetch(procs: u16) -> Self {
        PoolConfig {
            procs,
            demand_per_proc: 1,
            prefetch_per_proc: 3,
            global_prefetch_cap: 3 * procs as u32,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        }
    }

    /// Total buffers in the pool.
    pub fn total_buffers(&self) -> u32 {
        self.procs as u32 * (self.demand_per_proc as u32 + self.prefetch_per_proc as u32)
    }
}

/// Outcome of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Data present; a read can complete after a copy.
    ReadyHit(BufferId),
    /// Buffer reserved but I/O still in flight; the requester must wait
    /// until `ready_at` (the hit-wait time).
    UnreadyHit {
        /// The pending buffer.
        buf: BufferId,
        /// When its I/O completes.
        ready_at: SimTime,
    },
    /// Not cached; a demand fetch is required.
    Miss,
}

/// Why a prefetch attempt could not reserve a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchBlocked {
    /// The block is already cached or in flight — nothing to do.
    AlreadyCached,
    /// The global prefetched-but-unused cap is reached.
    GlobalCap,
    /// Every prefetch buffer on this node is pending or unused-prefetched.
    NoBuffer,
}

/// Snapshot of how full the prefetch partition is — the backpressure
/// signal the admission layer reads before reserving more buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolPressure {
    /// Prefetch buffers with no contents.
    pub free: u32,
    /// Prefetch buffers with an I/O in flight.
    pub pending: u32,
    /// Prefetch buffers holding data nobody has read yet.
    pub unused_ready: u32,
    /// Buffers (any class) pinned by an in-flight copy.
    pub pinned: u32,
    /// Total prefetch buffers in the pool.
    pub prefetch_total: u32,
}

impl PoolPressure {
    /// Fraction of the prefetch partition that is committed (pending or
    /// holding unused data). 0.0 when there are no prefetch buffers.
    pub fn occupancy(&self) -> f64 {
        if self.prefetch_total == 0 {
            0.0
        } else {
            (self.pending + self.unused_ready) as f64 / self.prefetch_total as f64
        }
    }
}

/// Cache-level counters for one run.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Hit/miss ratio over all reads (hits include unready hits — the
    /// paper's generous definition).
    pub hit_ratio: Ratio,
    /// Reads satisfied with data already present.
    pub ready_hits: u64,
    /// Reads that found a pending buffer and had to wait.
    pub unready_hits: u64,
    /// Reads that missed entirely.
    pub misses: u64,
    /// Demand fetches issued to disk.
    pub demand_fetches: u64,
    /// Prefetches issued to disk.
    pub prefetches: u64,
    /// Prefetch attempts rejected by the global cap.
    pub blocked_global_cap: u64,
    /// Prefetch attempts rejected for lack of a node-local buffer.
    pub blocked_no_buffer: u64,
    /// Prefetched blocks evicted before anyone used them. Zero under the
    /// paper's policies (unused prefetches are never evicted), tracked to
    /// verify exactly that.
    pub wasted_prefetches: u64,
}

/// Sentinel in the dense block index: no buffer holds this block.
const NO_BUFFER: u32 = u32::MAX;

/// The shared block cache.
///
/// `Clone` snapshots the entire pool — buffers, index, partitions, and
/// statistics — so a warmed-up cache can be forked for base/variant runs.
#[derive(Clone)]
pub struct BufferPool {
    config: PoolConfig,
    buffers: Vec<Buffer>,
    /// block -> buffer holding or filling it: a dense table indexed by
    /// block number ([`NO_BUFFER`] = absent), grown on first touch of a
    /// block. File sizes are tens of thousands of 4-byte slots, so the
    /// table is small, and lookups — the hottest pool operation — are one
    /// bounds-checked load instead of a hash probe.
    index: Vec<u32>,
    /// Buffer ids of each node's demand partition.
    demand_sets: Vec<Vec<BufferId>>,
    /// Buffer ids of each node's prefetch partition.
    prefetch_sets: Vec<Vec<BufferId>>,
    /// All demand buffers in node order — the GlobalLru candidate list,
    /// flattened once at construction (partitions never change size).
    all_demand: Vec<BufferId>,
    /// Count of unused-prefetch buffers (pending-prefetch or ready-unused).
    prefetched_unused: u32,
    /// Monotonic count of unused-prefetch evictions. An unused prefetch is
    /// the only kind of cached block that can sit *ahead* of a demand
    /// frontier and later disappear, so this counter is the invalidation
    /// epoch for oracle scan hints (see `rt_core`'s policy module).
    unused_evictions: u64,
    stats: CacheStats,
}

impl BufferPool {
    /// Build an empty pool with the given geometry.
    pub fn new(config: PoolConfig) -> Self {
        assert!(config.procs > 0, "pool needs at least one node");
        assert!(
            config.demand_per_proc > 0,
            "each node needs at least one demand buffer"
        );
        let mut buffers = Vec::with_capacity(config.total_buffers() as usize);
        let mut demand_sets = Vec::with_capacity(config.procs as usize);
        let mut prefetch_sets = Vec::with_capacity(config.procs as usize);
        for p in 0..config.procs {
            let mut dset = Vec::with_capacity(config.demand_per_proc as usize);
            for _ in 0..config.demand_per_proc {
                let id = BufferId(buffers.len() as u32);
                buffers.push(Buffer::new(ProcId(p), BufferClass::Demand));
                dset.push(id);
            }
            demand_sets.push(dset);
            let mut pset = Vec::with_capacity(config.prefetch_per_proc as usize);
            for _ in 0..config.prefetch_per_proc {
                let id = BufferId(buffers.len() as u32);
                buffers.push(Buffer::new(ProcId(p), BufferClass::Prefetch));
                pset.push(id);
            }
            prefetch_sets.push(pset);
        }
        let all_demand: Vec<BufferId> = demand_sets.iter().flatten().copied().collect();
        BufferPool {
            config,
            buffers,
            index: Vec::new(),
            demand_sets,
            prefetch_sets,
            all_demand,
            prefetched_unused: 0,
            unused_evictions: 0,
            stats: CacheStats::default(),
        }
    }

    /// The buffer indexed for `block`, if any — one dense-table load.
    #[inline]
    fn index_get(&self, block: BlockId) -> Option<BufferId> {
        match self.index.get(block.index()) {
            Some(&buf) if buf != NO_BUFFER => Some(BufferId(buf)),
            _ => None,
        }
    }

    /// Point the index at `buf` for `block`, growing the table on first
    /// touch of a block number beyond its current extent.
    #[inline]
    fn index_insert(&mut self, block: BlockId, buf: BufferId) {
        if block.index() >= self.index.len() {
            self.index.resize(block.index() + 1, NO_BUFFER);
        }
        debug_assert_eq!(self.index[block.index()], NO_BUFFER);
        self.index[block.index()] = buf.0;
    }

    #[inline]
    fn index_remove(&mut self, block: BlockId) {
        self.index[block.index()] = NO_BUFFER;
    }

    /// Run the full invariant sweep in debug builds; free in release.
    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        self.assert_invariants();
    }

    /// The pool geometry.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of prefetched-but-unused blocks currently held.
    #[inline]
    pub fn prefetched_unused(&self) -> u32 {
        self.prefetched_unused
    }

    /// Total unused-prefetch evictions so far. While this is unchanged, no
    /// block that was cached ahead of a demand frontier has become
    /// uncached — the validity condition for oracle scan hints.
    #[inline]
    pub fn unused_evictions(&self) -> u64 {
        self.unused_evictions
    }

    /// Inspect a buffer.
    #[inline]
    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.index()]
    }

    /// Is `block` cached or in flight (without touching statistics)?
    /// Used by prefetch policies to skip already-covered blocks.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.index_get(block).is_some()
    }

    /// The buffer currently holding or filling `block`, without touching
    /// statistics.
    #[inline]
    pub fn buffer_for(&self, block: BlockId) -> Option<BufferId> {
        self.index_get(block)
    }

    /// Look up `block` on behalf of a user read at time `now`, updating the
    /// hit/miss statistics. On a miss the caller must follow up with
    /// [`BufferPool::alloc_demand`]. Hit-wait *times* are accounted by the
    /// caller (who knows when the data actually arrives); the pool tracks
    /// the ready/unready/miss classification.
    #[inline]
    pub fn lookup_for_read(&mut self, block: BlockId, _now: SimTime) -> Lookup {
        match self.index_get(block) {
            None => {
                self.stats.hit_ratio.record(false);
                self.stats.misses += 1;
                Lookup::Miss
            }
            Some(buf) => match self.buffers[buf.index()].state {
                BufState::Ready { .. } => {
                    self.stats.hit_ratio.record(true);
                    self.stats.ready_hits += 1;
                    Lookup::ReadyHit(buf)
                }
                BufState::Pending { ready_at, .. } => {
                    self.stats.hit_ratio.record(true);
                    self.stats.unready_hits += 1;
                    Lookup::UnreadyHit { buf, ready_at }
                }
                BufState::Free => unreachable!("indexed buffer cannot be free"),
            },
        }
    }

    /// Update the expected completion time of a pending buffer. Used when a
    /// buffer is reserved before its disk request has been enqueued (the
    /// miss work runs in its own critical section).
    #[inline]
    pub fn set_ready_at(&mut self, buf: BufferId, ready_at: SimTime) {
        match &mut self.buffers[buf.index()].state {
            BufState::Pending { ready_at: r, .. } => *r = ready_at,
            other => panic!("set_ready_at on non-pending buffer: {other:?}"),
        }
    }

    /// Pin `buf` for a copy-out: the buffer cannot be evicted until the
    /// matching [`BufferPool::unpin`]. Pins nest (several processes may
    /// copy the same block concurrently).
    #[inline]
    pub fn pin(&mut self, buf: BufferId) {
        let b = &mut self.buffers[buf.index()];
        debug_assert!(
            matches!(b.state, BufState::Ready { .. }),
            "pin on a non-ready buffer"
        );
        b.pins += 1;
    }

    /// Release one pin on `buf`.
    #[inline]
    pub fn unpin(&mut self, buf: BufferId) {
        let b = &mut self.buffers[buf.index()];
        assert!(b.pins > 0, "unpin without a matching pin");
        b.pins -= 1;
    }

    /// Record that `proc` consumed the data in `buf` at `now`. Marks the
    /// buffer used (releasing it from the prefetch cap if applicable) and
    /// refreshes its recency.
    #[inline]
    pub fn record_use(&mut self, buf: BufferId, _proc: ProcId, now: SimTime) {
        let b = &mut self.buffers[buf.index()];
        match &mut b.state {
            BufState::Ready {
                used,
                last_use,
                prefetched,
                ..
            } => {
                if *prefetched && !*used {
                    debug_assert!(self.prefetched_unused > 0);
                    self.prefetched_unused -= 1;
                }
                *used = true;
                *last_use = now;
            }
            other => panic!("record_use on non-ready buffer: {other:?}"),
        }
    }

    /// Reserve a buffer in `proc`'s RU set for a demand fetch of `block`,
    /// evicting the least-recently-used evictable buffer of the set. The
    /// caller supplies `ready_at` (or a placeholder updated via
    /// [`BufferPool::set_ready_at`] once the disk request is enqueued).
    /// Returns `None` when every candidate buffer is pinned by an in-flight
    /// copy — the caller retries shortly.
    pub fn alloc_demand(
        &mut self,
        proc: ProcId,
        block: BlockId,
        ready_at: SimTime,
    ) -> Option<BufferId> {
        debug_assert!(
            !self.contains(block),
            "alloc_demand for an already-indexed block"
        );
        let victim = match self.config.replacement {
            Replacement::RuSet => self.pick_victim(&self.demand_sets[proc.index()]),
            // One LRU list over every node's demand buffers, flattened
            // once at construction.
            Replacement::GlobalLru => self.pick_victim(&self.all_demand),
        }?;
        self.evict(victim);
        self.buffers[victim.index()].state = BufState::Pending {
            block,
            ready_at,
            kind: FetchKind::Demand,
        };
        self.index_insert(block, victim);
        self.stats.demand_fetches += 1;
        self.debug_check();
        Some(victim)
    }

    /// Try to reserve a prefetch buffer for `block` on behalf of `proc`.
    ///
    /// Prefetch buffers live three-per-node but are a *global* resource
    /// constrained only by the global unused-prefetch cap — exactly the
    /// paper's arrangement, which is what lets "some processes grab several
    /// buffers and prefetch for themselves, leaving few buffers for other
    /// processes" (§V-B, the lfp pathology). The node's own buffers are
    /// preferred (NUMA locality); remote nodes' free or reusable buffers
    /// are stolen when the local partition is exhausted.
    ///
    /// On success the caller must start the I/O and then call
    /// [`BufferPool::commit_prefetch`] with the completion time.
    pub fn try_reserve_prefetch(
        &mut self,
        proc: ProcId,
        block: BlockId,
    ) -> Result<BufferId, PrefetchBlocked> {
        if self.contains(block) {
            return Err(PrefetchBlocked::AlreadyCached);
        }
        if self.prefetched_unused >= self.config.global_prefetch_cap {
            self.stats.blocked_global_cap += 1;
            return Err(PrefetchBlocked::GlobalCap);
        }
        // Local partition first, then the other nodes' in index order.
        let victim = self
            .pick_victim(&self.prefetch_sets[proc.index()])
            .or_else(|| {
                self.prefetch_sets
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != proc.index())
                    .find_map(|(_, set)| self.pick_victim(set))
            });
        match victim {
            Some(victim) => {
                self.evict(victim);
                Ok(victim)
            }
            None => {
                self.stats.blocked_no_buffer += 1;
                Err(PrefetchBlocked::NoBuffer)
            }
        }
    }

    /// Commit a reservation from [`BufferPool::try_reserve_prefetch`]: the
    /// I/O for `block` has been submitted and completes at `ready_at`.
    pub fn commit_prefetch(&mut self, buf: BufferId, block: BlockId, ready_at: SimTime) {
        debug_assert_eq!(self.buffers[buf.index()].state, BufState::Free);
        debug_assert!(!self.contains(block));
        self.buffers[buf.index()].state = BufState::Pending {
            block,
            ready_at,
            kind: FetchKind::Prefetch,
        };
        self.index_insert(block, buf);
        self.prefetched_unused += 1;
        self.stats.prefetches += 1;
        self.debug_check();
    }

    /// Mark the I/O filling `buf` complete at `now`. The buffer becomes
    /// ready; unready-hit waiters (tracked by the caller) may now be woken.
    pub fn complete_io(&mut self, buf: BufferId, now: SimTime) {
        let b = &mut self.buffers[buf.index()];
        match b.state {
            BufState::Pending { block, kind, .. } => {
                b.state = BufState::Ready {
                    block,
                    since: now,
                    last_use: now,
                    used: false,
                    prefetched: kind == FetchKind::Prefetch,
                };
            }
            other => panic!("complete_io on non-pending buffer: {other:?}"),
        }
    }

    /// Abandon an in-flight fill: the I/O for this buffer failed and will
    /// not be retried. The block is unindexed and the buffer freed, as if
    /// the fetch had never been issued. Panics if the buffer is not
    /// [`BufState::Pending`] or is pinned (a pinned pending buffer has a
    /// waiter, and waiters must be retried, not abandoned).
    pub fn discard_pending(&mut self, buf: BufferId) {
        let b = &self.buffers[buf.index()];
        assert!(
            matches!(b.state, BufState::Pending { .. }),
            "discard_pending on non-pending buffer: {:?}",
            b.state
        );
        assert_eq!(b.pins, 0, "discard_pending on pinned buffer");
        if b.is_unused_prefetch() {
            self.prefetched_unused = self.prefetched_unused.saturating_sub(1);
            // A cached-ahead block vanished: bump the epoch so scan memos
            // that assumed it was coming are invalidated.
            self.unused_evictions += 1;
        }
        let block = b.block().expect("pending buffer always holds a block");
        self.index_remove(block);
        self.buffers[buf.index()].state = BufState::Free;
        self.debug_check();
    }

    /// May the replacement policy reclaim this buffer, given the pool's
    /// configuration? Extends [`Buffer::is_evictable`] with the optional
    /// unused-prefetch relaxation.
    fn can_evict(&self, id: BufferId) -> bool {
        let b = &self.buffers[id.index()];
        if b.is_evictable() {
            return true;
        }
        self.config.evict_unused_prefetch
            && b.pins == 0
            && matches!(b.state, BufState::Ready { .. })
    }

    /// Least-recently-used evictable buffer of `set`, preferring free
    /// buffers outright.
    fn pick_victim(&self, set: &[BufferId]) -> Option<BufferId> {
        let mut best: Option<(BufferId, SimTime)> = None;
        for &id in set {
            match self.buffers[id.index()].state {
                BufState::Free => return Some(id),
                BufState::Ready { last_use, .. }
                    if self.can_evict(id) && best.is_none_or(|(_, t)| last_use < t) =>
                {
                    best = Some((id, last_use));
                }
                _ => {}
            }
        }
        best.map(|(id, _)| id)
    }

    /// Drop a buffer's contents and unindex its block.
    fn evict(&mut self, buf: BufferId) {
        let b = &self.buffers[buf.index()];
        if let Some(block) = b.block() {
            if b.is_unused_prefetch() {
                // Only reachable with the unused-prefetch relaxation: a
                // prefetched block nobody wanted was pushed out.
                self.stats.wasted_prefetches += 1;
                self.prefetched_unused = self.prefetched_unused.saturating_sub(1);
                self.unused_evictions += 1;
            }
            self.index_remove(block);
        }
        self.buffers[buf.index()].state = BufState::Free;
    }

    /// Drop every ready, unpinned buffer of `node`'s demand (RU) set: the
    /// node rejoined after a crash and restarts with a cold RU set, as if
    /// freshly booted. Pending buffers (an orphaned fetch still in flight)
    /// and pinned buffers (another node mid-copy on the shared data) are
    /// left alone — they belong to the machine, not the node. Returns the
    /// number of buffers dropped.
    pub fn drop_node_demand(&mut self, node: ProcId) -> u32 {
        let mut dropped = 0;
        for i in 0..self.demand_sets[node.index()].len() {
            let id = self.demand_sets[node.index()][i];
            let b = &self.buffers[id.index()];
            if b.pins == 0 && matches!(b.state, BufState::Ready { .. }) {
                self.evict(id);
                dropped += 1;
            }
        }
        self.debug_check();
        dropped
    }

    /// Snapshot the prefetch partition's fullness. A scan over the pool —
    /// called only when the admission layer is enabled, never on the
    /// default paths.
    pub fn pressure(&self) -> PoolPressure {
        let mut p = PoolPressure {
            free: 0,
            pending: 0,
            unused_ready: 0,
            pinned: 0,
            prefetch_total: 0,
        };
        for b in &self.buffers {
            if b.pins > 0 {
                p.pinned += 1;
            }
            if b.class != BufferClass::Prefetch {
                continue;
            }
            p.prefetch_total += 1;
            match b.state {
                BufState::Free => p.free += 1,
                BufState::Pending { .. } => p.pending += 1,
                BufState::Ready { used, .. } if !used => p.unused_ready += 1,
                BufState::Ready { .. } => {}
            }
        }
        p
    }

    /// Verify internal invariants; used by tests and property tests, and
    /// run after every pool mutation in debug builds (see
    /// [`BufferPool::debug_check`] — release builds pay nothing).
    ///
    /// Panics with a description if an invariant is violated.
    pub fn assert_invariants(&self) {
        // 1. Every indexed block maps to a buffer that holds/fills it.
        for (slot, &buf) in self.index.iter().enumerate() {
            if buf == NO_BUFFER {
                continue;
            }
            assert_eq!(
                self.buffers[buf as usize].block(),
                Some(BlockId(slot as u32)),
                "index points at a buffer with different contents"
            );
        }
        // 2. No two buffers hold the same block.
        let mut held = std::collections::HashSet::new();
        for b in &self.buffers {
            if let Some(block) = b.block() {
                assert!(held.insert(block), "block {block:?} cached twice");
                assert!(
                    self.contains(block),
                    "buffer holds unindexed block {block:?}"
                );
            }
        }
        // 3. The unused-prefetch counter matches reality and the cap.
        let actual = self
            .buffers
            .iter()
            .filter(|b| b.is_unused_prefetch())
            .count() as u32;
        assert_eq!(actual, self.prefetched_unused, "prefetch-cap counter drift");
        assert!(
            self.prefetched_unused <= self.config.global_prefetch_cap
                || self.config.global_prefetch_cap == 0,
            "global prefetch cap exceeded"
        );
        // 4. Pins only on ready buffers.
        for b in &self.buffers {
            if b.pins > 0 {
                assert!(
                    matches!(b.state, BufState::Ready { .. }),
                    "pinned buffer is not ready"
                );
            }
        }
        // 5. Partition sizes never change.
        for p in 0..self.config.procs as usize {
            assert_eq!(
                self.demand_sets[p].len(),
                self.config.demand_per_proc as usize
            );
            assert_eq!(
                self.prefetch_sets[p].len(),
                self.config.prefetch_per_proc as usize
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pool() -> BufferPool {
        BufferPool::new(PoolConfig::paper_prefetch(2))
    }

    #[test]
    fn miss_then_demand_fetch_then_hit() {
        let mut p = pool();
        assert_eq!(p.lookup_for_read(BlockId(5), t(0)), Lookup::Miss);
        let buf = p.alloc_demand(ProcId(0), BlockId(5), t(30)).unwrap();
        match p.lookup_for_read(BlockId(5), t(1)) {
            Lookup::UnreadyHit { buf: b, ready_at } => {
                assert_eq!(b, buf);
                assert_eq!(ready_at, t(30));
            }
            other => panic!("expected unready hit, got {other:?}"),
        }
        p.complete_io(buf, t(30));
        assert_eq!(p.lookup_for_read(BlockId(5), t(31)), Lookup::ReadyHit(buf));
        p.record_use(buf, ProcId(0), t(31));
        p.assert_invariants();
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.unready_hits, 1);
        assert_eq!(s.ready_hits, 1);
        assert_eq!(s.demand_fetches, 1);
        assert!((s.hit_ratio.value() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unready_hit_reports_ready_time() {
        let mut p = pool();
        let buf = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        match p.lookup_for_read(BlockId(1), t(12)) {
            Lookup::UnreadyHit { ready_at, .. } => assert_eq!(ready_at, t(30)),
            other => panic!("expected unready hit, got {other:?}"),
        }
        p.complete_io(buf, t(30));
        p.assert_invariants();
    }

    #[test]
    fn set_ready_at_updates_pending() {
        let mut p = pool();
        let buf = p.alloc_demand(ProcId(0), BlockId(1), SimTime::MAX).unwrap();
        p.set_ready_at(buf, t(42));
        match p.lookup_for_read(BlockId(1), t(0)) {
            Lookup::UnreadyHit { ready_at, .. } => assert_eq!(ready_at, t(42)),
            other => panic!("expected unready hit, got {other:?}"),
        }
        p.complete_io(buf, t(42));
        p.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "set_ready_at on non-pending")]
    fn set_ready_at_rejects_ready_buffer() {
        let mut p = pool();
        let buf = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(buf, t(30));
        p.set_ready_at(buf, t(50));
    }

    #[test]
    fn demand_eviction_replaces_ru_set_lru() {
        let mut p = pool();
        let b1 = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(b1, t(30));
        p.record_use(b1, ProcId(0), t(31));
        // Same proc's next miss evicts block 1 (RU set size 1).
        let b2 = p.alloc_demand(ProcId(0), BlockId(2), t(60)).unwrap();
        assert_eq!(b1, b2, "RU set of size 1 must reuse the same buffer");
        assert!(!p.contains(BlockId(1)));
        assert!(p.contains(BlockId(2)));
        p.assert_invariants();
    }

    #[test]
    fn other_procs_hit_on_foreign_demand_buffer() {
        let mut p = pool();
        let buf = p.alloc_demand(ProcId(0), BlockId(7), t(30)).unwrap();
        p.complete_io(buf, t(30));
        assert_eq!(p.lookup_for_read(BlockId(7), t(31)), Lookup::ReadyHit(buf));
    }

    #[test]
    fn prefetch_reserve_commit_use_cycle() {
        let mut p = pool();
        let buf = p.try_reserve_prefetch(ProcId(0), BlockId(3)).unwrap();
        p.commit_prefetch(buf, BlockId(3), t(30));
        assert_eq!(p.prefetched_unused(), 1);
        p.complete_io(buf, t(30));
        assert_eq!(p.prefetched_unused(), 1, "unused until first read");
        match p.lookup_for_read(BlockId(3), t(40)) {
            Lookup::ReadyHit(b) => p.record_use(b, ProcId(1), t(40)),
            other => panic!("expected ready hit, got {other:?}"),
        }
        assert_eq!(p.prefetched_unused(), 0);
        p.assert_invariants();
    }

    #[test]
    fn prefetch_skips_cached_blocks() {
        let mut p = pool();
        let buf = p.alloc_demand(ProcId(0), BlockId(9), t(30)).unwrap();
        assert_eq!(
            p.try_reserve_prefetch(ProcId(1), BlockId(9)),
            Err(PrefetchBlocked::AlreadyCached)
        );
        p.complete_io(buf, t(30));
        assert_eq!(
            p.try_reserve_prefetch(ProcId(1), BlockId(9)),
            Err(PrefetchBlocked::AlreadyCached)
        );
    }

    #[test]
    fn prefetch_buffers_steal_globally() {
        let mut p = pool();
        // Node 0 grabs its own three buffers, then steals from node 1 —
        // the hogging the paper blames for the lfp slowdowns.
        for i in 0..5u32 {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(i)).unwrap();
            p.commit_prefetch(buf, BlockId(i), t(30));
        }
        let stolen = (0..5)
            .filter(|&i| {
                let buf = p.buffer_for(BlockId(i)).unwrap();
                p.buffer(buf).home == ProcId(1)
            })
            .count();
        assert_eq!(stolen, 2, "two of five reservations stolen from node 1");
        // The sixth reservation hits the global cap (3 per proc × 2).
        let buf = p.try_reserve_prefetch(ProcId(0), BlockId(5)).unwrap();
        p.commit_prefetch(buf, BlockId(5), t(30));
        assert_eq!(
            p.try_reserve_prefetch(ProcId(1), BlockId(6)),
            Err(PrefetchBlocked::GlobalCap)
        );
        p.assert_invariants();
    }

    #[test]
    fn local_prefetch_buffers_preferred() {
        let mut p = pool();
        let buf = p.try_reserve_prefetch(ProcId(1), BlockId(0)).unwrap();
        assert_eq!(p.buffer(buf).home, ProcId(1), "own node's buffer first");
    }

    #[test]
    fn global_cap_blocks_prefetch() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 2,
            demand_per_proc: 1,
            prefetch_per_proc: 3,
            global_prefetch_cap: 2,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        for i in 0..2u32 {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(i)).unwrap();
            p.commit_prefetch(buf, BlockId(i), t(30));
        }
        assert_eq!(
            p.try_reserve_prefetch(ProcId(1), BlockId(5)),
            Err(PrefetchBlocked::GlobalCap)
        );
        assert_eq!(p.stats().blocked_global_cap, 1);
        p.assert_invariants();
    }

    #[test]
    fn used_prefetch_buffer_is_recycled() {
        let mut p = pool();
        // Fill all three of node 0's prefetch buffers and use them at
        // different times.
        for i in 0..3u32 {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(i)).unwrap();
            p.commit_prefetch(buf, BlockId(i), t(30));
            p.complete_io(buf, t(30));
            p.record_use(buf, ProcId(0), t(35 + i as u64));
        }
        // No free buffer remains, so the next reservation evicts the
        // least recently used block (block 0, used at t=35).
        assert!(p.try_reserve_prefetch(ProcId(0), BlockId(10)).is_ok());
        assert!(!p.contains(BlockId(0)));
        assert!(p.contains(BlockId(1)));
        assert!(p.contains(BlockId(2)));
        assert_eq!(p.stats().wasted_prefetches, 0);
        p.assert_invariants();
    }

    #[test]
    fn unused_prefetch_never_evicted() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 1,
            demand_per_proc: 1,
            prefetch_per_proc: 3,
            global_prefetch_cap: 8, // cap above the buffer count
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        for i in 0..3u32 {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(i)).unwrap();
            p.commit_prefetch(buf, BlockId(i), t(30));
            p.complete_io(buf, t(30));
        }
        // All three ready but unused: protected, so reservation fails with
        // NoBuffer (the cap still has room).
        assert_eq!(
            p.try_reserve_prefetch(ProcId(0), BlockId(10)),
            Err(PrefetchBlocked::NoBuffer)
        );
        for i in 0..3u32 {
            assert!(p.contains(BlockId(i)));
        }
        p.assert_invariants();
    }

    #[test]
    fn pick_victim_prefers_lru() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 1,
            demand_per_proc: 2,
            prefetch_per_proc: 0,
            global_prefetch_cap: 0,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        let b1 = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(b1, t(30));
        p.record_use(b1, ProcId(0), t(31));
        let b2 = p.alloc_demand(ProcId(0), BlockId(2), t(60)).unwrap();
        p.complete_io(b2, t(60));
        p.record_use(b2, ProcId(0), t(61));
        // Refresh block 1 so block 2 becomes LRU.
        p.record_use(b1, ProcId(0), t(70));
        let b3 = p.alloc_demand(ProcId(0), BlockId(3), t(90)).unwrap();
        assert_eq!(b3, b2, "LRU (block 2) should be evicted");
        assert!(p.contains(BlockId(1)));
        assert!(!p.contains(BlockId(2)));
        p.assert_invariants();
    }

    #[test]
    fn global_lru_evicts_across_nodes() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 2,
            demand_per_proc: 1,
            prefetch_per_proc: 0,
            global_prefetch_cap: 0,
            replacement: Replacement::GlobalLru,
            evict_unused_prefetch: false,
        });
        // Node 0 fetches block 1 and uses it at t=31.
        let b1 = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(b1, t(30));
        p.record_use(b1, ProcId(0), t(31));
        // Node 1 fetches block 2, uses at t=61.
        let b2 = p.alloc_demand(ProcId(1), BlockId(2), t(60)).unwrap();
        p.complete_io(b2, t(60));
        p.record_use(b2, ProcId(1), t(61));
        // Node 1 misses again: under global LRU the victim is node 0's
        // buffer (block 1, older), not node 1's own.
        let b3 = p.alloc_demand(ProcId(1), BlockId(3), t(90)).unwrap();
        assert_eq!(b3, b1);
        assert!(!p.contains(BlockId(1)));
        assert!(p.contains(BlockId(2)));
        p.assert_invariants();
    }

    #[test]
    fn ru_set_never_evicts_foreign_buffers() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 2,
            demand_per_proc: 1,
            prefetch_per_proc: 0,
            global_prefetch_cap: 0,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        let b1 = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(b1, t(30));
        p.record_use(b1, ProcId(0), t(31));
        let b2 = p.alloc_demand(ProcId(1), BlockId(2), t(60)).unwrap();
        p.complete_io(b2, t(60));
        p.record_use(b2, ProcId(1), t(61));
        // Node 1's next miss recycles its own buffer despite block 1 being
        // older globally.
        let b3 = p.alloc_demand(ProcId(1), BlockId(3), t(90)).unwrap();
        assert_eq!(b3, b2);
        assert!(p.contains(BlockId(1)));
        p.assert_invariants();
    }

    #[test]
    fn pressure_tracks_prefetch_partition() {
        let mut p = pool(); // 2 procs × 3 prefetch buffers
        let empty = p.pressure();
        assert_eq!(empty.prefetch_total, 6);
        assert_eq!(empty.free, 6);
        assert!((empty.occupancy() - 0.0).abs() < 1e-9);

        // Three in flight: half the partition is committed.
        for i in 0..3u32 {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(i)).unwrap();
            p.commit_prefetch(buf, BlockId(i), t(30));
        }
        let mid = p.pressure();
        assert_eq!(mid.pending, 3);
        assert_eq!(mid.free, 3);
        assert!((mid.occupancy() - 0.5).abs() < 1e-9);

        // Completion moves them to unused-ready; occupancy is unchanged
        // until someone reads the data.
        for i in 0..3u32 {
            let buf = p.buffer_for(BlockId(i)).unwrap();
            p.complete_io(buf, t(30));
        }
        let ready = p.pressure();
        assert_eq!(ready.pending, 0);
        assert_eq!(ready.unused_ready, 3);
        assert!((ready.occupancy() - 0.5).abs() < 1e-9);

        // Consuming a block releases its share of the pressure.
        let buf = p.buffer_for(BlockId(0)).unwrap();
        p.record_use(buf, ProcId(1), t(40));
        assert_eq!(p.pressure().unused_ready, 2);
        // A pinned copy-out shows up in the pinned count.
        p.pin(buf);
        assert_eq!(p.pressure().pinned, 1);
        p.unpin(buf);
        p.assert_invariants();
    }

    #[test]
    fn drop_node_demand_leaves_pending_and_pinned_alone() {
        let mut p = BufferPool::new(PoolConfig {
            procs: 2,
            demand_per_proc: 3,
            prefetch_per_proc: 0,
            global_prefetch_cap: 0,
            replacement: Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        // Node 0: one ready block, one pinned block, one in-flight fill.
        let ready = p.alloc_demand(ProcId(0), BlockId(1), t(30)).unwrap();
        p.complete_io(ready, t(30));
        let pinned = p.alloc_demand(ProcId(0), BlockId(2), t(30)).unwrap();
        p.complete_io(pinned, t(30));
        p.pin(pinned);
        p.alloc_demand(ProcId(0), BlockId(3), t(90)).unwrap();
        // Node 1: a ready block that must survive node 0's cold restart.
        let other = p.alloc_demand(ProcId(1), BlockId(4), t(30)).unwrap();
        p.complete_io(other, t(30));

        assert_eq!(p.drop_node_demand(ProcId(0)), 1);
        assert!(!p.contains(BlockId(1)), "ready unpinned buffer dropped");
        assert!(p.contains(BlockId(2)), "pinned buffer kept");
        assert!(p.contains(BlockId(3)), "pending fill kept");
        assert!(p.contains(BlockId(4)), "other node untouched");
        p.unpin(pinned);
        p.assert_invariants();
    }

    #[test]
    fn stats_totals_are_consistent() {
        let mut p = pool();
        for i in 0..4u32 {
            if p.lookup_for_read(BlockId(i), t(i as u64)) == Lookup::Miss {
                let b = p
                    .alloc_demand(ProcId(0), BlockId(i), t(30 + i as u64))
                    .unwrap();
                p.complete_io(b, t(30 + i as u64));
                p.record_use(b, ProcId(0), t(31 + i as u64));
            }
        }
        let s = p.stats();
        assert_eq!(s.hit_ratio.total(), 4);
        assert_eq!(s.misses + s.ready_hits + s.unready_hits, 4);
        assert_eq!(s.demand_fetches, s.misses);
    }
}
