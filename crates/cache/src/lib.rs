//! # rt-cache — the shared block cache
//!
//! The buffer-cache substrate of the RAPID Transit reproduction: a global
//! block index over per-processor buffer partitions. Demand fetches recycle
//! each node's small **RU set** (size 1 in the paper — "toss-immediately");
//! prefetches draw from a reserved per-node partition under a global cap on
//! prefetched-but-unused blocks. Lookups are global, so any processor hits
//! on blocks fetched by any other — the property that makes global access
//! patterns profitable to prefetch.
//!
//! The pool distinguishes **ready hits** from **unready hits** (buffer
//! reserved, I/O still in flight) and records the **hit-wait time** of the
//! latter, the quantity the paper identifies as the gap between the
//! traditional hit-ratio metric and real performance.
//!
//! ```
//! use rt_cache::{BufferPool, PoolConfig, Lookup};
//! use rt_disk::{BlockId, ProcId};
//! use rt_sim::{SimTime, SimDuration};
//!
//! let mut pool = BufferPool::new(PoolConfig::paper_prefetch(20));
//! let t0 = SimTime::ZERO;
//! assert_eq!(pool.lookup_for_read(BlockId(0), t0), Lookup::Miss);
//! let buf = pool
//!     .alloc_demand(ProcId(0), BlockId(0), t0 + SimDuration::from_millis(30))
//!     .expect("fresh pool has free buffers");
//! pool.complete_io(buf, t0 + SimDuration::from_millis(30));
//! // Any other processor now gets a ready hit.
//! let hit = pool.lookup_for_read(BlockId(0), t0 + SimDuration::from_millis(31));
//! assert_eq!(hit, Lookup::ReadyHit(buf));
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod pool;

pub use buffer::{BufState, Buffer, BufferClass, BufferId};
pub use pool::{
    BufferPool, CacheStats, Lookup, PoolConfig, PoolPressure, PrefetchBlocked, Replacement,
};
