//! Buffer descriptors and their state machine.
//!
//! A buffer is either free, filling from disk ([`BufState::Pending`]), or
//! holding valid data ([`BufState::Ready`]). The distinction between a
//! *pending* and a *ready* buffer is central to the paper: a read request
//! that finds a pending buffer is an **unready hit** — counted as a cache
//! hit by the traditional metric, yet the requester still waits out the
//! remaining I/O time (the *hit-wait time*).

use rt_disk::{BlockId, FetchKind, ProcId};
use rt_sim::SimTime;

/// Identifies a buffer within the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u32);

impl BufferId {
    /// Index for the pool's buffer array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which partition of the pool a buffer belongs to. The testbed reserves the
/// prefetch partition exclusively for prefetching (3 per node in the paper's
/// configuration) on top of the per-node demand (RU-set) buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BufferClass {
    /// Part of a node's RU set; filled by demand fetches.
    Demand,
    /// Reserved for prefetched blocks.
    Prefetch,
}

/// The buffer state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufState {
    /// No valid contents.
    Free,
    /// Disk I/O in flight.
    Pending {
        /// The block being fetched.
        block: BlockId,
        /// When the I/O completes (known at submission: FIFO disks).
        ready_at: SimTime,
        /// Demand fetch or prefetch.
        kind: FetchKind,
    },
    /// Holds valid data for `block`.
    Ready {
        /// The cached block.
        block: BlockId,
        /// Completion time of the I/O that filled it.
        since: SimTime,
        /// Last time any processor read it (equals `since` until first use).
        last_use: SimTime,
        /// Whether any processor has read it yet. A prefetched-but-unused
        /// buffer counts against the global prefetch cap and is not
        /// evictable.
        used: bool,
        /// Whether a prefetch (rather than a demand fetch) filled it.
        prefetched: bool,
    },
}

/// One buffer: its home node, partition, and current state.
#[derive(Clone, Copy, Debug)]
pub struct Buffer {
    /// The node whose memory holds this buffer (NUMA placement).
    pub home: ProcId,
    /// Demand (RU set) or prefetch partition.
    pub class: BufferClass,
    /// Current contents.
    pub state: BufState,
    /// Number of processes currently copying out of this buffer. A pinned
    /// buffer is never evicted — data cannot vanish mid-copy.
    pub pins: u16,
}

impl Buffer {
    /// A free buffer homed at `home` in partition `class`.
    pub fn new(home: ProcId, class: BufferClass) -> Self {
        Buffer {
            home,
            class,
            state: BufState::Free,
            pins: 0,
        }
    }

    /// The block this buffer holds or is filling, if any.
    pub fn block(&self) -> Option<BlockId> {
        match self.state {
            BufState::Free => None,
            BufState::Pending { block, .. } | BufState::Ready { block, .. } => Some(block),
        }
    }

    /// True if the buffer holds a prefetched block no one has read yet, or
    /// is filling on behalf of a prefetch. Such buffers count against the
    /// global prefetched-but-unused cap.
    pub fn is_unused_prefetch(&self) -> bool {
        match self.state {
            BufState::Pending { kind, .. } => kind == FetchKind::Prefetch,
            BufState::Ready {
                used, prefetched, ..
            } => prefetched && !used,
            BufState::Free => false,
        }
    }

    /// True if the replacement policy may reclaim this buffer: free, or
    /// ready, unpinned, and already used at least once. Pending buffers,
    /// pinned buffers, and prefetched-but-unused buffers are never evicted.
    pub fn is_evictable(&self) -> bool {
        match self.state {
            BufState::Free => true,
            BufState::Pending { .. } => false,
            BufState::Ready {
                used, prefetched, ..
            } => self.pins == 0 && (used || !prefetched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn free_buffer_shape() {
        let b = Buffer::new(ProcId(3), BufferClass::Demand);
        assert_eq!(b.block(), None);
        assert!(b.is_evictable());
        assert!(!b.is_unused_prefetch());
    }

    #[test]
    fn pending_prefetch_counts_against_cap() {
        let mut b = Buffer::new(ProcId(0), BufferClass::Prefetch);
        b.state = BufState::Pending {
            block: BlockId(9),
            ready_at: t(100),
            kind: FetchKind::Prefetch,
        };
        assert!(b.is_unused_prefetch());
        assert!(!b.is_evictable());
        assert_eq!(b.block(), Some(BlockId(9)));
    }

    #[test]
    fn pending_demand_not_counted() {
        let mut b = Buffer::new(ProcId(0), BufferClass::Demand);
        b.state = BufState::Pending {
            block: BlockId(1),
            ready_at: t(1),
            kind: FetchKind::Demand,
        };
        assert!(!b.is_unused_prefetch());
        assert!(!b.is_evictable());
    }

    #[test]
    fn ready_prefetched_unused_protected() {
        let mut b = Buffer::new(ProcId(0), BufferClass::Prefetch);
        b.state = BufState::Ready {
            block: BlockId(2),
            since: t(5),
            last_use: t(5),
            used: false,
            prefetched: true,
        };
        assert!(b.is_unused_prefetch());
        assert!(!b.is_evictable());
    }

    #[test]
    fn pinned_buffer_is_protected() {
        let mut b = Buffer::new(ProcId(0), BufferClass::Demand);
        b.state = BufState::Ready {
            block: BlockId(2),
            since: t(5),
            last_use: t(9),
            used: true,
            prefetched: false,
        };
        b.pins = 1;
        assert!(!b.is_evictable());
        b.pins = 0;
        assert!(b.is_evictable());
    }

    #[test]
    fn ready_used_is_evictable() {
        let mut b = Buffer::new(ProcId(0), BufferClass::Prefetch);
        b.state = BufState::Ready {
            block: BlockId(2),
            since: t(5),
            last_use: t(9),
            used: true,
            prefetched: true,
        };
        assert!(!b.is_unused_prefetch());
        assert!(b.is_evictable());
    }

    #[test]
    fn ready_demand_fetched_is_evictable_even_unused() {
        // A demand-fetched block always has a waiting reader, but even
        // before the read lands, demand contents never count against the
        // prefetch cap and stay evictable.
        let mut b = Buffer::new(ProcId(0), BufferClass::Demand);
        b.state = BufState::Ready {
            block: BlockId(4),
            since: t(5),
            last_use: t(5),
            used: false,
            prefetched: false,
        };
        assert!(!b.is_unused_prefetch());
        assert!(b.is_evictable());
    }
}
