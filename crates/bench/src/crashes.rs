//! The `rapid-transit crashes` harness: node-crash fault scenarios run
//! base-vs-prefetch over every paper pattern, emitted as
//! `BENCH_crash.json`.
//!
//! Each of the six access patterns is run under three crash modes —
//! an early permanent crash, a mid-run crash that rejoins, and a
//! cascading three-node loss — and each scenario runs twice (without
//! and with prefetching). Two things are checked per half:
//!
//! 1. **Recovery accounting**: the report records both halves with the
//!    crash counters (injections, rejoins, lost reads, reclaimed locks
//!    / pins / waiter slots, orphaned I/Os, failover prefetches), so a
//!    regression in the reclamation path shows up as a counter shift
//!    between builds.
//! 2. **Structural soundness**: every half is re-run under
//!    [`rt_sim::run_observed`] with [`rt_core::World::check_soak_invariants`]
//!    evaluated after **every** event plus a livelock watchdog, and
//!    [`rt_core::World::check_terminal_invariants`] at drain time. The
//!    validator requires every scenario to terminate with all surviving
//!    reads complete (`completed + lost == expected`) and zero leaked
//!    pins, lock leases, or waiter entries.
//!
//! Everything is deterministic; a given build either always passes or
//! always fails. The `--smoke` variant shrinks the machine for CI.

use rt_core::experiment::run_pair;
use rt_core::faults::{parse_all_fault_specs, FaultSpecError};
use rt_core::{ExperimentConfig, PrefetchConfig, RunMetrics, RunPair, World};
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rt_sim::{run_observed, ObservedEnd, Scheduler};

use crate::json::{num_obj, sweep_report, Check, Json};
use crate::FlightDump;

/// Report format version.
pub const SCHEMA: u64 = 1;

/// Per-run event backstop for the verification pass; a quick-machine
/// run takes a few thousand events, so hitting this means divergence.
const RUN_EVENT_BUDGET: u64 = 50_000_000;

/// Watchdog window: this many events without a completed read (or a
/// crash/rejoin transition) means livelock.
const STALL_WINDOW: u64 = 400_000;

/// The paper's six access patterns with their report abbreviations.
pub const PATTERNS: [(&str, AccessPattern); 6] = [
    ("lfp", AccessPattern::LocalFixedPortions),
    ("lrp", AccessPattern::LocalRandomPortions),
    ("lw", AccessPattern::LocalWholeFile),
    ("gfp", AccessPattern::GlobalFixedPortions),
    ("grp", AccessPattern::GlobalRandomPortions),
    ("gw", AccessPattern::GlobalWholeFile),
];

/// The three crash modes swept per pattern, as crash-spec strings
/// (exactly what `--faults` accepts, so the sweep exercises the
/// parser too).
fn modes(quick: bool) -> [(&'static str, String); 3] {
    if quick {
        [
            ("early", "crash:1@40ms".into()),
            ("rejoin", "crash:1@60ms:rejoin@300ms".into()),
            ("cascade", "crash:1@50ms,crash:2@100ms,crash:3@150ms".into()),
        ]
    } else {
        [
            ("early", "crash:3@500ms".into()),
            ("rejoin", "crash:3@1s:rejoin@3s".into()),
            ("cascade", "crash:3@500ms,crash:7@1s,crash:11@1500ms".into()),
        ]
    }
}

/// One named crash scenario.
pub struct CrashScenario {
    /// Stable scenario name (report key), `<pattern>-<mode>`.
    pub name: String,
    /// The full experiment configuration, crash plan included.
    pub cfg: ExperimentConfig,
}

/// The fixed scenario grid: six patterns x three crash modes. `quick`
/// shrinks the machine (4 nodes, 200 blocks) and the crash windows for
/// smoke tests. A malformed spec is reported as a typed
/// [`FaultSpecError`] rather than a panic, so the CLI can surface it
/// through its exit code.
pub fn scenarios(quick: bool) -> Result<Vec<CrashScenario>, FaultSpecError> {
    let mut out = Vec::with_capacity(PATTERNS.len() * 3);
    for (pat_name, pattern) in PATTERNS {
        for (mode_name, spec) in modes(quick) {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if quick {
                cfg.procs = 4;
                cfg.disks = 4;
                cfg.workload = WorkloadParams {
                    procs: 4,
                    file_blocks: 200,
                    total_reads: 200,
                    ..WorkloadParams::paper()
                };
            }
            let (plan, crashes) = parse_all_fault_specs(&spec)?;
            debug_assert!(
                plan.entries().is_empty(),
                "crash modes carry no device faults"
            );
            for c in crashes.entries() {
                cfg.faults.crashes.push(*c);
            }
            out.push(CrashScenario {
                name: format!("{pat_name}-{mode_name}"),
                cfg,
            });
        }
    }
    Ok(out)
}

/// Outcome of verifying one scenario half.
#[derive(Clone, Debug)]
pub struct CrashVerdict {
    /// Reads the survivors (and any rejoiner) completed.
    pub completed: u64,
    /// Unread tail of permanently dead nodes' reference strings.
    pub abandoned: u64,
    /// Reads the workload would have performed crash-free.
    pub expected: u64,
    /// First invariant violation, if any (`None` means clean).
    pub violation: Option<String>,
    /// Flight-recorder dump of the violating run (`None` when clean).
    pub flight: Option<FlightDump>,
}

/// Re-run one half of a scenario with per-event invariants, a livelock
/// watchdog, and the terminal leak checks. `run_pair` measures; this
/// pass proves the run was structurally sound while doing so.
pub fn verify_half(cfg: &ExperimentConfig) -> CrashVerdict {
    let expected = rt_core::world::generate_workload(cfg).total_reads() as u64;
    let mut world = World::new(cfg.clone());
    world.enable_obs(rt_core::ObsConfig::flight_recorder());
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    // Watchdog state: a crash teardown or rejoin counts as progress —
    // a cascade can legitimately go a while without completing a read.
    let mut last_progress_mark = 0u64;
    let mut last_progress_event = 0u64;
    let end = run_observed(&mut world, &mut sched, RUN_EVENT_BUDGET, |w, events| {
        w.check_soak_invariants()?;
        let c = w.crash_metrics();
        let mark = w.reads_done() + c.crashes + c.rejoins;
        if mark > last_progress_mark {
            last_progress_mark = mark;
            last_progress_event = events;
        } else if events - last_progress_event > STALL_WINDOW {
            return Err(format!(
                "livelock: {} events since the last completed read",
                events - last_progress_event
            ));
        }
        Ok(())
    });
    let mut verdict = CrashVerdict {
        completed: world.reads_done(),
        abandoned: world.abandoned_reads(),
        expected,
        violation: None,
        flight: None,
    };
    match end {
        ObservedEnd::Finished(run) => {
            if run.budget_exhausted {
                verdict.violation =
                    Some(format!("run exceeded the {RUN_EVENT_BUDGET}-event budget"));
            } else if !world.complete() {
                verdict.violation = Some("run drained without terminating".into());
            } else if let Err(e) = world.check_terminal_invariants(sched.now()) {
                verdict.violation = Some(e);
            } else {
                let done = world.reads_done();
                let lost = world.crash_metrics().lost_reads;
                let abandoned = world.abandoned_reads();
                if done + lost + abandoned != expected {
                    verdict.violation = Some(format!(
                        "read accounting: {done} completed + {lost} lost + \
                         {abandoned} abandoned != {expected} expected"
                    ));
                }
            }
        }
        ObservedEnd::Violation {
            message,
            at,
            events,
        } => {
            verdict.violation = Some(format!("{message} (at {at:?}, event {events})"));
        }
    }
    if verdict.violation.is_some() {
        verdict.flight = FlightDump::take(&mut world);
    }
    verdict
}

/// One scenario's full result: the measured pair plus both verdicts.
pub struct CrashResult {
    /// Scenario name (report key).
    pub name: String,
    /// Measured base/prefetch halves.
    pub pair: RunPair,
    /// Verification verdict for the no-prefetch half.
    pub base_verdict: CrashVerdict,
    /// Verification verdict for the prefetching half.
    pub prefetch_verdict: CrashVerdict,
}

impl CrashResult {
    /// First violation across both halves, if any.
    pub fn violation(&self) -> Option<(&'static str, &str)> {
        if let Some(v) = &self.base_verdict.violation {
            return Some(("base", v));
        }
        if let Some(v) = &self.prefetch_verdict.violation {
            return Some(("prefetch", v));
        }
        None
    }

    /// Flight dump of the first violating half, if any.
    pub fn flight(&self) -> Option<&FlightDump> {
        if self.base_verdict.violation.is_some() {
            return self.base_verdict.flight.as_ref();
        }
        self.prefetch_verdict.flight.as_ref()
    }
}

/// Run every scenario base-vs-prefetch and verify both halves.
pub fn run_sweep(quick: bool) -> Result<Vec<CrashResult>, FaultSpecError> {
    Ok(scenarios(quick)?
        .into_iter()
        .map(|s| {
            let pair = run_pair(&s.cfg);
            let mut base_cfg = s.cfg.clone();
            base_cfg.prefetch = PrefetchConfig::disabled();
            let mut pf_cfg = s.cfg.clone();
            if !pf_cfg.prefetch.enabled {
                pf_cfg.prefetch = PrefetchConfig::paper();
            }
            CrashResult {
                name: s.name,
                pair,
                base_verdict: verify_half(&base_cfg),
                prefetch_verdict: verify_half(&pf_cfg),
            }
        })
        .collect())
}

fn run_json(m: &RunMetrics, v: &CrashVerdict) -> Json {
    let c = &m.crash;
    num_obj(&[
        ("total_ms", m.total_time.as_millis_f64()),
        ("read_ms", m.mean_read_ms()),
        ("hit_ratio", m.hit_ratio),
        ("crashes", c.crashes as f64),
        ("rejoins", c.rejoins as f64),
        ("lost_reads", c.lost_reads as f64),
        ("reclaimed_locks", c.reclaimed_locks as f64),
        ("reclaimed_pins", c.reclaimed_pins as f64),
        ("reclaimed_waiters", c.reclaimed_waiters as f64),
        ("orphaned_ios", c.orphaned_ios as f64),
        (
            "redistributed_prefetches",
            c.redistributed_prefetches as f64,
        ),
        ("completed_reads", v.completed as f64),
        ("abandoned_reads", v.abandoned as f64),
        ("expected_reads", v.expected as f64),
        ("violations", u64::from(v.violation.is_some()) as f64),
    ])
}

/// Build the report document from a sweep's results. The report is
/// regenerated wholesale on each run (scenarios are deterministic, so
/// entries only change when the code does).
pub fn report(results: &[CrashResult], quick: bool) -> Json {
    sweep_report(
        SCHEMA,
        quick,
        results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("base".into(), run_json(&r.pair.base, &r.base_verdict)),
                    (
                        "prefetch".into(),
                        run_json(&r.pair.prefetch, &r.prefetch_verdict),
                    ),
                ])
            })
            .collect(),
    )
}

/// Fields every per-run object in the report must carry.
const RUN_FIELDS: [&str; 15] = [
    "total_ms",
    "read_ms",
    "hit_ratio",
    "crashes",
    "rejoins",
    "lost_reads",
    "reclaimed_locks",
    "reclaimed_pins",
    "reclaimed_waiters",
    "orphaned_ios",
    "redistributed_prefetches",
    "completed_reads",
    "abandoned_reads",
    "expected_reads",
    "violations",
];

/// Check that `doc` is a structurally valid crashes report: correct
/// schema, the full pattern x mode grid present, every run object
/// carrying all counters, zero verification violations, every crash
/// injected, and the surviving reads accounted for
/// (`completed + lost == expected`). Every failure is reported,
/// newline-joined, not just the first.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    let scenarios = c.array(doc, "scenarios");
    let mut seen: Vec<String> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let Some(name) = c.string(s, "name", &format!("scenario {i}")) else {
            continue;
        };
        seen.push(name.to_string());
        let expect_crashes = if name.ends_with("-cascade") { 3.0 } else { 1.0 };
        let expect_rejoins = if name.ends_with("-rejoin") { 1.0 } else { 0.0 };
        for half in ["base", "prefetch"] {
            let Some(run) = s.get(half) else {
                c.fail(format!("scenario {name}: missing {half} run"));
                continue;
            };
            let ctx = format!("scenario {name}/{half}");
            c.nums(run, &RUN_FIELDS, &ctx);
            let num = |field: &str| run.get(field).and_then(Json::as_f64);
            if c.num(run, "violations", &ctx).is_some_and(|v| v != 0.0) {
                c.fail(format!("{ctx}: verification reported violations"));
            }
            // A crash scenario must actually crash: rejoin scenarios
            // may see fewer if the node finished first, but the smoke
            // and full windows are chosen so it never does.
            if num("crashes").is_some_and(|v| v != expect_crashes) {
                c.fail(format!(
                    "{ctx}: expected {expect_crashes} crash(es), report says {:?}",
                    num("crashes")
                ));
            }
            if num("rejoins").is_some_and(|v| v != expect_rejoins) {
                c.fail(format!(
                    "{ctx}: expected {expect_rejoins} rejoin(s), report says {:?}",
                    num("rejoins")
                ));
            }
            if let (Some(completed), Some(lost), Some(abandoned), Some(expected)) = (
                num("completed_reads"),
                num("lost_reads"),
                num("abandoned_reads"),
                num("expected_reads"),
            ) {
                if completed + lost + abandoned != expected {
                    c.fail(format!(
                        "{ctx}: {completed} completed + {lost} lost + {abandoned} \
                         abandoned != {expected} expected"
                    ));
                }
                if expected <= 0.0 {
                    c.fail(format!("{ctx}: empty workload"));
                }
            }
        }
    }
    for (pat, _) in PATTERNS {
        for mode in ["early", "rejoin", "cascade"] {
            let want = format!("{pat}-{mode}");
            if !seen.contains(&want) {
                c.fail(format!("missing scenario {want}"));
            }
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_set_shape() {
        for quick in [false, true] {
            let set = scenarios(quick).unwrap();
            assert_eq!(set.len(), 18, "6 patterns x 3 modes");
            for s in &set {
                s.cfg.validate().unwrap();
                assert!(!s.cfg.faults.crashes.is_empty());
                assert!(s.cfg.faults.plan.entries().is_empty());
            }
            let cascade = set.iter().find(|s| s.name == "gw-cascade").unwrap();
            assert_eq!(cascade.cfg.faults.crashes.entries().len(), 3);
            let rejoin = set.iter().find(|s| s.name == "lfp-rejoin").unwrap();
            assert!(rejoin.cfg.faults.crashes.entries()[0].rejoin.is_some());
        }
    }

    #[test]
    fn verify_half_passes_on_a_clean_crash_run() {
        let cfg = &scenarios(true).unwrap()[0].cfg;
        let v = verify_half(cfg);
        assert!(v.violation.is_none(), "{:?}", v.violation);
        assert!(v.completed > 0);
        assert!(v.completed < v.expected, "a crash-early run loses reads");
    }

    #[test]
    fn smoke_sweep_produces_valid_report() {
        let results = run_sweep(true).unwrap();
        let doc = report(&results, true);
        validate_report(&doc).unwrap();
        // Reparse what we would write to disk.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&parsed).unwrap();
        for r in &results {
            assert!(r.violation().is_none(), "{}: {:?}", r.name, r.violation());
        }
        // The scenarios actually exercise the recovery machinery: at
        // least one victim somewhere held something reclaimable, and a
        // rejoin run rejoined.
        let reclaimed: u64 = results
            .iter()
            .flat_map(|r| [&r.pair.base.crash, &r.pair.prefetch.crash])
            .map(|c| c.reclaimed_locks + c.reclaimed_pins + c.reclaimed_waiters + c.orphaned_ios)
            .sum();
        assert!(reclaimed > 0, "no scenario reclaimed anything");
        let rejoined = results
            .iter()
            .filter(|r| r.name.ends_with("-rejoin"))
            .all(|r| r.pair.base.crash.rejoins == 1 && r.pair.prefetch.crash.rejoins == 1);
        assert!(rejoined, "a rejoin scenario never rejoined");
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
        let doc = Json::parse(r#"{"schema":1,"smoke":true,"scenarios":[]}"#).unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("missing scenario"), "{msg}");
        // A half that reports a violation must fail validation.
        let doc = Json::parse(
            r#"{"schema":1,"smoke":true,"scenarios":[{"name":"gw-early",
                "base":{"total_ms":1,"read_ms":1,"hit_ratio":0,"crashes":1,"rejoins":0,
                  "lost_reads":1,"reclaimed_locks":0,"reclaimed_pins":0,"reclaimed_waiters":0,
                  "orphaned_ios":0,"redistributed_prefetches":0,"completed_reads":199,
                  "abandoned_reads":0,"expected_reads":200,"violations":1},
                "prefetch":{"total_ms":1,"read_ms":1,"hit_ratio":0,"crashes":1,"rejoins":0,
                  "lost_reads":1,"reclaimed_locks":0,"reclaimed_pins":0,"reclaimed_waiters":0,
                  "orphaned_ios":0,"redistributed_prefetches":0,"completed_reads":199,
                  "abandoned_reads":0,"expected_reads":200,"violations":0}}]}"#,
        )
        .unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("violations"), "{msg}");
        // Broken read accounting must fail validation.
        let doc = Json::parse(
            r#"{"schema":1,"smoke":true,"scenarios":[{"name":"gw-early",
                "base":{"total_ms":1,"read_ms":1,"hit_ratio":0,"crashes":1,"rejoins":0,
                  "lost_reads":1,"reclaimed_locks":0,"reclaimed_pins":0,"reclaimed_waiters":0,
                  "orphaned_ios":0,"redistributed_prefetches":0,"completed_reads":150,
                  "abandoned_reads":0,"expected_reads":200,"violations":0},
                "prefetch":{"total_ms":1,"read_ms":1,"hit_ratio":0,"crashes":1,"rejoins":0,
                  "lost_reads":1,"reclaimed_locks":0,"reclaimed_pins":0,"reclaimed_waiters":0,
                  "orphaned_ios":0,"redistributed_prefetches":0,"completed_reads":199,
                  "abandoned_reads":0,"expected_reads":200,"violations":0}}]}"#,
        )
        .unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("lost"), "{msg}");
    }
}
