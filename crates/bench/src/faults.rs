//! The `rapid-transit faults` harness: a fixed set of fault-injection
//! scenarios run base-vs-prefetch, emitted as `BENCH_faults.json`.
//!
//! Each scenario injects one failure mode into the paper's `lfp`
//! configuration — a straggling device, a flaky device, a repairing
//! outage, and a permanent outage absorbed by a replica — plus the
//! fault-free control. The report records both halves of each pair along
//! with the fault-path counters, so a regression in retry/degradation
//! behaviour shows up as a counter or completion-time shift between
//! builds. The `--smoke` variant shrinks the machine for CI.

use rt_core::experiment::run_pair;
use rt_core::faults::{parse_fault_specs, FaultSpecError};
use rt_core::{ExperimentConfig, RunMetrics, RunPair};
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rt_sim::SimDuration;

use crate::json::{num_obj, sweep_report, Check, Json};

/// Report format version.
pub const SCHEMA: u64 = 1;

/// One named fault scenario over the base `lfp` configuration.
pub struct FaultScenario {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// The full experiment configuration, faults included.
    pub cfg: ExperimentConfig,
}

/// The fixed scenario set. `quick` shrinks the machine (4 nodes, 200
/// blocks) and the fault windows for smoke tests. A malformed spec is
/// reported as a typed [`FaultSpecError`] rather than a panic, so the
/// CLI can surface it through its exit code.
pub fn scenarios(quick: bool) -> Result<Vec<FaultScenario>, FaultSpecError> {
    let base =
        |specs: &str, replicas: u16, timeout_ms: u64| -> Result<ExperimentConfig, FaultSpecError> {
            let mut cfg = ExperimentConfig::paper_default(
                AccessPattern::LocalFixedPortions,
                SyncStyle::BlocksPerProc(10),
            );
            if quick {
                cfg.procs = 4;
                cfg.disks = 4;
                cfg.workload = WorkloadParams {
                    procs: 4,
                    file_blocks: 200,
                    total_reads: 200,
                    ..WorkloadParams::paper()
                };
            }
            cfg.faults.plan = parse_fault_specs(specs)?;
            cfg.faults.replicas = replicas;
            if timeout_ms > 0 {
                cfg.faults.retry.timeout = Some(SimDuration::from_millis(timeout_ms));
            }
            Ok(cfg)
        };
    // Disk indices and windows scale with the machine: the smoke machine
    // has 4 disks and finishes in roughly a second of simulated time.
    Ok(if quick {
        vec![
            FaultScenario {
                name: "none",
                cfg: base("", 0, 0)?,
            },
            FaultScenario {
                name: "straggler-x4",
                cfg: base("straggler:2:x4", 0, 0)?,
            },
            FaultScenario {
                name: "flaky-p30",
                cfg: base("flaky:1:p0.3", 0, 0)?,
            },
            FaultScenario {
                name: "outage-repair",
                cfg: base("fail:3@100ms-400ms", 0, 0)?,
            },
            FaultScenario {
                name: "outage-replica",
                cfg: base("fail:3@100ms", 1, 500)?,
            },
            FaultScenario {
                name: "straggler-timeout",
                cfg: base("straggler:2:x25", 1, 500)?,
            },
        ]
    } else {
        vec![
            FaultScenario {
                name: "none",
                cfg: base("", 0, 0)?,
            },
            FaultScenario {
                name: "straggler-x4",
                cfg: base("straggler:7:x4", 0, 0)?,
            },
            FaultScenario {
                name: "flaky-p30",
                cfg: base("flaky:3:p0.3", 0, 0)?,
            },
            FaultScenario {
                name: "outage-repair",
                cfg: base("fail:5@1s-4s", 0, 0)?,
            },
            FaultScenario {
                name: "outage-replica",
                cfg: base("fail:5@1s", 1, 500)?,
            },
            FaultScenario {
                name: "straggler-timeout",
                cfg: base("straggler:7:x25", 1, 500)?,
            },
        ]
    })
}

/// Run every scenario base-vs-prefetch.
pub fn run_sweep(quick: bool) -> Result<Vec<(&'static str, RunPair)>, FaultSpecError> {
    Ok(scenarios(quick)?
        .into_iter()
        .map(|s| (s.name, run_pair(&s.cfg)))
        .collect())
}

fn run_json(m: &RunMetrics) -> Json {
    let f = &m.faults;
    num_obj(&[
        ("total_ms", m.total_time.as_millis_f64()),
        ("read_ms", m.mean_read_ms()),
        ("hit_ratio", m.hit_ratio),
        ("io_errors", f.io_errors as f64),
        ("retries", f.retries as f64),
        ("retries_exhausted", f.retries_exhausted as f64),
        ("timeouts", f.timeouts as f64),
        ("redirects", f.redirects as f64),
        ("aborted_prefetches", f.aborted_prefetches as f64),
        ("degraded_skips", f.degraded_skips as f64),
        ("degraded_intervals", f.degraded_intervals as f64),
        ("degraded_time_ms", f.degraded_time.as_millis_f64()),
    ])
}

/// Build the report document from a sweep's results. The report is
/// regenerated wholesale on each run (scenarios are deterministic, so
/// entries only change when the code does).
pub fn report(results: &[(&'static str, RunPair)], quick: bool) -> Json {
    sweep_report(
        SCHEMA,
        quick,
        results
            .iter()
            .map(|(name, pair)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str((*name).to_string())),
                    ("base".into(), run_json(&pair.base)),
                    ("prefetch".into(), run_json(&pair.prefetch)),
                ])
            })
            .collect(),
    )
}

/// Fields every per-run object in the report must carry.
const RUN_FIELDS: [&str; 12] = [
    "total_ms",
    "read_ms",
    "hit_ratio",
    "io_errors",
    "retries",
    "retries_exhausted",
    "timeouts",
    "redirects",
    "aborted_prefetches",
    "degraded_skips",
    "degraded_intervals",
    "degraded_time_ms",
];

/// Check that `doc` is a structurally valid faults report: correct
/// schema, a non-empty scenario array including the fault-free control,
/// and every run object carrying all counters. Every failure is
/// reported, newline-joined, not just the first.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    let scenarios = c.array(doc, "scenarios");
    let mut saw_control = scenarios.is_empty();
    for (i, s) in scenarios.iter().enumerate() {
        let Some(name) = c.string(s, "name", &format!("scenario {i}")) else {
            continue;
        };
        saw_control |= name == "none";
        for half in ["base", "prefetch"] {
            let Some(run) = s.get(half) else {
                c.fail(format!("scenario {name}: missing {half} run"));
                continue;
            };
            c.nums(run, &RUN_FIELDS, &format!("scenario {name}/{half}"));
            if name == "none" {
                let errs = run.get("io_errors").and_then(Json::as_f64).unwrap_or(0.0);
                if errs != 0.0 {
                    c.fail(format!(
                        "control scenario reports {errs} io_errors in its {half} run"
                    ));
                }
            }
        }
    }
    if !saw_control {
        c.fail("missing the fault-free control scenario `none`");
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_set_shape() {
        for quick in [false, true] {
            let set = scenarios(quick).unwrap();
            assert_eq!(set.len(), 6);
            assert_eq!(set[0].name, "none");
            assert!(!set[0].cfg.faults.is_active());
            for s in &set {
                s.cfg.validate().unwrap();
            }
        }
    }

    #[test]
    fn smoke_sweep_produces_valid_report() {
        let results = run_sweep(true).unwrap();
        let doc = report(&results, true);
        validate_report(&doc).unwrap();
        // Reparse what we would write to disk.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&parsed).unwrap();
        // Injected scenarios actually exercised the fault path.
        let straggler = &results[1];
        assert!(
            straggler.1.prefetch.faults.degraded_intervals > 0
                || straggler.1.prefetch.faults.degraded_skips > 0,
            "straggler scenario never degraded the device"
        );
        let flaky = &results[2];
        assert!(flaky.1.base.faults.io_errors > 0);
        assert!(flaky.1.base.faults.retries > 0);
        // The extreme straggler outlasts the 500 ms timeout, forcing
        // timeout-driven redirects to the replica.
        let timeouty = &results[5];
        assert!(timeouty.1.base.faults.timeouts > 0);
        assert!(timeouty.1.base.faults.redirects > 0);
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
        let doc = Json::parse(r#"{"schema":1,"smoke":true,"scenarios":[]}"#).unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("empty"));
        let doc = Json::parse(r#"{"schema":1,"scenarios":[{"name":"straggler-x4"}]}"#).unwrap();
        assert!(validate_report(&doc).is_err());
    }
}
