//! The `rapid-transit soak` harness: deterministic chaos soak for the
//! overload-robustness layer, emitted as `BENCH_overload.json`.
//!
//! Each scenario drives a small machine into sustained overload — every
//! disk saturated, one hot disk, bursty barrier-released arrivals, or
//! overload combined with fault windows — with bounded device queues and
//! the prefetch admission controller turned on. Two things are measured:
//!
//! 1. **Performance under pressure**: the scenario runs base-vs-prefetch
//!    (both halves with the bounds active), and the report records both
//!    halves plus the overload counters. Admission exists so prefetching
//!    keeps paying off under overload; the validator rejects any report
//!    where the prefetch half is slower than the base half.
//! 2. **Structural soundness**: each scenario is then *soaked* — re-run
//!    under [`rt_sim::run_observed`] across many derived seeds until a
//!    target number of events (one million for the full run) has been
//!    dispatched with [`rt_core::World::check_soak_invariants`] evaluated
//!    after **every** event, plus a progress watchdog that catches
//!    livelock (events flowing, no reads completing).
//!
//! Everything is seeded; a given build either always passes or always
//! fails. The `--smoke` variant shrinks the event target for CI.

use rt_core::experiment::run_pair;
use rt_core::faults::{parse_all_fault_specs, parse_fault_specs, FaultSpecError};
use rt_core::{AdmissionConfig, ExperimentConfig, ObsConfig, RunMetrics, RunPair, World};
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rt_sim::{run_observed, ObservedEnd, Scheduler, SimDuration};

use crate::json::{num_obj, sweep_report, Check, Json};
use crate::FlightDump;

/// Report format version.
pub const SCHEMA: u64 = 1;

/// Events each scenario's soak must dispatch (full run).
pub const SOAK_EVENTS: u64 = 1_000_000;

/// Events per scenario for the CI smoke variant.
pub const SMOKE_EVENTS: u64 = 60_000;

/// Per-run event backstop inside the soak loop; a quick-machine run takes
/// a few thousand events, so hitting this means the run diverged.
const RUN_EVENT_BUDGET: u64 = 20_000_000;

/// Watchdog window: if this many events pass without a single read
/// completing, the run is declared livelocked.
const STALL_WINDOW: u64 = 200_000;

/// One named overload scenario with the backpressure layer enabled.
pub struct SoakScenario {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// The full experiment configuration, bounds and admission included.
    pub cfg: ExperimentConfig,
}

/// The fixed scenario set. All scenarios use a small machine (4 nodes,
/// 200 blocks) so individual runs are cheap and the soak loop can cycle
/// hundreds of seeds; overload comes from the workload shape, not scale.
/// A malformed spec is reported as a typed [`FaultSpecError`] rather
/// than a panic, so the CLI can surface it through its exit code.
pub fn scenarios() -> Result<Vec<SoakScenario>, FaultSpecError> {
    let small = |pattern, sync, compute_us: u64| {
        let mut cfg = ExperimentConfig::paper_default(pattern, sync);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.compute_mean = SimDuration::from_micros(compute_us);
        cfg.prefetch = rt_core::PrefetchConfig::paper();
        cfg.queue_depth = Some(2);
        cfg.admission = AdmissionConfig::on(4);
        cfg
    };
    // io-burst: every node issues back-to-back reads; all four disks run
    // saturated for the whole run.
    let io_burst = small(AccessPattern::GlobalWholeFile, SyncStyle::None, 500);
    // hot-disk: twice as many nodes as devices and barrier-released
    // bursts, so both depth-2 queues fill and demand reads park — the
    // worst case for shedding. The barrier gaps leave slack prefetching
    // can exploit; steady single-device saturation would leave nothing
    // to overlap.
    let mut hot_disk = small(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksTotal(40),
        4_000,
    );
    hot_disk.disks = 2;
    // burst-barrier: a total-blocks barrier releases all four nodes at
    // once, so arrivals come in synchronized bursts.
    let burst_barrier = small(
        AccessPattern::GlobalFixedPortions,
        SyncStyle::BlocksTotal(40),
        1_000,
    );
    // straggler-storm: overload plus fault windows — one device slowed
    // 8x mid-run and another flaky — exercising shed/park/throttle and
    // the retry path together.
    let mut straggler_storm = small(
        AccessPattern::LocalFixedPortions,
        SyncStyle::BlocksPerProc(10),
        1_000,
    );
    straggler_storm.faults.plan = parse_fault_specs("straggler:2:x8@50ms-400ms,flaky:1:p0.2")?;
    // node-churn: overload plus node crashes — one node bounces
    // (crash + rejoin) and another dies for good mid-run, exercising
    // lease/pin/waiter reclamation, barrier shrink, daemon failover,
    // and parked-demand re-charging under the same bounded queues and
    // admission control as every other soak scenario.
    let mut node_churn = small(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(10),
        1_000,
    );
    let (_, churn_crashes) = parse_all_fault_specs("crash:1@40ms:rejoin@160ms,crash:3@90ms")?;
    for c in churn_crashes.entries() {
        node_churn.faults.crashes.push(*c);
    }
    Ok(vec![
        SoakScenario {
            name: "io-burst",
            cfg: io_burst,
        },
        SoakScenario {
            name: "hot-disk",
            cfg: hot_disk,
        },
        SoakScenario {
            name: "burst-barrier",
            cfg: burst_barrier,
        },
        SoakScenario {
            name: "straggler-storm",
            cfg: straggler_storm,
        },
        SoakScenario {
            name: "node-churn",
            cfg: node_churn,
        },
    ])
}

/// Outcome of soaking one scenario.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// Events dispatched across all seeds.
    pub events: u64,
    /// Complete runs executed.
    pub runs: u64,
    /// First invariant violation, if any (`None` means the soak is clean).
    pub violation: Option<String>,
    /// Flight-recorder dump of the violating run (`None` when clean).
    pub flight: Option<FlightDump>,
}

/// Soak one scenario: run it over derived seeds until `target_events`
/// have been dispatched, checking every invariant after every event.
/// Stops at the first violation. Every cycle runs with the flight
/// recorder on (a short event tail plus dense gauges); when a cycle
/// violates an invariant, its recording comes back as
/// [`SoakOutcome::flight`] for a postmortem dump.
pub fn soak_scenario(cfg: &ExperimentConfig, target_events: u64) -> SoakOutcome {
    let mut outcome = SoakOutcome {
        events: 0,
        runs: 0,
        violation: None,
        flight: None,
    };
    while outcome.events < target_events {
        let mut cfg = cfg.clone();
        // Different seed each cycle -> different workload and timing; the
        // derivation is fixed so the whole soak is reproducible.
        cfg.seed = cfg
            .seed
            .wrapping_add(outcome.runs.wrapping_mul(0x9e37_79b9));
        let mut world = World::new(cfg);
        world.enable_obs(ObsConfig::flight_recorder());
        let mut sched = Scheduler::new();
        world.bootstrap(&mut sched);
        // Watchdog state: the soak must keep retiring reads. Events
        // without forward progress beyond STALL_WINDOW mean livelock.
        let mut last_reads = 0u64;
        let mut last_progress_event = 0u64;
        let end = run_observed(&mut world, &mut sched, RUN_EVENT_BUDGET, |w, events| {
            w.check_soak_invariants()?;
            let reads = w.reads_done();
            if reads > last_reads {
                last_reads = reads;
                last_progress_event = events;
            } else if events - last_progress_event > STALL_WINDOW {
                return Err(format!(
                    "livelock: {} events since the last completed read",
                    events - last_progress_event
                ));
            }
            Ok(())
        });
        match end {
            ObservedEnd::Finished(run) => {
                if run.budget_exhausted {
                    outcome.violation =
                        Some(format!("run exceeded the {RUN_EVENT_BUDGET}-event budget"));
                    outcome.flight = FlightDump::take(&mut world);
                    return outcome;
                }
                if !world.complete() {
                    outcome.violation = Some("run drained without finishing".into());
                    outcome.flight = FlightDump::take(&mut world);
                    return outcome;
                }
                outcome.events += run.events;
                outcome.runs += 1;
            }
            ObservedEnd::Violation {
                message,
                at,
                events,
            } => {
                outcome.events += events;
                outcome.violation = Some(format!(
                    "seed cycle {}: {message} (at {:?}, event {events})",
                    outcome.runs, at
                ));
                outcome.flight = FlightDump::take(&mut world);
                return outcome;
            }
        }
    }
    outcome
}

/// Run every scenario: the base/prefetch pair, then the soak.
pub fn run_sweep(smoke: bool) -> Result<Vec<(&'static str, RunPair, SoakOutcome)>, FaultSpecError> {
    let target = if smoke { SMOKE_EVENTS } else { SOAK_EVENTS };
    Ok(scenarios()?
        .into_iter()
        .map(|s| {
            let pair = run_pair(&s.cfg);
            let soak = soak_scenario(&s.cfg, target);
            (s.name, pair, soak)
        })
        .collect())
}

fn run_json(m: &RunMetrics) -> Json {
    let o = &m.overload;
    num_obj(&[
        ("total_ms", m.total_time.as_millis_f64()),
        ("read_ms", m.mean_read_ms()),
        ("hit_ratio", m.hit_ratio),
        ("prefetches_shed", o.prefetches_shed as f64),
        ("prefetches_throttled", o.prefetches_throttled as f64),
        ("demand_parked", o.demand_parked as f64),
        ("demand_behind_prefetch", o.demand_behind_prefetch as f64),
        ("cache_high_water_hits", o.cache_high_water_hits as f64),
        ("max_queue_depth", o.max_queue_depth as f64),
    ])
}

/// Build the report document from a sweep's results.
pub fn report(results: &[(&'static str, RunPair, SoakOutcome)], smoke: bool) -> Json {
    sweep_report(
        SCHEMA,
        smoke,
        results
            .iter()
            .map(|(name, pair, soak)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str((*name).to_string())),
                    ("base".into(), run_json(&pair.base)),
                    ("prefetch".into(), run_json(&pair.prefetch)),
                    (
                        "soak".into(),
                        num_obj(&[
                            ("events", soak.events as f64),
                            ("runs", soak.runs as f64),
                            ("violations", u64::from(soak.violation.is_some()) as f64),
                        ]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Fields every per-run object in the report must carry.
const RUN_FIELDS: [&str; 9] = [
    "total_ms",
    "read_ms",
    "hit_ratio",
    "prefetches_shed",
    "prefetches_throttled",
    "demand_parked",
    "demand_behind_prefetch",
    "cache_high_water_hits",
    "max_queue_depth",
];

/// Check that `doc` is a structurally valid overload report: correct
/// schema, a non-empty scenario array, every run object carrying all
/// counters, zero soak violations with the full event target met (unless
/// smoke), and the prefetch half no slower than the base half — the
/// property the admission controller exists to preserve. Every failure
/// is reported, newline-joined, not just the first.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    for (i, s) in c.array(doc, "scenarios").iter().enumerate() {
        let Some(name) = c.string(s, "name", &format!("scenario {i}")) else {
            continue;
        };
        for half in ["base", "prefetch"] {
            match s.get(half) {
                Some(run) => c.nums(run, &RUN_FIELDS, &format!("scenario {name}/{half}")),
                None => c.fail(format!("scenario {name}: missing {half} run")),
            }
        }
        let total = |half: &str| {
            s.get(half)
                .and_then(|r| r.get("total_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN)
        };
        let (base_ms, pf_ms) = (total("base"), total("prefetch"));
        // NaN (a missing or non-numeric field) must fail too, so compare
        // via matches! rather than `pf <= base`.
        if !matches!(
            pf_ms.partial_cmp(&base_ms),
            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
        ) {
            c.fail(format!(
                "scenario {name}: prefetch half slower than base under overload \
                 ({pf_ms} ms vs {base_ms} ms)"
            ));
        }
        let Some(soak) = s.get("soak") else {
            c.fail(format!("scenario {name}: missing soak"));
            continue;
        };
        if c.num(soak, "violations", &format!("scenario {name}: soak"))
            .is_some_and(|v| v != 0.0)
        {
            c.fail(format!("scenario {name}: soak reported violations"));
        }
        let floor = if smoke { SMOKE_EVENTS } else { SOAK_EVENTS } as f64;
        if let Some(events) = c.num(soak, "events", &format!("scenario {name}: soak")) {
            if events < floor {
                c.fail(format!(
                    "scenario {name}: soak dispatched {events} events, below the {floor} floor"
                ));
            }
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_set_shape() {
        let set = scenarios().unwrap();
        assert_eq!(set.len(), 5);
        for s in &set {
            s.cfg.validate().unwrap();
            assert_eq!(s.cfg.queue_depth, Some(2));
            assert!(s.cfg.admission.enabled);
            assert!(s.cfg.prefetch.enabled);
        }
        assert!(set[3].cfg.faults.is_active(), "storm scenario has faults");
        let churn = &set[4].cfg.faults.crashes;
        assert_eq!(churn.entries().len(), 2, "churn scenario crashes twice");
        assert!(churn.entries()[0].rejoin.is_some());
    }

    #[test]
    fn short_soak_is_clean_and_counts_events() {
        let cfg = &scenarios().unwrap()[0].cfg;
        let out = soak_scenario(cfg, 10_000);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.events >= 10_000);
        assert!(out.runs > 0);
    }

    #[test]
    fn smoke_sweep_produces_valid_report() {
        let results = run_sweep(true).unwrap();
        let doc = report(&results, true);
        validate_report(&doc).unwrap();
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&parsed).unwrap();
        // The scenarios actually drive the overload machinery.
        let hot = results
            .iter()
            .find(|(n, _, _)| *n == "hot-disk")
            .expect("hot-disk scenario present");
        let o = &hot.1.prefetch.overload;
        assert!(
            o.prefetches_shed + o.prefetches_throttled + o.demand_parked > 0,
            "hot-disk scenario never hit backpressure: {o:?}"
        );
        for (name, _, soak) in &results {
            assert!(soak.violation.is_none(), "{name}: {:?}", soak.violation);
        }
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
        let doc = Json::parse(r#"{"schema":1,"smoke":true,"scenarios":[]}"#).unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("empty"));
        // A prefetch half slower than base must be rejected.
        let doc = Json::parse(
            r#"{"schema":1,"smoke":true,"scenarios":[{"name":"x",
                "base":{"total_ms":100,"read_ms":1,"hit_ratio":0,"prefetches_shed":0,
                  "prefetches_throttled":0,"demand_parked":0,"demand_behind_prefetch":0,
                  "cache_high_water_hits":0,"max_queue_depth":0},
                "prefetch":{"total_ms":200,"read_ms":1,"hit_ratio":0,"prefetches_shed":0,
                  "prefetches_throttled":0,"demand_parked":0,"demand_behind_prefetch":0,
                  "cache_high_water_hits":0,"max_queue_depth":0},
                "soak":{"events":60000,"runs":1,"violations":0}}]}"#,
        )
        .unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("slower"));
    }
}
