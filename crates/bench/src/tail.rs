//! The `rapid-transit tail` harness: tail-tolerance scenarios swept over
//! every paper pattern, emitted as `BENCH_tail.json`.
//!
//! Each of the six access patterns runs under three fault modes — a
//! persistent straggler disk, a transient outage window, and a straggler
//! compounded by a node crash/rejoin — and each combination runs under
//! three mitigation policies:
//!
//! * **timeout** — the PR-7 baseline: a demand-read timeout with
//!   redirect, nothing else.
//! * **hedge** — the timeout plus hedged reads: a duplicate fetch to the
//!   next replica once a demand fetch is outstanding past the hedge
//!   delay, first completion wins.
//! * **full** — hedging plus a retry-budget token bucket and per-device
//!   circuit breakers.
//!
//! Three properties are enforced by the report validator:
//!
//! 1. **Exactly-once delivery**: `duplicate_deliveries` is zero in every
//!    run — no waiter is ever woken twice no matter how the duplicate
//!    fetches race (the verification pass also rejects it per event).
//! 2. **Budget discipline**: `budget_spent` never exceeds the bucket's
//!    capacity plus its per-completion refill times the run's disk ops.
//! 3. **Tail improvement**: under the straggler mode, the hedged
//!    policy's p99 read time is no worse than the timeout-only
//!    policy's — the whole point of duplicating slow fetches.
//!
//! Everything is deterministic; a given build either always passes or
//! always fails. The `--smoke` variant shrinks the machine for CI.

use rt_core::experiment::run_experiment;
use rt_core::faults::{parse_all_fault_specs, FaultSpecError};
use rt_core::{ExperimentConfig, RunMetrics};
use rt_patterns::{SyncStyle, WorkloadParams};
use rt_sim::SimDuration;

use crate::crashes::{verify_half, CrashVerdict, PATTERNS};
use crate::json::{num_obj, sweep_report, Check, Json};

/// Report format version.
pub const SCHEMA: u64 = 1;

/// Demand-read timeout shared by every policy (milliseconds).
const TIMEOUT_MS: u64 = 150;

/// Fixed hedge delay for the hedged policies (milliseconds) — under the
/// paper's 30 ms disk, an x8 straggler holds a fetch for 240 ms, so the
/// hedge fires long before the timeout does.
const HEDGE_MS: u64 = 60;

/// Retry-budget token bucket for the `full` policy.
pub const BUDGET_CAPACITY: u32 = 32;
/// Tokens refilled per successful disk completion in the `full` policy.
pub const BUDGET_REFILL: f64 = 0.25;

/// The three fault modes swept per pattern.
pub const FAULT_MODES: [&str; 3] = ["straggler", "outage", "straggler-crash"];

/// The three mitigation policies swept per pattern x fault mode.
pub const POLICIES: [&str; 3] = ["timeout", "hedge", "full"];

/// Fault-spec string for a mode (exactly what `--faults` accepts, so
/// the sweep exercises the parser too). `quick` shrinks the windows to
/// the smoke machine's timescale.
fn fault_spec(mode: &str, quick: bool) -> &'static str {
    match (mode, quick) {
        ("straggler", _) => "straggler:0:x8",
        ("outage", false) => "fail:0@500ms-2500ms",
        ("outage", true) => "fail:0@40ms-400ms",
        ("straggler-crash", false) => "straggler:0:x8,crash:3@1s:rejoin@3s",
        ("straggler-crash", true) => "straggler:0:x8,crash:1@60ms:rejoin@300ms",
        _ => unreachable!("unknown fault mode {mode}"),
    }
}

/// Apply one mitigation policy's knobs. Every policy keeps the same
/// timeout and replica count so the only axis that moves is the
/// tail-tolerance machinery itself.
fn apply_policy(cfg: &mut ExperimentConfig, policy: &str) {
    cfg.faults.replicas = 1;
    cfg.faults.retry.timeout = Some(SimDuration::from_millis(TIMEOUT_MS));
    match policy {
        "timeout" => {}
        "hedge" => {
            cfg.faults.hedge.delay = Some(SimDuration::from_millis(HEDGE_MS));
        }
        "full" => {
            cfg.faults.hedge.delay = Some(SimDuration::from_millis(HEDGE_MS));
            cfg.faults.budget.capacity = Some(BUDGET_CAPACITY);
            cfg.faults.budget.refill = BUDGET_REFILL;
            cfg.faults.breaker.enabled = true;
            // Two consecutive errors trip the breaker (EWMA 0.3 then
            // 0.51): the device-health quarantine steers demand away so
            // fast that an outage only yields a couple of errors before
            // traffic is gone, and the breaker must still latch open.
            cfg.faults.breaker.error_threshold = 0.5;
        }
        other => unreachable!("unknown policy {other}"),
    }
}

/// One named tail scenario.
pub struct TailScenario {
    /// Stable scenario name (report key), `<pattern>-<mode>-<policy>`.
    pub name: String,
    /// The full experiment configuration, faults and policy included.
    pub cfg: ExperimentConfig,
}

/// The fixed scenario grid: six patterns x three fault modes x three
/// policies. `quick` shrinks the machine (4 nodes, 200 blocks) and the
/// fault windows for smoke tests.
pub fn scenarios(quick: bool) -> Result<Vec<TailScenario>, FaultSpecError> {
    let mut out = Vec::with_capacity(PATTERNS.len() * FAULT_MODES.len() * POLICIES.len());
    for (pat_name, pattern) in PATTERNS {
        for mode in FAULT_MODES {
            for policy in POLICIES {
                let mut cfg =
                    ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
                if quick {
                    cfg.procs = 4;
                    cfg.disks = 4;
                    cfg.workload = WorkloadParams {
                        procs: 4,
                        file_blocks: 200,
                        total_reads: 200,
                        ..WorkloadParams::paper()
                    };
                }
                let (plan, crashes) = parse_all_fault_specs(fault_spec(mode, quick))?;
                cfg.faults.plan = plan;
                for c in crashes.entries() {
                    cfg.faults.crashes.push(*c);
                }
                apply_policy(&mut cfg, policy);
                out.push(TailScenario {
                    name: format!("{pat_name}-{mode}-{policy}"),
                    cfg,
                });
            }
        }
    }
    Ok(out)
}

/// One scenario's full result: the measured run plus its verification
/// verdict (per-event soak invariants — which reject any duplicate
/// delivery the moment it happens — a livelock watchdog, and terminal
/// leak checks, reusing the crash sweep's verifier).
pub struct TailResult {
    /// Scenario name (report key).
    pub name: String,
    /// The measured run.
    pub metrics: RunMetrics,
    /// Verification verdict.
    pub verdict: CrashVerdict,
}

/// Run every scenario and verify it.
pub fn run_sweep(quick: bool) -> Result<Vec<TailResult>, FaultSpecError> {
    Ok(scenarios(quick)?
        .into_iter()
        .map(|s| TailResult {
            metrics: run_experiment(&s.cfg),
            verdict: verify_half(&s.cfg),
            name: s.name,
        })
        .collect())
}

fn run_json(m: &RunMetrics, v: &CrashVerdict) -> Json {
    let t = &m.tail;
    num_obj(&[
        ("total_ms", m.total_time.as_millis_f64()),
        ("read_ms", m.mean_read_ms()),
        ("read_p99_ms", m.read_quantile_ms(0.99)),
        ("hedged_p99_ms", m.hedged_read_quantile_ms(0.99)),
        ("timeouts", m.faults.timeouts as f64),
        ("retries", m.faults.retries as f64),
        ("disk_ops", m.disk_ops as f64),
        ("hedges_launched", t.hedges_launched as f64),
        ("hedge_wins", t.hedge_wins as f64),
        ("hedge_wasted", t.hedge_wasted as f64),
        ("hedge_cancels", t.hedge_cancels as f64),
        ("retries_denied", t.retries_denied as f64),
        ("budget_spent", t.budget_spent as f64),
        ("breaker_opens", t.breaker_opens as f64),
        ("probe_successes", t.probe_successes as f64),
        ("duplicate_deliveries", t.duplicate_deliveries as f64),
        ("lost_reads", m.crash.lost_reads as f64),
        ("completed_reads", v.completed as f64),
        ("abandoned_reads", v.abandoned as f64),
        ("expected_reads", v.expected as f64),
        ("violations", u64::from(v.violation.is_some()) as f64),
    ])
}

/// Build the report document from a sweep's results. The report is
/// regenerated wholesale on each run (scenarios are deterministic, so
/// entries only change when the code does).
pub fn report(results: &[TailResult], quick: bool) -> Json {
    sweep_report(
        SCHEMA,
        quick,
        results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("run".into(), run_json(&r.metrics, &r.verdict)),
                ])
            })
            .collect(),
    )
}

/// Fields every per-run object in the report must carry.
const RUN_FIELDS: [&str; 21] = [
    "total_ms",
    "read_ms",
    "read_p99_ms",
    "hedged_p99_ms",
    "timeouts",
    "retries",
    "disk_ops",
    "hedges_launched",
    "hedge_wins",
    "hedge_wasted",
    "hedge_cancels",
    "retries_denied",
    "budget_spent",
    "breaker_opens",
    "probe_successes",
    "duplicate_deliveries",
    "lost_reads",
    "completed_reads",
    "abandoned_reads",
    "expected_reads",
    "violations",
];

/// Check that `doc` is a structurally valid tail report: correct
/// schema, the full pattern x mode x policy grid present, every run
/// carrying all counters, zero verification violations, **zero
/// duplicate deliveries**, the reads accounted for, the timeout-only
/// policy untouched by the new machinery, `budget_spent` within the
/// token bucket's bound, hedges actually firing (and breakers actually
/// opening) where their faults demand it, and the hedged policy's p99
/// read time no worse than timeout-only's under the straggler. Every
/// failure is reported, newline-joined, not just the first.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    let scenarios = c.array(doc, "scenarios");
    let mut seen: Vec<String> = Vec::new();
    let mut p99: Vec<(String, f64)> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let Some(name) = c.string(s, "name", &format!("scenario {i}")) else {
            continue;
        };
        let name = name.to_string();
        seen.push(name.clone());
        let Some(run) = s.get("run") else {
            c.fail(format!("scenario {name}: missing run"));
            continue;
        };
        let ctx = format!("scenario {name}");
        c.nums(run, &RUN_FIELDS, &ctx);
        let num = |field: &str| run.get(field).and_then(Json::as_f64);
        if let Some(p) = num("read_p99_ms") {
            p99.push((name.clone(), p));
        }
        if num("violations").is_some_and(|v| v != 0.0) {
            c.fail(format!("{ctx}: verification reported violations"));
        }
        if num("duplicate_deliveries").is_some_and(|v| v != 0.0) {
            c.fail(format!("{ctx}: a waiter was delivered a block twice"));
        }
        if let (Some(completed), Some(lost), Some(abandoned), Some(expected)) = (
            num("completed_reads"),
            num("lost_reads"),
            num("abandoned_reads"),
            num("expected_reads"),
        ) {
            if completed + lost + abandoned != expected {
                c.fail(format!(
                    "{ctx}: {completed} completed + {lost} lost + {abandoned} \
                     abandoned != {expected} expected"
                ));
            }
            if expected <= 0.0 {
                c.fail(format!("{ctx}: empty workload"));
            }
        }
        // The timeout-only policy must be untouched by the machinery:
        // inert layers stay inert.
        if name.ends_with("-timeout") {
            for field in ["hedges_launched", "budget_spent", "breaker_opens"] {
                if num(field).is_some_and(|v| v != 0.0) {
                    c.fail(format!("{ctx}: timeout-only run has nonzero {field}"));
                }
            }
        }
        // Budget discipline: spends never exceed the initial capacity
        // plus the refills successful completions could have earned.
        if name.ends_with("-full") {
            if let (Some(spent), Some(ops)) = (num("budget_spent"), num("disk_ops")) {
                let bound = f64::from(BUDGET_CAPACITY) + BUDGET_REFILL * ops;
                if spent > bound {
                    c.fail(format!(
                        "{ctx}: budget_spent {spent} exceeds the bucket bound {bound}"
                    ));
                }
            }
        }
        // A straggled disk must provoke hedging, and an outage must trip
        // the breaker, whenever the policy enables them.
        let hedging = name.ends_with("-hedge") || name.ends_with("-full");
        if hedging
            && name.contains("-straggler-")
            && num("hedges_launched").is_some_and(|v| v == 0.0)
        {
            c.fail(format!("{ctx}: straggler run never hedged"));
        }
        if name.contains("-outage-")
            && name.ends_with("-full")
            && num("breaker_opens").is_some_and(|v| v == 0.0)
        {
            c.fail(format!("{ctx}: outage run never opened a breaker"));
        }
    }
    for (pat, _) in PATTERNS {
        for mode in FAULT_MODES {
            for policy in POLICIES {
                let want = format!("{pat}-{mode}-{policy}");
                if !seen.contains(&want) {
                    c.fail(format!("missing scenario {want}"));
                }
            }
        }
    }
    // Tail improvement: under the pure straggler, hedging must not make
    // the p99 read time worse than waiting for the timeout.
    let p99_of = |name: &str| p99.iter().find(|(n, _)| n == name).map(|&(_, p)| p);
    for (pat, _) in PATTERNS {
        let base = p99_of(&format!("{pat}-straggler-timeout"));
        let hedged = p99_of(&format!("{pat}-straggler-hedge"));
        if let (Some(base), Some(hedged)) = (base, hedged) {
            if hedged > base {
                c.fail(format!(
                    "{pat}-straggler: hedged p99 {hedged:.2} ms worse than \
                     timeout-only p99 {base:.2} ms"
                ));
            }
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_set_shape() {
        for quick in [false, true] {
            let set = scenarios(quick).unwrap();
            assert_eq!(set.len(), 54, "6 patterns x 3 modes x 3 policies");
            for s in &set {
                s.cfg.validate().unwrap();
                assert_eq!(s.cfg.faults.replicas, 1);
                assert!(s.cfg.faults.retry.timeout.is_some());
                let hedging = s.name.ends_with("-hedge") || s.name.ends_with("-full");
                assert_eq!(s.cfg.faults.hedge.delay.is_some(), hedging, "{}", s.name);
                assert_eq!(
                    s.cfg.faults.breaker.enabled,
                    s.name.ends_with("-full"),
                    "{}",
                    s.name
                );
                assert_eq!(
                    !s.cfg.faults.crashes.is_empty(),
                    s.name.contains("-straggler-crash-"),
                    "{}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn smoke_sweep_produces_valid_report() {
        let results = run_sweep(true).unwrap();
        let doc = report(&results, true);
        validate_report(&doc).unwrap();
        // Reparse what we would write to disk.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&parsed).unwrap();
        // The sweep exercised the machinery it claims to measure:
        // hedges won somewhere, and some loser was cancelled or
        // absorbed without ever double-delivering.
        let wins: u64 = results.iter().map(|r| r.metrics.tail.hedge_wins).sum();
        assert!(wins > 0, "no hedge ever won");
        for r in &results {
            assert_eq!(r.metrics.tail.duplicate_deliveries, 0, "{}", r.name);
        }
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
        let doc = Json::parse(r#"{"schema":1,"smoke":true,"scenarios":[]}"#).unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("missing scenario"), "{msg}");

        // A duplicate delivery anywhere must fail validation.
        let run = r#"{"total_ms":1,"read_ms":1,"read_p99_ms":1,"hedged_p99_ms":0,
            "timeouts":0,"retries":0,"disk_ops":10,"hedges_launched":1,"hedge_wins":1,
            "hedge_wasted":0,"hedge_cancels":0,"retries_denied":0,"budget_spent":1,
            "breaker_opens":0,"probe_successes":0,"duplicate_deliveries":1,
            "lost_reads":0,"completed_reads":200,"abandoned_reads":0,
            "expected_reads":200,"violations":0}"#;
        let doc = Json::parse(&format!(
            r#"{{"schema":1,"smoke":true,"scenarios":[{{"name":"gw-straggler-hedge","run":{run}}}]}}"#
        ))
        .unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("delivered a block twice"), "{msg}");

        // A hedged straggler p99 above the timeout-only p99 must fail.
        let mk = |name: &str, p99: f64| {
            format!(
                r#"{{"name":"{name}","run":{{"total_ms":1,"read_ms":1,"read_p99_ms":{p99},
                "hedged_p99_ms":0,"timeouts":0,"retries":0,"disk_ops":10,
                "hedges_launched":1,"hedge_wins":1,"hedge_wasted":0,"hedge_cancels":0,
                "retries_denied":0,"budget_spent":0,"breaker_opens":0,"probe_successes":0,
                "duplicate_deliveries":0,"lost_reads":0,"completed_reads":200,
                "abandoned_reads":0,"expected_reads":200,"violations":0}}}}"#
            )
        };
        let doc = Json::parse(&format!(
            r#"{{"schema":1,"smoke":true,"scenarios":[{},{}]}}"#,
            mk("gw-straggler-timeout", 100.0),
            mk("gw-straggler-hedge", 250.0),
        ))
        .unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("worse than"), "{msg}");

        // Budget overspend must fail.
        let over = r#"{"total_ms":1,"read_ms":1,"read_p99_ms":1,"hedged_p99_ms":0,
            "timeouts":0,"retries":0,"disk_ops":4,"hedges_launched":1,"hedge_wins":1,
            "hedge_wasted":0,"hedge_cancels":0,"retries_denied":0,"budget_spent":999,
            "breaker_opens":1,"probe_successes":0,"duplicate_deliveries":0,
            "lost_reads":0,"completed_reads":200,"abandoned_reads":0,
            "expected_reads":200,"violations":0}"#;
        let doc = Json::parse(&format!(
            r#"{{"schema":1,"smoke":true,"scenarios":[{{"name":"gw-outage-full","run":{over}}}]}}"#
        ))
        .unwrap();
        let msg = validate_report(&doc).unwrap_err();
        assert!(msg.contains("bucket bound"), "{msg}");
    }
}
