//! The `rapid-transit integrity` harness: the end-to-end data-integrity
//! sweep, emitted as `BENCH_integrity.json`.
//!
//! Each of the paper's six access patterns runs three ways — without
//! corruption (the control), with silent-corruption windows and the
//! scrubber off, and with the same windows plus the idle-time scrubber —
//! all with one rotated replica so read-repair has a healthy copy to
//! fetch. Two things are checked per scenario:
//!
//! 1. **The integrity guarantee**: the scenario is re-run under
//!    [`rt_sim::run_observed`] with [`rt_core::World::check_soak_invariants`]
//!    evaluated after **every** event, which (among the structural
//!    invariants) rejects the run the instant a corrupt payload is
//!    delivered to a reader as clean data.
//! 2. **The counters**: the report records the integrity counters of each
//!    run, and [`validate_report`] rejects any document where a corrupt
//!    block was delivered, where injected corruption went undetected
//!    (every corrupt completion must be caught by demand verification or
//!    the scrubber), or where the control run saw corruption at all.
//!
//! Everything is seeded; a given build either always passes or always
//! fails. The `--smoke` variant shrinks the machine for CI.

use rt_core::experiment::run_experiment;
use rt_core::faults::{parse_fault_specs, FaultSpecError};
use rt_core::{ExperimentConfig, ObsConfig, PrefetchConfig, RunMetrics, World};
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
use rt_sim::{run_observed, ObservedEnd, Scheduler};

use crate::json::{num_obj, sweep_report, Check, Json};
use crate::FlightDump;

/// Report format version.
pub const SCHEMA: u64 = 1;

/// Per-run event backstop for the observed re-run; a run on either
/// machine takes well under a million events, so hitting this means the
/// run diverged.
const RUN_EVENT_BUDGET: u64 = 20_000_000;

/// The three ways each pattern runs.
pub const VARIANTS: [&str; 3] = ["clean", "corrupt", "corrupt-scrub"];

/// One integrity scenario: a pattern under one corruption/scrub variant.
pub struct IntegrityScenario {
    /// Stable scenario name (report key), `<pattern>/<variant>`.
    pub name: String,
    /// Which variant this is (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// The full experiment configuration.
    pub cfg: ExperimentConfig,
}

/// The fixed scenario set: every paper pattern under every variant.
/// `smoke` shrinks the machine (4 nodes, 200 blocks) for CI. A malformed
/// spec is reported as a typed [`FaultSpecError`] rather than a panic,
/// so the CLI can surface it through its exit code.
pub fn scenarios(smoke: bool) -> Result<Vec<IntegrityScenario>, FaultSpecError> {
    let mut out = Vec::new();
    for pattern in AccessPattern::ALL {
        for variant in VARIANTS {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if smoke {
                cfg.procs = 4;
                cfg.disks = 4;
                cfg.workload = WorkloadParams {
                    procs: 4,
                    file_blocks: 200,
                    total_reads: 200,
                    ..WorkloadParams::paper()
                };
            }
            cfg.prefetch = PrefetchConfig::paper();
            if variant != "clean" {
                // One device corrupting for the whole run, another for a
                // window — both indices exist on the 4-disk smoke machine.
                cfg.faults.plan = parse_fault_specs("corrupt:1:p0.2,corrupt:2:p0.3@50ms-900ms")?;
                cfg.faults.replicas = 1;
            }
            if variant == "corrupt-scrub" {
                cfg.integrity.scrub = true;
            }
            out.push(IntegrityScenario {
                name: format!("{pattern}/{variant}"),
                variant,
                cfg,
            });
        }
    }
    Ok(out)
}

/// Outcome of one scenario: the metrics of the run plus the observed
/// re-run's event count and first invariant violation, if any.
#[derive(Clone, Debug)]
pub struct IntegrityOutcome {
    /// Metrics of the (identical, deterministic) plain run.
    pub metrics: RunMetrics,
    /// Events the observed re-run dispatched.
    pub events: u64,
    /// First per-event invariant violation (`None` means clean).
    pub violation: Option<String>,
    /// Flight-recorder dump of the violating re-run (`None` when clean).
    pub flight: Option<FlightDump>,
}

/// Run one scenario: the plain run for its metrics, then the observed
/// re-run with every invariant checked after every event. The re-run
/// keeps a flight recorder; when the corrupt-delivery tripwire (or any
/// other invariant) fires, its recording comes back as
/// [`IntegrityOutcome::flight`] for a postmortem dump.
pub fn run_scenario(cfg: &ExperimentConfig) -> IntegrityOutcome {
    let metrics = run_experiment(cfg);
    let mut world = World::new(cfg.clone());
    world.enable_obs(ObsConfig::flight_recorder());
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    let end = run_observed(&mut world, &mut sched, RUN_EVENT_BUDGET, |w, _| {
        w.check_soak_invariants()
    });
    let (events, violation) = match end {
        ObservedEnd::Finished(run) => {
            let violation = if run.budget_exhausted {
                Some(format!("run exceeded the {RUN_EVENT_BUDGET}-event budget"))
            } else if !world.complete() {
                Some("run drained without finishing".into())
            } else {
                None
            };
            (run.events, violation)
        }
        ObservedEnd::Violation {
            message,
            at,
            events,
        } => (
            events,
            Some(format!("{message} (at {at:?}, event {events})")),
        ),
    };
    let flight = if violation.is_some() {
        FlightDump::take(&mut world)
    } else {
        None
    };
    IntegrityOutcome {
        metrics,
        events,
        violation,
        flight,
    }
}

/// Run every scenario.
pub fn run_sweep(
    smoke: bool,
) -> Result<Vec<(IntegrityScenario, IntegrityOutcome)>, FaultSpecError> {
    Ok(scenarios(smoke)?
        .into_iter()
        .map(|s| {
            let out = run_scenario(&s.cfg);
            (s, out)
        })
        .collect())
}

fn run_json(m: &RunMetrics) -> Json {
    let ig = &m.integrity;
    num_obj(&[
        ("total_ms", m.total_time.as_millis_f64()),
        ("read_ms", m.mean_read_ms()),
        ("hit_ratio", m.hit_ratio),
        ("corruptions", ig.corruptions as f64),
        ("detections", ig.detections as f64),
        ("repairs", ig.repairs as f64),
        ("rewrites", ig.rewrites as f64),
        ("scrubbed", ig.scrubbed as f64),
        ("scrub_detections", ig.scrub_detections as f64),
        ("poisoned_blocks", ig.poisoned_blocks as f64),
        ("failed_reads", ig.failed_reads as f64),
        ("corrupt_delivered", ig.corrupt_delivered as f64),
        ("quarantines", ig.quarantines as f64),
        ("quarantined_ms", ig.quarantined_time.as_millis_f64()),
    ])
}

/// Build the report document from a sweep's results.
pub fn report(results: &[(IntegrityScenario, IntegrityOutcome)], smoke: bool) -> Json {
    sweep_report(
        SCHEMA,
        smoke,
        results
            .iter()
            .map(|(s, out)| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("variant".into(), Json::Str(s.variant.to_string())),
                    ("run".into(), run_json(&out.metrics)),
                    (
                        "observed".into(),
                        num_obj(&[
                            ("events", out.events as f64),
                            ("violations", u64::from(out.violation.is_some()) as f64),
                        ]),
                    ),
                ])
            })
            .collect(),
    )
}

/// Fields every per-run object in the report must carry.
const RUN_FIELDS: [&str; 14] = [
    "total_ms",
    "read_ms",
    "hit_ratio",
    "corruptions",
    "detections",
    "repairs",
    "rewrites",
    "scrubbed",
    "scrub_detections",
    "poisoned_blocks",
    "failed_reads",
    "corrupt_delivered",
    "quarantines",
    "quarantined_ms",
];

/// Check that `doc` is a structurally valid integrity report, and that
/// it witnesses the end-to-end guarantee: no scenario delivered a
/// corrupt block, every injected corruption was caught by a check
/// (demand verification or the scrubber), the control runs stayed
/// entirely clean, the scrub variants actually scrubbed, and the
/// per-event observed re-runs reported zero violations. Every failure
/// is reported, newline-joined, not just the first.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    let scenarios = c.array(doc, "scenarios");
    let structure_ok = !scenarios.is_empty();
    let mut seen = [0u32; 3];
    let mut scrubbed_total = 0.0;
    for (i, s) in scenarios.iter().enumerate() {
        let Some(name) = c.string(s, "name", &format!("scenario {i}")) else {
            continue;
        };
        let variant = c.string(s, "variant", &format!("scenario {name}"));
        let slot = variant.and_then(|v| VARIANTS.iter().position(|k| *k == v));
        match (variant, slot) {
            (Some(v), None) => c.fail(format!("scenario {name}: unknown variant {v:?}")),
            (_, Some(slot)) => seen[slot] += 1,
            _ => {}
        }
        let Some(run) = s.get("run") else {
            c.fail(format!("scenario {name}: missing run"));
            continue;
        };
        c.nums(run, &RUN_FIELDS, &format!("scenario {name}"));
        let num = |f: &str| run.get(f).and_then(Json::as_f64);
        // The guarantee itself: nothing corrupt ever reached a reader.
        if num("corrupt_delivered").is_some_and(|v| v != 0.0) {
            c.fail(format!(
                "scenario {name}: delivered a corrupt block to a reader"
            ));
        }
        let corruptions = num("corruptions").unwrap_or(0.0);
        let caught = num("detections").unwrap_or(0.0) + num("scrub_detections").unwrap_or(0.0);
        match variant {
            // A guard, not a nested if: a clean control that passes it must
            // not fall through to the injected-corruption checks below.
            Some("clean")
                if corruptions != 0.0 || num("poisoned_blocks").is_some_and(|v| v != 0.0) =>
            {
                c.fail(format!("scenario {name}: control run saw corruption"));
            }
            Some("clean") | None => {}
            Some(_) => {
                if corruptions == 0.0 {
                    c.fail(format!(
                        "scenario {name}: corruption was injected but never observed"
                    ));
                } else if caught != corruptions {
                    c.fail(format!(
                        "scenario {name}: {corruptions} corrupt completions but only \
                         {caught} caught by a check"
                    ));
                }
            }
        }
        if variant == Some("corrupt-scrub") {
            scrubbed_total += num("scrubbed").unwrap_or(0.0);
        }
        let Some(observed) = s.get("observed") else {
            c.fail(format!("scenario {name}: missing observed"));
            continue;
        };
        if c.num(
            observed,
            "violations",
            &format!("scenario {name}: observed"),
        )
        .is_some_and(|v| v != 0.0)
        {
            c.fail(format!(
                "scenario {name}: per-event invariant check reported violations"
            ));
        }
        if observed
            .get("events")
            .and_then(Json::as_f64)
            .is_none_or(|e| e <= 0.0)
        {
            c.fail(format!("scenario {name}: observed re-run ran no events"));
        }
    }
    if structure_ok {
        for (v, n) in VARIANTS.iter().zip(seen) {
            if n == 0 {
                c.fail(format!("no {v} scenario in the report"));
            }
        }
        if scrubbed_total == 0.0 {
            c.fail("scrub variants never issued a scrub read");
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_set_shape() {
        for smoke in [false, true] {
            let set = scenarios(smoke).unwrap();
            assert_eq!(set.len(), AccessPattern::ALL.len() * VARIANTS.len());
            for s in &set {
                s.cfg.validate().unwrap();
                match s.variant {
                    "clean" => assert!(!s.cfg.integrity.active_with(&s.cfg.faults.plan)),
                    _ => {
                        assert!(s.cfg.faults.plan.has_corruption());
                        assert_eq!(s.cfg.faults.replicas, 1);
                    }
                }
                assert_eq!(s.variant == "corrupt-scrub", s.cfg.integrity.scrub);
            }
        }
    }

    #[test]
    fn smoke_sweep_produces_valid_report() {
        let results = run_sweep(true).unwrap();
        let doc = report(&results, true);
        validate_report(&doc).unwrap();
        // Reparse what we would write to disk.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_report(&parsed).unwrap();
        for (s, out) in &results {
            assert!(out.violation.is_none(), "{}: {:?}", s.name, out.violation);
        }
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
        let doc = Json::parse(r#"{"schema":1,"smoke":true,"scenarios":[]}"#).unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("empty"));
        // A delivered corrupt block must be rejected even if every other
        // field is in order.
        let run_fields: Vec<String> = RUN_FIELDS
            .iter()
            .map(|f| {
                let v = match *f {
                    "corruptions" => 2,
                    "corrupt_delivered" | "detections" | "scrub_detections" => 1,
                    _ => 0,
                };
                format!("\"{f}\":{v}")
            })
            .collect();
        let text = format!(
            r#"{{"schema":1,"smoke":true,"scenarios":[{{"name":"gw/corrupt",
                "variant":"corrupt","run":{{{}}},
                "observed":{{"events":100,"violations":0}}}}]}}"#,
            run_fields.join(",")
        );
        let doc = Json::parse(&text).unwrap();
        assert!(validate_report(&doc)
            .unwrap_err()
            .contains("delivered a corrupt block"));
    }
}
