//! Validator for exported Chrome Trace Event JSON (`--trace-out` files
//! and flight-recorder dumps).
//!
//! Beyond well-formedness (the fields each `ph` kind requires), two
//! simulator-specific properties are checked:
//!
//! * **Track discipline** — duration spans (`ph:"X"`) on one `(pid,tid)`
//!   track must be in order and non-overlapping: processes read
//!   sequentially, devices service one request at a time, and daemon
//!   slots run one action at a time, so an overlap means the exporter
//!   mislabeled a track or misplaced a span.
//! * **Attribution sums** — every `read` span carries its component
//!   breakdown in exact nanoseconds (`lock_wait_ns` … `overhead_ns`);
//!   the components must sum to the span's `dur_ns` exactly, the same
//!   invariant the simulator asserts at read completion.
//! * **Dead-interval discipline** — between a node's `crash` instant and
//!   its `rejoin` (or forever, for a permanent crash), its proc and
//!   daemon tracks must record no span other than the `dead` span that
//!   marks the interval itself: a dead node reads nothing and runs no
//!   daemon action.
//!
//! Timestamps in the file are decimal microseconds with three fractional
//! digits; they are converted back to exact nanoseconds by rounding, so
//! the checks are integer-exact despite the float transport.

use std::collections::HashMap;

use rt_core::obs::COMPONENT_NAMES;

use crate::json::{Check, Json};

/// Summary of a validated trace document.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Duration spans (`ph:"X"`).
    pub spans: usize,
    /// Read spans whose attribution sum was verified.
    pub reads: usize,
    /// Instant events (`ph:"i"`).
    pub instants: usize,
    /// Counter samples (`ph:"C"`).
    pub counters: usize,
    /// The document's `droppedEvents` count (ring overwrites).
    pub dropped: u64,
}

/// Exact nanoseconds from a decimal-microsecond timestamp. The writer
/// emits three fractional digits, so rounding recovers the integer.
fn ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

/// Validate `doc` as a Chrome Trace Event JSON document. Returns summary
/// statistics on success; on failure, every problem found is reported in
/// one newline-joined error.
pub fn validate_trace(doc: &Json) -> Result<TraceStats, String> {
    let mut c = Check::new();
    let mut stats = TraceStats::default();

    match doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(Json::as_f64)
    {
        Some(d) if d >= 0.0 => stats.dropped = d as u64,
        Some(_) => c.fail("otherData.droppedEvents is negative"),
        None => c.fail("missing otherData.droppedEvents"),
    }

    let events = c.array(doc, "traceEvents");
    stats.events = events.len();
    // Pre-pass: reconstruct each node's dead intervals from its crash /
    // rejoin instants (pid 1 = compute processes), so the span pass can
    // reject activity recorded while the node was down. An unmatched
    // crash leaves an open-ended interval; an unmatched rejoin (its
    // crash overwritten in the ring) is ignored.
    let mut dead: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut open_crash: HashMap<u64, u64> = HashMap::new();
    for e in events {
        let is_instant = e.get("ph").and_then(Json::as_str) == Some("i");
        let on_proc = e.get("pid").and_then(Json::as_f64) == Some(1.0);
        if !is_instant || !on_proc {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let Some(ts) = e.get("ts").and_then(Json::as_f64) else {
            continue;
        };
        match e.get("name").and_then(Json::as_str) {
            Some("crash") => {
                open_crash.insert(tid, ns(ts));
            }
            Some("rejoin") => {
                if let Some(start) = open_crash.remove(&tid) {
                    dead.entry(tid).or_default().push((start, ns(ts)));
                }
            }
            _ => {}
        }
    }
    for (tid, start) in open_crash {
        dead.entry(tid).or_default().push((start, u64::MAX));
    }
    // Per-(pid,tid) end of the last duration span, in exact ns.
    let mut last_end: HashMap<(u64, u64), (u64, usize)> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("event {i}");
        let name = c.string(e, "name", &ctx).unwrap_or("?").to_string();
        let ctx = format!("event {i} ({name})");
        let Some(ph) = c.string(e, "ph", &ctx).map(str::to_string) else {
            continue;
        };
        if ph != "C" {
            c.num(e, "pid", &ctx);
        }
        match ph.as_str() {
            "M" => {
                if e.get("args").and_then(|a| a.get("name")).is_none() {
                    c.fail(format!("{ctx}: metadata without args.name"));
                }
            }
            "X" => {
                stats.spans += 1;
                c.num(e, "tid", &ctx);
                let (Some(ts), Some(dur)) = (c.num(e, "ts", &ctx), c.num(e, "dur", &ctx)) else {
                    continue;
                };
                let (start, mut end) = (ns(ts), ns(ts) + ns(dur));
                let args = e.get("args");
                if let Some(dur_ns) = args.and_then(|a| a.get("dur_ns")).and_then(Json::as_f64) {
                    if dur_ns != ns(dur) as f64 {
                        c.fail(format!(
                            "{ctx}: dur {dur} µs does not match args.dur_ns {dur_ns}"
                        ));
                    }
                    end = start + dur_ns as u64;
                }
                if name == "read" {
                    stats.reads += 1;
                    let comp: f64 = COMPONENT_NAMES
                        .iter()
                        .map(|n| {
                            args.and_then(|a| a.get(&format!("{n}_ns")))
                                .and_then(Json::as_f64)
                                .unwrap_or_else(|| {
                                    c.fail(format!("{ctx}: missing {n}_ns attribution"));
                                    0.0
                                })
                        })
                        .sum();
                    let dur_ns = args
                        .and_then(|a| a.get("dur_ns"))
                        .and_then(Json::as_f64)
                        .unwrap_or(-1.0);
                    if comp != dur_ns {
                        c.fail(format!(
                            "{ctx}: attribution components sum to {comp} ns, span is {dur_ns} ns"
                        ));
                    }
                }
                let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                // Dead-interval discipline: a crashed node records
                // nothing — no read span on its proc track, no action
                // span on its daemon slot — until its rejoin instant.
                // The `dead` span itself covers the interval by design.
                if (pid == 1 || pid == 3) && name != "dead" {
                    for &(ds, de) in dead.get(&tid).map_or(&[][..], Vec::as_slice) {
                        if start < de && end > ds {
                            c.fail(format!(
                                "{ctx}: span [{start}, {end}) ns on track {pid}/{tid} \
                                 lies inside node {tid}'s dead interval [{ds}, {de}) ns"
                            ));
                        }
                    }
                }
                if let Some(&(prev_end, prev_i)) = last_end.get(&(pid, tid)) {
                    if start < prev_end {
                        c.fail(format!(
                            "{ctx}: span starts at {start} ns, overlapping span \
                             (event {prev_i}) on track {pid}/{tid} ending at {prev_end} ns"
                        ));
                    }
                }
                last_end.insert((pid, tid), (end, i));
            }
            "i" => {
                stats.instants += 1;
                c.num(e, "tid", &ctx);
                c.num(e, "ts", &ctx);
            }
            "C" => {
                stats.counters += 1;
                c.num(e, "ts", &ctx);
                if e.get("args").and_then(|a| a.get("value")).is_none() {
                    c.fail(format!("{ctx}: counter without args.value"));
                }
            }
            other => c.fail(format!("{ctx}: unknown ph {other:?}")),
        }
    }
    c.finish().map(|()| stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::experiment::run_experiment_observed;
    use rt_core::{ExperimentConfig, ObsConfig, PrefetchConfig};
    use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};

    fn observed_trace() -> String {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.prefetch = PrefetchConfig::paper();
        let (_, data) = run_experiment_observed(&cfg, ObsConfig::default());
        data.to_perfetto()
    }

    #[test]
    fn real_export_validates() {
        let text = observed_trace();
        let doc = Json::parse(&text).expect("exported trace parses");
        let stats = validate_trace(&doc).expect("exported trace validates");
        assert!(stats.spans > 0, "no spans: {stats:?}");
        assert_eq!(stats.reads, 200, "one read span per read");
        assert!(stats.counters > 0, "no counter samples");
        assert_eq!(stats.dropped, 0);
    }

    fn crash_spec(node: u16, at_ms: u64, rejoin_ms: Option<u64>) -> rt_core::faults::CrashSpec {
        rt_core::faults::CrashSpec {
            node,
            at: rt_sim::SimTime::from_nanos(at_ms * 1_000_000),
            rejoin: rejoin_ms.map(|m| rt_sim::SimTime::from_nanos(m * 1_000_000)),
        }
    }

    #[test]
    fn crash_run_export_validates() {
        // A crash + rejoin run's own export must pass: the dead span
        // marks the interval, and nothing else lands inside it.
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::LocalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.prefetch = PrefetchConfig::paper();
        cfg.faults.crashes.push(crash_spec(1, 50, Some(200)));
        cfg.faults.crashes.push(crash_spec(2, 80, None));
        let (_, data) = run_experiment_observed(&cfg, ObsConfig::default());
        let doc = Json::parse(&data.to_perfetto()).expect("crash trace parses");
        let stats = validate_trace(&doc).expect("crash trace validates");
        assert!(stats.spans > 0);
    }

    #[test]
    fn span_inside_dead_interval_is_caught() {
        // Node 1 crashes at 10 µs and rejoins at 50 µs; a read span on
        // its proc track at 20 µs and a daemon action on its slot must
        // both be rejected, while the dead span itself passes.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":1,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":1,"ts":20.000,"dur":5.000,"args":{}},
              {"name":"action","ph":"X","pid":3,"tid":1,"ts":30.000,"dur":5.000,"args":{}},
              {"name":"rejoin","ph":"i","s":"t","pid":1,"tid":1,"ts":50.000,"args":{}},
              {"name":"dead","ph":"X","pid":1,"tid":1,"ts":10.000,"dur":40.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("dead-interval span rejected");
        assert!(err.contains("dead interval"), "{err}");
        assert_eq!(err.matches("dead interval").count(), 2, "{err}");

        // A permanent crash protects the open-ended tail too.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0,"x":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":2,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":2,"ts":900.000,"dur":5.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("post-crash span rejected");
        assert!(err.contains("dead interval"), "{err}");

        // Spans on other nodes' tracks during the interval still pass.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":1,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":3,"ts":20.000,"dur":5.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        validate_trace(&doc).expect("survivor span passes");
    }

    #[test]
    fn tampered_attribution_is_caught() {
        let text = observed_trace().replace("\"lock_wait_ns\":0", "\"lock_wait_ns\":12345");
        let doc = Json::parse(&text).unwrap();
        let err = validate_trace(&doc).expect_err("tampered sums rejected");
        assert!(err.contains("attribution components sum"), "{err}");
    }

    #[test]
    fn overlap_and_garbage_are_caught() {
        // Two spans on one track, the second starting inside the first.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"service","ph":"X","pid":2,"tid":0,"ts":0.000,"dur":10.000,"args":{}},
              {"name":"service","ph":"X","pid":2,"tid":0,"ts":5.000,"dur":10.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("overlap rejected");
        assert!(err.contains("overlapping"), "{err}");

        let doc = Json::parse(r#"{"traceEvents":[{"name":"x","ph":"Z","pid":1}]}"#).unwrap();
        let err = validate_trace(&doc).expect_err("garbage rejected");
        assert!(err.contains("droppedEvents"), "{err}");
        assert!(err.contains("unknown ph"), "{err}");
    }
}
