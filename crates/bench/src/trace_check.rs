//! Validator for exported Chrome Trace Event JSON (`--trace-out` files
//! and flight-recorder dumps).
//!
//! Beyond well-formedness (the fields each `ph` kind requires), two
//! simulator-specific properties are checked:
//!
//! * **Track discipline** — duration spans (`ph:"X"`) on one `(pid,tid)`
//!   track must be in order and non-overlapping: processes read
//!   sequentially, devices service one request at a time, and daemon
//!   slots run one action at a time, so an overlap means the exporter
//!   mislabeled a track or misplaced a span.
//! * **Attribution sums** — every `read` span carries its component
//!   breakdown in exact nanoseconds (`lock_wait_ns` … `overhead_ns`);
//!   the components must sum to the span's `dur_ns` exactly, the same
//!   invariant the simulator asserts at read completion.
//! * **Dead-interval discipline** — between a node's `crash` instant and
//!   its `rejoin` (or forever, for a permanent crash), its proc and
//!   daemon tracks must record no span other than the `dead` span that
//!   marks the interval itself: a dead node reads nothing and runs no
//!   daemon action.
//! * **Hedge causality** — every `hedge-win` instant must be preceded by
//!   a `hedge-launch` for the same block: a win with no launch means the
//!   exporter (or the simulator) invented a duplicate fetch. Skipped
//!   when the ring dropped events, since the launch may be the casualty.
//! * **Breaker discipline** — while a device's circuit breaker is open
//!   (a `breaker-open` span on pid 5, one tid per device), no *demand*
//!   request may be *submitted* to that device. Service spans that merely
//!   finish draining inside the window are legal — submission time is
//!   the span start minus its recorded `queue_ns`.
//!
//! Timestamps in the file are decimal microseconds with three fractional
//! digits; they are converted back to exact nanoseconds by rounding, so
//! the checks are integer-exact despite the float transport.

use std::collections::HashMap;

use rt_core::obs::COMPONENT_NAMES;

use crate::json::{Check, Json};

/// Summary of a validated trace document.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Duration spans (`ph:"X"`).
    pub spans: usize,
    /// Read spans whose attribution sum was verified.
    pub reads: usize,
    /// Instant events (`ph:"i"`).
    pub instants: usize,
    /// Counter samples (`ph:"C"`).
    pub counters: usize,
    /// The document's `droppedEvents` count (ring overwrites).
    pub dropped: u64,
}

/// Exact nanoseconds from a decimal-microsecond timestamp. The writer
/// emits three fractional digits, so rounding recovers the integer.
fn ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

/// Validate `doc` as a Chrome Trace Event JSON document. Returns summary
/// statistics on success; on failure, every problem found is reported in
/// one newline-joined error.
pub fn validate_trace(doc: &Json) -> Result<TraceStats, String> {
    let mut c = Check::new();
    let mut stats = TraceStats::default();

    match doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(Json::as_f64)
    {
        Some(d) if d >= 0.0 => stats.dropped = d as u64,
        Some(_) => c.fail("otherData.droppedEvents is negative"),
        None => c.fail("missing otherData.droppedEvents"),
    }

    let events = c.array(doc, "traceEvents");
    stats.events = events.len();
    // Pre-pass: reconstruct each node's dead intervals from its crash /
    // rejoin instants (pid 1 = compute processes), so the span pass can
    // reject activity recorded while the node was down. An unmatched
    // crash leaves an open-ended interval; an unmatched rejoin (its
    // crash overwritten in the ring) is ignored.
    let mut dead: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut open_crash: HashMap<u64, u64> = HashMap::new();
    // Also reconstructed up front: per-device open-breaker windows (pid 5
    // spans) for the breaker-discipline check, and the earliest
    // hedge-launch per block for the hedge-causality check.
    let mut breaker_open: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut hedge_launch: HashMap<u64, u64> = HashMap::new();
    let mut hedge_wins: Vec<(usize, u64, u64)> = Vec::new();
    // Audited last-resort submissions (every replica avoided, or a parked
    // replay whose target was fixed before the breaker opened): the
    // emitter marks them, and the breaker-discipline check honors the
    // mark — keyed by (device tid, block, exact submission ns).
    let mut bypass: std::collections::HashSet<(u64, u64, u64)> = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Json::as_str);
        let pid = e.get("pid").and_then(Json::as_f64);
        let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let Some(ts) = e.get("ts").and_then(Json::as_f64) else {
            continue;
        };
        if ph == Some("X") && pid == Some(5.0) {
            if let Some(dur) = e.get("dur").and_then(Json::as_f64) {
                breaker_open
                    .entry(tid)
                    .or_default()
                    .push((ns(ts), ns(ts) + ns(dur)));
            }
            continue;
        }
        if ph != Some("i") {
            continue;
        }
        let name = e.get("name").and_then(Json::as_str);
        if pid == Some(1.0) {
            match name {
                Some("crash") => {
                    open_crash.insert(tid, ns(ts));
                }
                Some("rejoin") => {
                    if let Some(start) = open_crash.remove(&tid) {
                        dead.entry(tid).or_default().push((start, ns(ts)));
                    }
                }
                _ => {}
            }
        }
        let block = e
            .get("args")
            .and_then(|a| a.get("block"))
            .and_then(Json::as_f64);
        if let Some(block) = block {
            match name {
                Some("hedge-launch") => {
                    let t = hedge_launch.entry(block as u64).or_insert(u64::MAX);
                    *t = (*t).min(ns(ts));
                }
                Some("hedge-win") => hedge_wins.push((i, block as u64, ns(ts))),
                Some("breaker-bypass") if pid == Some(2.0) => {
                    bypass.insert((tid, block as u64, ns(ts)));
                }
                _ => {}
            }
        }
    }
    for (tid, start) in open_crash {
        dead.entry(tid).or_default().push((start, u64::MAX));
    }
    // Hedge causality: a win with no prior launch for the block is a
    // duplicate delivery the trace cannot explain. Only meaningful when
    // nothing was dropped — the ring may have overwritten the launch.
    if stats.dropped == 0 {
        for (i, block, ts) in hedge_wins {
            if hedge_launch.get(&block).is_none_or(|&l| l > ts) {
                c.fail(format!(
                    "event {i} (hedge-win): no earlier hedge-launch for block {block}"
                ));
            }
        }
    }
    // Per-(pid,tid) end of the last duration span, in exact ns.
    let mut last_end: HashMap<(u64, u64), (u64, usize)> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("event {i}");
        let name = c.string(e, "name", &ctx).unwrap_or("?").to_string();
        let ctx = format!("event {i} ({name})");
        let Some(ph) = c.string(e, "ph", &ctx).map(str::to_string) else {
            continue;
        };
        if ph != "C" {
            c.num(e, "pid", &ctx);
        }
        match ph.as_str() {
            "M" => {
                if e.get("args").and_then(|a| a.get("name")).is_none() {
                    c.fail(format!("{ctx}: metadata without args.name"));
                }
            }
            "X" => {
                stats.spans += 1;
                c.num(e, "tid", &ctx);
                let (Some(ts), Some(dur)) = (c.num(e, "ts", &ctx), c.num(e, "dur", &ctx)) else {
                    continue;
                };
                let (start, mut end) = (ns(ts), ns(ts) + ns(dur));
                let args = e.get("args");
                if let Some(dur_ns) = args.and_then(|a| a.get("dur_ns")).and_then(Json::as_f64) {
                    if dur_ns != ns(dur) as f64 {
                        c.fail(format!(
                            "{ctx}: dur {dur} µs does not match args.dur_ns {dur_ns}"
                        ));
                    }
                    end = start + dur_ns as u64;
                }
                if name == "read" {
                    stats.reads += 1;
                    let comp: f64 = COMPONENT_NAMES
                        .iter()
                        .map(|n| {
                            args.and_then(|a| a.get(&format!("{n}_ns")))
                                .and_then(Json::as_f64)
                                .unwrap_or_else(|| {
                                    c.fail(format!("{ctx}: missing {n}_ns attribution"));
                                    0.0
                                })
                        })
                        .sum();
                    let dur_ns = args
                        .and_then(|a| a.get("dur_ns"))
                        .and_then(Json::as_f64)
                        .unwrap_or(-1.0);
                    if comp != dur_ns {
                        c.fail(format!(
                            "{ctx}: attribution components sum to {comp} ns, span is {dur_ns} ns"
                        ));
                    }
                }
                let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                // Dead-interval discipline: a crashed node records
                // nothing — no read span on its proc track, no action
                // span on its daemon slot — until its rejoin instant.
                // The `dead` span itself covers the interval by design.
                if (pid == 1 || pid == 3) && name != "dead" {
                    for &(ds, de) in dead.get(&tid).map_or(&[][..], Vec::as_slice) {
                        if start < de && end > ds {
                            c.fail(format!(
                                "{ctx}: span [{start}, {end}) ns on track {pid}/{tid} \
                                 lies inside node {tid}'s dead interval [{ds}, {de}) ns"
                            ));
                        }
                    }
                }
                // Breaker discipline: a demand request submitted while
                // the device's breaker was open means replica selection
                // ignored the open circuit. Submission time backs the
                // queue delay out of the service start; requests queued
                // before the breaker opened may legally drain inside the
                // window, and submissions the emitter marked as audited
                // last resorts (`breaker-bypass` instants) are exempt.
                // Only meaningful when nothing was dropped — the ring may
                // have overwritten the exempting mark.
                if pid == 2
                    && stats.dropped == 0
                    && args
                        .and_then(|a| a.get("kind"))
                        .and_then(Json::as_str)
                        .is_some_and(|k| k == "demand")
                {
                    let queue_ns = args
                        .and_then(|a| a.get("queue_ns"))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0) as u64;
                    let submitted = start.saturating_sub(queue_ns);
                    let block = args
                        .and_then(|a| a.get("block"))
                        .and_then(Json::as_f64)
                        .map_or(u64::MAX, |b| b as u64);
                    if !bypass.contains(&(tid, block, submitted)) {
                        for &(bs, be) in breaker_open.get(&tid).map_or(&[][..], Vec::as_slice) {
                            if submitted >= bs && submitted < be {
                                c.fail(format!(
                                    "{ctx}: demand submitted at {submitted} ns to disk {tid} \
                                     inside its open-breaker window [{bs}, {be}) ns"
                                ));
                            }
                        }
                    }
                }
                if let Some(&(prev_end, prev_i)) = last_end.get(&(pid, tid)) {
                    if start < prev_end {
                        c.fail(format!(
                            "{ctx}: span starts at {start} ns, overlapping span \
                             (event {prev_i}) on track {pid}/{tid} ending at {prev_end} ns"
                        ));
                    }
                }
                last_end.insert((pid, tid), (end, i));
            }
            "i" => {
                stats.instants += 1;
                c.num(e, "tid", &ctx);
                c.num(e, "ts", &ctx);
            }
            "C" => {
                stats.counters += 1;
                c.num(e, "ts", &ctx);
                if e.get("args").and_then(|a| a.get("value")).is_none() {
                    c.fail(format!("{ctx}: counter without args.value"));
                }
            }
            other => c.fail(format!("{ctx}: unknown ph {other:?}")),
        }
    }
    c.finish().map(|()| stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_core::experiment::run_experiment_observed;
    use rt_core::{ExperimentConfig, ObsConfig, PrefetchConfig};
    use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};

    fn observed_trace() -> String {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.prefetch = PrefetchConfig::paper();
        let (_, data) = run_experiment_observed(&cfg, ObsConfig::default());
        data.to_perfetto()
    }

    #[test]
    fn real_export_validates() {
        let text = observed_trace();
        let doc = Json::parse(&text).expect("exported trace parses");
        let stats = validate_trace(&doc).expect("exported trace validates");
        assert!(stats.spans > 0, "no spans: {stats:?}");
        assert_eq!(stats.reads, 200, "one read span per read");
        assert!(stats.counters > 0, "no counter samples");
        assert_eq!(stats.dropped, 0);
    }

    fn crash_spec(node: u16, at_ms: u64, rejoin_ms: Option<u64>) -> rt_core::faults::CrashSpec {
        rt_core::faults::CrashSpec {
            node,
            at: rt_sim::SimTime::from_nanos(at_ms * 1_000_000),
            rejoin: rejoin_ms.map(|m| rt_sim::SimTime::from_nanos(m * 1_000_000)),
        }
    }

    #[test]
    fn crash_run_export_validates() {
        // A crash + rejoin run's own export must pass: the dead span
        // marks the interval, and nothing else lands inside it.
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::LocalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.prefetch = PrefetchConfig::paper();
        cfg.faults.crashes.push(crash_spec(1, 50, Some(200)));
        cfg.faults.crashes.push(crash_spec(2, 80, None));
        let (_, data) = run_experiment_observed(&cfg, ObsConfig::default());
        let doc = Json::parse(&data.to_perfetto()).expect("crash trace parses");
        let stats = validate_trace(&doc).expect("crash trace validates");
        assert!(stats.spans > 0);
    }

    #[test]
    fn span_inside_dead_interval_is_caught() {
        // Node 1 crashes at 10 µs and rejoins at 50 µs; a read span on
        // its proc track at 20 µs and a daemon action on its slot must
        // both be rejected, while the dead span itself passes.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":1,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":1,"ts":20.000,"dur":5.000,"args":{}},
              {"name":"action","ph":"X","pid":3,"tid":1,"ts":30.000,"dur":5.000,"args":{}},
              {"name":"rejoin","ph":"i","s":"t","pid":1,"tid":1,"ts":50.000,"args":{}},
              {"name":"dead","ph":"X","pid":1,"tid":1,"ts":10.000,"dur":40.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("dead-interval span rejected");
        assert!(err.contains("dead interval"), "{err}");
        assert_eq!(err.matches("dead interval").count(), 2, "{err}");

        // A permanent crash protects the open-ended tail too.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0,"x":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":2,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":2,"ts":900.000,"dur":5.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("post-crash span rejected");
        assert!(err.contains("dead interval"), "{err}");

        // Spans on other nodes' tracks during the interval still pass.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"crash","ph":"i","s":"t","pid":1,"tid":1,"ts":10.000,"args":{}},
              {"name":"service","ph":"X","pid":1,"tid":3,"ts":20.000,"dur":5.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        validate_trace(&doc).expect("survivor span passes");
    }

    #[test]
    fn hedged_breaker_run_export_validates() {
        // A straggler run with hedging, a retry budget, and breakers on:
        // its own export must satisfy the hedge-causality and breaker-
        // discipline rules (demand submissions route around open
        // circuits; every win has its launch).
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg.faults.replicas = 1;
        cfg.faults.retry.timeout = Some(rt_sim::SimDuration::from_millis(150));
        cfg.faults.hedge.delay = Some(rt_sim::SimDuration::from_millis(40));
        cfg.faults.budget.capacity = Some(32);
        cfg.faults.breaker.enabled = true;
        cfg.faults.plan =
            rt_core::faults::parse_fault_specs("straggler:0:x8").expect("straggler spec parses");
        let (m, data) = run_experiment_observed(&cfg, ObsConfig::default());
        let doc = Json::parse(&data.to_perfetto()).expect("hedged trace parses");
        let stats = validate_trace(&doc).expect("hedged trace validates");
        assert!(stats.spans > 0);
        assert_eq!(m.tail.duplicate_deliveries, 0);
    }

    #[test]
    fn hedge_win_without_launch_is_caught() {
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"hedge-win","ph":"i","s":"t","pid":2,"tid":1,"ts":20.000,"args":{"block":7}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("orphan hedge-win rejected");
        assert!(err.contains("no earlier hedge-launch"), "{err}");

        // With the launch present (and earlier), the same win passes.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"hedge-launch","ph":"i","s":"t","pid":2,"tid":1,"ts":10.000,"args":{"block":7}},
              {"name":"hedge-win","ph":"i","s":"t","pid":2,"tid":1,"ts":20.000,"args":{"block":7}}
            ]}"#,
        )
        .unwrap();
        validate_trace(&doc).expect("launched hedge-win passes");

        // When the ring dropped events the launch may be the casualty,
        // so the rule is suspended.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":3},"traceEvents":[
              {"name":"hedge-win","ph":"i","s":"t","pid":2,"tid":1,"ts":20.000,"args":{"block":7}}
            ]}"#,
        )
        .unwrap();
        validate_trace(&doc).expect("dropped ring suspends the rule");
    }

    #[test]
    fn demand_inside_open_breaker_is_caught() {
        // Disk 1's breaker is open [10, 60) µs. A demand serviced at
        // 30 µs with no queue delay was submitted inside the window —
        // rejected. The same span with queue_ns backing submission out
        // to 5 µs drained legally, and a prefetch inside the window is
        // not the breaker's business.
        let open = r#"{"name":"breaker-open","ph":"X","pid":5,"tid":1,"ts":10.000,"dur":50.000,"args":{"dur_ns":50000,"half_open_ns":1000}}"#;
        let doc = Json::parse(&format!(
            r#"{{"otherData":{{"droppedEvents":0}},"traceEvents":[
              {open},
              {{"name":"service","ph":"X","pid":2,"tid":1,"ts":30.000,"dur":5.000,"args":{{"kind":"demand","dur_ns":5000}}}}
            ]}}"#,
        ))
        .unwrap();
        let err = validate_trace(&doc).expect_err("open-breaker demand rejected");
        assert!(err.contains("open-breaker window"), "{err}");

        let doc = Json::parse(&format!(
            r#"{{"otherData":{{"droppedEvents":0}},"traceEvents":[
              {open},
              {{"name":"service","ph":"X","pid":2,"tid":1,"ts":30.000,"dur":5.000,"args":{{"kind":"demand","dur_ns":5000,"queue_ns":25000}}}},
              {{"name":"service","ph":"X","pid":2,"tid":1,"ts":40.000,"dur":5.000,"args":{{"kind":"prefetch","dur_ns":5000}}}}
            ]}}"#,
        ))
        .unwrap();
        validate_trace(&doc).expect("queued drain and prefetch pass");

        // Other devices are unaffected by disk 1's window.
        let doc = Json::parse(&format!(
            r#"{{"otherData":{{"droppedEvents":0}},"traceEvents":[
              {open},
              {{"name":"service","ph":"X","pid":2,"tid":2,"ts":30.000,"dur":5.000,"args":{{"kind":"demand","dur_ns":5000}}}}
            ]}}"#,
        ))
        .unwrap();
        validate_trace(&doc).expect("other device passes");

        // A submission the emitter marked as an audited last resort
        // (every replica avoided — patient waiting) is exempt; the mark
        // must match device, block, and exact submission time.
        let doc = Json::parse(&format!(
            r#"{{"otherData":{{"droppedEvents":0}},"traceEvents":[
              {open},
              {{"name":"breaker-bypass","ph":"i","pid":2,"tid":1,"ts":30.000,"s":"t","args":{{"block":7,"code":1}}}},
              {{"name":"service","ph":"X","pid":2,"tid":1,"ts":30.000,"dur":5.000,"args":{{"block":7,"kind":"demand","dur_ns":5000}}}}
            ]}}"#,
        ))
        .unwrap();
        validate_trace(&doc).expect("marked bypass passes");

        // The mark is block-specific: a different block stays rejected.
        let doc = Json::parse(&format!(
            r#"{{"otherData":{{"droppedEvents":0}},"traceEvents":[
              {open},
              {{"name":"breaker-bypass","ph":"i","pid":2,"tid":1,"ts":30.000,"s":"t","args":{{"block":8,"code":1}}}},
              {{"name":"service","ph":"X","pid":2,"tid":1,"ts":30.000,"dur":5.000,"args":{{"block":7,"kind":"demand","dur_ns":5000}}}}
            ]}}"#,
        ))
        .unwrap();
        let err = validate_trace(&doc).expect_err("wrong-block mark still rejected");
        assert!(err.contains("open-breaker window"), "{err}");
    }

    #[test]
    fn tampered_attribution_is_caught() {
        let text = observed_trace().replace("\"lock_wait_ns\":0", "\"lock_wait_ns\":12345");
        let doc = Json::parse(&text).unwrap();
        let err = validate_trace(&doc).expect_err("tampered sums rejected");
        assert!(err.contains("attribution components sum"), "{err}");
    }

    #[test]
    fn overlap_and_garbage_are_caught() {
        // Two spans on one track, the second starting inside the first.
        let doc = Json::parse(
            r#"{"otherData":{"droppedEvents":0},"traceEvents":[
              {"name":"service","ph":"X","pid":2,"tid":0,"ts":0.000,"dur":10.000,"args":{}},
              {"name":"service","ph":"X","pid":2,"tid":0,"ts":5.000,"dur":10.000,"args":{}}
            ]}"#,
        )
        .unwrap();
        let err = validate_trace(&doc).expect_err("overlap rejected");
        assert!(err.contains("overlapping"), "{err}");

        let doc = Json::parse(r#"{"traceEvents":[{"name":"x","ph":"Z","pid":1}]}"#).unwrap();
        let err = validate_trace(&doc).expect_err("garbage rejected");
        assert!(err.contains("droppedEvents"), "{err}");
        assert!(err.contains("unknown ph"), "{err}");
    }
}
