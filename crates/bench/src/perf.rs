//! The `rapid-transit perf` harness: a fixed grid slice measured for host
//! throughput, emitted as `BENCH_core.json`.
//!
//! Every optimization PR reruns this slice on the same machine and appends
//! its numbers next to the preserved baseline entry, giving the repository
//! a perf trajectory. Two measurements are taken:
//!
//! * **events/sec** — the slice's six experiments run one at a time through
//!   the instrumented engine; aggregate events divided by aggregate wall
//!   time. This isolates single-threaded event-loop speed.
//! * **runs/sec** — the slice repeated [`SWEEP_REPS`] times through
//!   [`rt_core::sweeps::sweep`] on all available worker threads. This
//!   exercises the sweep scheduler end to end.

use rt_core::experiment::{run_experiment_instrumented, RunPerf};
use rt_core::sweeps;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};

use crate::json::Json;

/// Patterns in the fixed slice: one global-whole-file (the paper's
/// flagship), one local-portion, one global-random — three distinct
/// read-path shapes.
pub const SLICE_PATTERNS: [AccessPattern; 3] = [
    AccessPattern::GlobalWholeFile,
    AccessPattern::LocalFixedPortions,
    AccessPattern::GlobalRandomPortions,
];

/// Times the slice is replicated for the parallel sweep measurement.
pub const SWEEP_REPS: usize = 3;

/// Times the slice is repeated for the sequential engine measurement
/// (smooths out scheduler noise on small machines).
pub const SEQ_REPS: usize = 3;

/// File size of the full slice, in blocks: the paper's 2000-block file
/// scaled ×8 so each run lasts long enough to time reliably.
pub const SLICE_FILE_BLOCKS: u32 = 16_000;

/// Report format version.
pub const SCHEMA: u64 = 1;

/// The fixed slice: three patterns × prefetch off/on. `quick` shrinks the
/// machine for smoke tests (CI) where wall time matters more than signal.
pub fn slice_configs(quick: bool) -> Vec<ExperimentConfig> {
    let mut configs = Vec::new();
    for &pattern in &SLICE_PATTERNS {
        for prefetch in [false, true] {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if quick {
                cfg.procs = 4;
                cfg.disks = 4;
                cfg.workload = WorkloadParams {
                    procs: 4,
                    file_blocks: 200,
                    total_reads: 200,
                    ..WorkloadParams::paper()
                };
            } else {
                cfg.workload.file_blocks = SLICE_FILE_BLOCKS;
                cfg.workload.total_reads = SLICE_FILE_BLOCKS;
            }
            cfg.prefetch = if prefetch {
                PrefetchConfig::paper()
            } else {
                PrefetchConfig::disabled()
            };
            configs.push(cfg);
        }
    }
    configs
}

/// One measured entry of the perf report.
#[derive(Clone, Debug)]
pub struct PerfEntry {
    /// Which build produced the numbers (e.g. `seed-baseline`, `optimized`).
    pub label: String,
    /// True when the quick (smoke-test) slice was measured.
    pub quick: bool,
    /// Events dispatched across the sequential instrumented runs.
    pub events: u64,
    /// Wall time of those runs, in milliseconds.
    pub wall_ms: f64,
    /// `events / wall` — the headline single-thread number.
    pub events_per_sec: f64,
    /// Largest pending-event count seen in any run.
    pub peak_live_events: u64,
    /// Experiments completed by the parallel sweep measurement.
    pub sweep_runs: u64,
    /// Wall time of the sweep measurement, in milliseconds.
    pub sweep_wall_ms: f64,
    /// `sweep_runs / sweep_wall` — sweep-scheduler throughput.
    pub runs_per_sec: f64,
    /// Worker threads the sweep used.
    pub threads: u64,
}

/// Run the fixed slice and measure it.
pub fn measure(label: &str, quick: bool) -> PerfEntry {
    let configs = slice_configs(quick);

    // Single-thread engine throughput: each config SEQ_REPS times,
    // instrumented.
    let mut events = 0u64;
    let mut wall = std::time::Duration::ZERO;
    let mut peak = 0usize;
    for _ in 0..SEQ_REPS {
        for cfg in &configs {
            let (_, perf): (_, RunPerf) = run_experiment_instrumented(cfg);
            events += perf.events;
            wall += perf.wall;
            peak = peak.max(perf.peak_pending);
        }
    }
    let wall_secs = wall.as_secs_f64().max(1e-9);

    // Sweep throughput: the slice replicated through the sweep scheduler.
    let threads = sweeps::default_threads();
    let mut jobs = Vec::new();
    for _ in 0..SWEEP_REPS {
        jobs.extend(configs.iter().cloned());
    }
    let tags: Vec<usize> = (0..jobs.len()).collect();
    let sweep_runs = jobs.len() as u64;
    let sweep_start = std::time::Instant::now();
    let results = sweeps::sweep(jobs, tags, threads);
    let sweep_wall = sweep_start.elapsed();
    assert_eq!(results.len(), sweep_runs as usize);
    let sweep_secs = sweep_wall.as_secs_f64().max(1e-9);

    PerfEntry {
        label: label.to_string(),
        quick,
        events,
        wall_ms: wall_secs * 1e3,
        events_per_sec: events as f64 / wall_secs,
        peak_live_events: peak as u64,
        sweep_runs,
        sweep_wall_ms: sweep_secs * 1e3,
        runs_per_sec: sweep_runs as f64 / sweep_secs,
        threads: threads as u64,
    }
}

impl PerfEntry {
    /// This entry as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("quick".into(), Json::Bool(self.quick)),
            ("events".into(), Json::Num(self.events as f64)),
            ("wall_ms".into(), Json::Num(self.wall_ms)),
            ("events_per_sec".into(), Json::Num(self.events_per_sec)),
            (
                "peak_live_events".into(),
                Json::Num(self.peak_live_events as f64),
            ),
            ("sweep_runs".into(), Json::Num(self.sweep_runs as f64)),
            ("sweep_wall_ms".into(), Json::Num(self.sweep_wall_ms)),
            ("runs_per_sec".into(), Json::Num(self.runs_per_sec)),
            ("threads".into(), Json::Num(self.threads as f64)),
        ])
    }
}

/// Build the report document: keep every entry of `existing` whose label
/// differs from `entry`'s, then append `entry`. Rerunning `perf` therefore
/// refreshes its own entry while preserving the baseline history.
pub fn merge_report(existing: Option<&Json>, entry: &PerfEntry) -> Json {
    let mut entries: Vec<Json> = existing
        .and_then(|doc| doc.get("entries"))
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    entries.retain(|e| e.get("label").and_then(Json::as_str) != Some(entry.label.as_str()));
    entries.push(entry.to_json());
    Json::Obj(vec![
        ("schema".into(), Json::Num(SCHEMA as f64)),
        (
            "slice".into(),
            Json::Obj(vec![
                (
                    "patterns".into(),
                    Json::Arr(
                        SLICE_PATTERNS
                            .iter()
                            .map(|p| Json::Str(p.abbrev().to_string()))
                            .collect(),
                    ),
                ),
                ("sync".into(), Json::Str("per-proc:10".into())),
                (
                    "prefetch".into(),
                    Json::Arr(vec![Json::Bool(false), Json::Bool(true)]),
                ),
                ("sweep_reps".into(), Json::Num(SWEEP_REPS as f64)),
            ]),
        ),
        ("entries".into(), Json::Arr(entries)),
    ])
}

/// Check that `doc` is a structurally valid perf report with at least one
/// entry carrying the required numeric fields.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_f64) != Some(SCHEMA as f64) {
        return Err(format!("missing or unexpected schema (want {SCHEMA})"));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing entries array")?;
    if entries.is_empty() {
        return Err("entries array is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        e.get("label")
            .and_then(Json::as_str)
            .ok_or(format!("entry {i}: missing label"))?;
        for field in [
            "events",
            "wall_ms",
            "events_per_sec",
            "peak_live_events",
            "sweep_runs",
            "sweep_wall_ms",
            "runs_per_sec",
        ] {
            let v = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("entry {i}: missing {field}"))?;
            if v < 0.0 {
                return Err(format!("entry {i}: negative {field}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_three_patterns_times_two() {
        let configs = slice_configs(false);
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().any(|c| c.prefetch.enabled));
        assert!(configs.iter().any(|c| !c.prefetch.enabled));
    }

    #[test]
    fn quick_slice_is_small() {
        for cfg in slice_configs(true) {
            assert_eq!(cfg.procs, 4);
            assert_eq!(cfg.workload.total_reads, 200);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn measure_quick_produces_valid_report() {
        let entry = measure("unit-test", true);
        assert!(entry.events > 0);
        assert!(entry.events_per_sec > 0.0);
        assert!(entry.runs_per_sec > 0.0);
        assert_eq!(entry.sweep_runs, (6 * SWEEP_REPS) as u64);
        let doc = merge_report(None, &entry);
        validate_report(&doc).expect("fresh report validates");
        let reparsed = Json::parse(&doc.pretty()).expect("report parses");
        validate_report(&reparsed).expect("round-tripped report validates");
    }

    #[test]
    fn merge_replaces_same_label_keeps_others() {
        let a = measure("alpha", true);
        let doc = merge_report(None, &a);
        let mut b = a.clone();
        b.label = "beta".into();
        let doc = merge_report(Some(&doc), &b);
        let mut b2 = b.clone();
        b2.events += 1;
        let doc = merge_report(Some(&doc), &b2);
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        let labels: Vec<_> = entries
            .iter()
            .map(|e| e.get("label").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(labels, vec!["alpha", "beta"]);
        let beta_events = entries[1].get("events").unwrap().as_f64().unwrap();
        assert_eq!(beta_events, b2.events as f64);
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate_report(&Json::Obj(vec![])).is_err());
        let no_entries = Json::Obj(vec![
            ("schema".into(), Json::Num(SCHEMA as f64)),
            ("entries".into(), Json::Arr(vec![])),
        ]);
        assert!(validate_report(&no_entries).is_err());
    }
}
