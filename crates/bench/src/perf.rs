//! The `rapid-transit perf` harness: a fixed grid slice measured for host
//! throughput, emitted as `BENCH_core.json`.
//!
//! Every optimization PR reruns this slice on the same machine and appends
//! its numbers next to the preserved baseline entry, giving the repository
//! a perf trajectory. Four measurements are taken:
//!
//! * **events/sec** — the slice's six experiments run one at a time through
//!   the instrumented engine; aggregate events divided by aggregate wall
//!   time. This isolates single-threaded event-loop speed.
//! * **runs/sec** — the slice repeated [`SWEEP_REPS`] times through
//!   [`rt_core::sweeps::sweep`] on the configured worker threads. This
//!   exercises the sweep scheduler end to end.
//! * **fork runs/sec** — the same replicated slice, but each config's
//!   replicas share one warmed-up prefix via
//!   [`rt_core::experiment::run_replicas_forked`] (world snapshot/clone).
//!   Same completed runs, less recomputation.
//! * **scaling** — the conservative parallel engine ([`rt_sim::shard`])
//!   driving a [`FarmConfig`] disk farm at each requested thread count.
//!   The farm is bit-exact across thread counts by construction; the
//!   report validator rejects any entry whose scaling points disagree on
//!   event counts. Wall-clock speedup is a property of the *host* (a
//!   single-core machine reports ~1.0 at every width).

use rt_core::experiment::{run_experiment_instrumented, run_replicas_forked, RunPerf};
use rt_core::sweeps;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_disk::FarmConfig;
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};

use crate::json::{Check, Json};

/// Patterns in the fixed slice: one global-whole-file (the paper's
/// flagship), one local-portion, one global-random — three distinct
/// read-path shapes.
pub const SLICE_PATTERNS: [AccessPattern; 3] = [
    AccessPattern::GlobalWholeFile,
    AccessPattern::LocalFixedPortions,
    AccessPattern::GlobalRandomPortions,
];

/// Times the slice is replicated for the parallel sweep measurement.
pub const SWEEP_REPS: usize = 3;

/// Times the slice is repeated for the sequential engine measurement
/// (smooths out scheduler noise on small machines).
pub const SEQ_REPS: usize = 3;

/// File size of the full slice, in blocks: the paper's 2000-block file
/// scaled ×8 so each run lasts long enough to time reliably.
pub const SLICE_FILE_BLOCKS: u32 = 16_000;

/// Fraction of a run's reads completed before replicas fork off the
/// shared prefix in the fork measurement.
pub const FORK_WARM_FRACTION: f64 = 0.5;

/// Report format version. Version 2 added the per-entry `scaling` curve
/// (parallel-engine thread sweep) and the fork-sharing sweep numbers.
pub const SCHEMA: u64 = 2;

/// Thread counts measured when the caller does not ask for specific ones:
/// serial plus the sweep default (or 2 on a single-core host), so every
/// report carries at least a two-point scaling curve.
pub fn default_thread_points() -> Vec<usize> {
    let n = sweeps::default_threads();
    if n > 1 {
        vec![1, n]
    } else {
        vec![1, 2]
    }
}

/// The fixed slice: three patterns × prefetch off/on. `quick` shrinks the
/// machine for smoke tests (CI) where wall time matters more than signal.
pub fn slice_configs(quick: bool) -> Vec<ExperimentConfig> {
    let mut configs = Vec::new();
    for &pattern in &SLICE_PATTERNS {
        for prefetch in [false, true] {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            if quick {
                cfg.procs = 4;
                cfg.disks = 4;
                cfg.workload = WorkloadParams {
                    procs: 4,
                    file_blocks: 200,
                    total_reads: 200,
                    ..WorkloadParams::paper()
                };
            } else {
                cfg.workload.file_blocks = SLICE_FILE_BLOCKS;
                cfg.workload.total_reads = SLICE_FILE_BLOCKS;
            }
            cfg.prefetch = if prefetch {
                PrefetchConfig::paper()
            } else {
                PrefetchConfig::disabled()
            };
            configs.push(cfg);
        }
    }
    configs
}

/// Order-independent aggregate of per-run engine counters. Totals are
/// sums and the peak is a max, so partial aggregates built by workers that
/// finish in any order merge to the same numbers — the report never
/// depends on scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfAgg {
    /// Events dispatched, summed over runs.
    pub events: u64,
    /// Wall time inside the event loop, summed over runs.
    pub wall: std::time::Duration,
    /// Largest pending-event count seen in any run.
    pub peak_live_events: u64,
}

impl PerfAgg {
    /// Fold one instrumented run in.
    pub fn add_run(&mut self, p: &RunPerf) {
        self.events += p.events;
        self.wall += p.wall;
        self.peak_live_events = self.peak_live_events.max(p.peak_pending as u64);
    }

    /// Merge another partial aggregate in. Commutative and associative.
    pub fn merge(&mut self, other: &PerfAgg) {
        self.events += other.events;
        self.wall += other.wall;
        self.peak_live_events = self.peak_live_events.max(other.peak_live_events);
    }
}

/// One point of the parallel-engine scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Worker threads driving the sharded farm.
    pub threads: u64,
    /// Events the farm dispatched — identical at every width or the
    /// validator rejects the entry.
    pub events: u64,
    /// Wall time of the farm run, in milliseconds.
    pub wall_ms: f64,
    /// `events / wall`.
    pub events_per_sec: f64,
    /// `events_per_sec` relative to this entry's single-thread point.
    pub speedup: f64,
}

/// The farm the scaling curve drives: the paper's 20-device machine, or a
/// shrunken one for the quick slice.
pub fn scaling_farm(quick: bool) -> FarmConfig {
    if quick {
        FarmConfig {
            devices: 8,
            requests_per_device: 400,
            ..FarmConfig::default()
        }
    } else {
        FarmConfig::default()
    }
}

/// One measured entry of the perf report.
#[derive(Clone, Debug)]
pub struct PerfEntry {
    /// Which build produced the numbers (e.g. `seed-baseline`, `optimized`).
    pub label: String,
    /// True when the quick (smoke-test) slice was measured.
    pub quick: bool,
    /// Events dispatched across the sequential instrumented runs.
    pub events: u64,
    /// Wall time of those runs, in milliseconds.
    pub wall_ms: f64,
    /// `events / wall` — the headline single-thread number.
    pub events_per_sec: f64,
    /// Largest pending-event count seen in any run.
    pub peak_live_events: u64,
    /// Experiments completed by the parallel sweep measurement.
    pub sweep_runs: u64,
    /// Wall time of the sweep measurement, in milliseconds.
    pub sweep_wall_ms: f64,
    /// `sweep_runs / sweep_wall` — sweep-scheduler throughput.
    pub runs_per_sec: f64,
    /// Worker threads the sweep used.
    pub threads: u64,
    /// Experiments completed by the fork-sharing sweep measurement
    /// (same job multiset as `sweep_runs`).
    pub fork_runs: u64,
    /// Wall time of the fork-sharing measurement, in milliseconds.
    pub fork_wall_ms: f64,
    /// `fork_runs / fork_wall` — throughput when identical replicas share
    /// a warmed-up prefix via world snapshot/clone.
    pub fork_runs_per_sec: f64,
    /// Parallel-engine scaling curve over the requested thread counts.
    pub scaling: Vec<ScalePoint>,
}

/// Run the fixed slice and measure it at each of `thread_points` (for the
/// scaling curve; the sweep measurements use [`sweeps::default_threads`]).
pub fn measure(label: &str, quick: bool, thread_points: &[usize]) -> PerfEntry {
    assert!(!thread_points.is_empty(), "need at least one thread count");
    let configs = slice_configs(quick);

    // Single-thread engine throughput: each config SEQ_REPS times,
    // instrumented.
    let mut agg = PerfAgg::default();
    for _ in 0..SEQ_REPS {
        for cfg in &configs {
            let (_, perf): (_, RunPerf) = run_experiment_instrumented(cfg);
            agg.add_run(&perf);
        }
    }
    let wall_secs = agg.wall.as_secs_f64().max(1e-9);

    // Sweep throughput: the slice replicated through the sweep scheduler.
    let threads = sweeps::default_threads();
    let mut jobs = Vec::new();
    for _ in 0..SWEEP_REPS {
        jobs.extend(configs.iter().cloned());
    }
    let tags: Vec<usize> = (0..jobs.len()).collect();
    let sweep_runs = jobs.len() as u64;
    let sweep_start = std::time::Instant::now();
    let results = sweeps::sweep(jobs, tags, threads);
    let sweep_wall = sweep_start.elapsed();
    assert_eq!(results.len(), sweep_runs as usize);
    let sweep_secs = sweep_wall.as_secs_f64().max(1e-9);

    // Fork-sharing throughput: the same replicated slice, but each
    // config's replicas fork from one half-warmed run instead of starting
    // cold. Configs are distributed over the same worker threads.
    let fork_start = std::time::Instant::now();
    let forked = sweeps::parallel_map(&configs, threads, |cfg| {
        run_replicas_forked(cfg, SWEEP_REPS, FORK_WARM_FRACTION).len()
    });
    let fork_wall = fork_start.elapsed();
    let fork_runs: u64 = forked.iter().map(|&n| n as u64).sum();
    assert_eq!(fork_runs, sweep_runs, "fork path must complete every run");
    let fork_secs = fork_wall.as_secs_f64().max(1e-9);

    // Parallel-engine scaling: the sharded disk farm at each width. The
    // event counts must agree bit-for-bit across widths (the engine's
    // determinism guarantee); wall-clock speedup depends on the host.
    let farm = scaling_farm(quick);
    let mut scaling = Vec::with_capacity(thread_points.len());
    for &t in thread_points {
        let start = std::time::Instant::now();
        let outcome = farm.run(t);
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        scaling.push(ScalePoint {
            threads: t as u64,
            events: outcome.run.events,
            wall_ms: wall * 1e3,
            events_per_sec: outcome.run.events as f64 / wall,
            speedup: 0.0,
        });
    }
    for p in &scaling {
        assert_eq!(
            p.events, scaling[0].events,
            "parallel farm diverged from serial at {} threads",
            p.threads
        );
    }
    let base_eps = scaling
        .iter()
        .find(|p| p.threads == 1)
        .map_or(scaling[0].events_per_sec, |p| p.events_per_sec);
    for p in &mut scaling {
        p.speedup = p.events_per_sec / base_eps.max(1e-9);
    }

    PerfEntry {
        label: label.to_string(),
        quick,
        events: agg.events,
        wall_ms: wall_secs * 1e3,
        events_per_sec: agg.events as f64 / wall_secs,
        peak_live_events: agg.peak_live_events,
        sweep_runs,
        sweep_wall_ms: sweep_secs * 1e3,
        runs_per_sec: sweep_runs as f64 / sweep_secs,
        threads: threads as u64,
        fork_runs,
        fork_wall_ms: fork_secs * 1e3,
        fork_runs_per_sec: fork_runs as f64 / fork_secs,
        scaling,
    }
}

impl PerfEntry {
    /// This entry as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("quick".into(), Json::Bool(self.quick)),
            ("events".into(), Json::Num(self.events as f64)),
            ("wall_ms".into(), Json::Num(self.wall_ms)),
            ("events_per_sec".into(), Json::Num(self.events_per_sec)),
            (
                "peak_live_events".into(),
                Json::Num(self.peak_live_events as f64),
            ),
            ("sweep_runs".into(), Json::Num(self.sweep_runs as f64)),
            ("sweep_wall_ms".into(), Json::Num(self.sweep_wall_ms)),
            ("runs_per_sec".into(), Json::Num(self.runs_per_sec)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("fork_runs".into(), Json::Num(self.fork_runs as f64)),
            ("fork_wall_ms".into(), Json::Num(self.fork_wall_ms)),
            (
                "fork_runs_per_sec".into(),
                Json::Num(self.fork_runs_per_sec),
            ),
            (
                "scaling".into(),
                Json::Arr(
                    self.scaling
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("threads".into(), Json::Num(p.threads as f64)),
                                ("events".into(), Json::Num(p.events as f64)),
                                ("wall_ms".into(), Json::Num(p.wall_ms)),
                                ("events_per_sec".into(), Json::Num(p.events_per_sec)),
                                ("speedup".into(), Json::Num(p.speedup)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Build the report document: keep every entry of `existing` whose label
/// differs from `entry`'s, then append `entry`. Rerunning `perf` therefore
/// refreshes its own entry while preserving the baseline history.
pub fn merge_report(existing: Option<&Json>, entry: &PerfEntry) -> Json {
    let mut entries: Vec<Json> = existing
        .and_then(|doc| doc.get("entries"))
        .and_then(Json::as_array)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    entries.retain(|e| e.get("label").and_then(Json::as_str) != Some(entry.label.as_str()));
    entries.push(entry.to_json());
    Json::Obj(vec![
        ("schema".into(), Json::Num(SCHEMA as f64)),
        (
            "slice".into(),
            Json::Obj(vec![
                (
                    "patterns".into(),
                    Json::Arr(
                        SLICE_PATTERNS
                            .iter()
                            .map(|p| Json::Str(p.abbrev().to_string()))
                            .collect(),
                    ),
                ),
                ("sync".into(), Json::Str("per-proc:10".into())),
                (
                    "prefetch".into(),
                    Json::Arr(vec![Json::Bool(false), Json::Bool(true)]),
                ),
                ("sweep_reps".into(), Json::Num(SWEEP_REPS as f64)),
            ]),
        ),
        ("entries".into(), Json::Arr(entries)),
    ])
}

/// Check that `doc` is a structurally valid perf report with at least one
/// entry carrying the required numeric fields, and that every entry's
/// scaling curve is self-consistent: at least one point, positive thread
/// counts, and *identical event counts at every width* — a point that
/// dispatched a different number of events means the parallel engine
/// diverged from the serial one, which no report may record.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let mut c = Check::new();
    c.require_schema(doc, SCHEMA);
    for (i, e) in c.array(doc, "entries").iter().enumerate() {
        c.string(e, "label", &format!("entry {i}"));
        c.nums(
            e,
            &[
                "events",
                "wall_ms",
                "events_per_sec",
                "peak_live_events",
                "sweep_runs",
                "sweep_wall_ms",
                "runs_per_sec",
            ],
            &format!("entry {i}"),
        );
        // Fork-sharing numbers ride along when measured (older entries
        // predate the measurement); present ones must be sane.
        for field in ["fork_runs", "fork_wall_ms", "fork_runs_per_sec"] {
            match e.get(field).map(Json::as_f64) {
                Some(None) => c.fail(format!("entry {i}: non-numeric {field}")),
                Some(Some(v)) if v < 0.0 => c.fail(format!("entry {i}: negative {field}")),
                _ => {}
            }
        }
        let scaling = match e.get("scaling").and_then(Json::as_array) {
            Some([]) => {
                c.fail(format!("entry {i}: empty scaling curve"));
                continue;
            }
            Some(points) => points,
            None => {
                c.fail(format!("entry {i}: missing scaling curve"));
                continue;
            }
        };
        let mut first_events = None;
        for (j, p) in scaling.iter().enumerate() {
            c.nums(
                p,
                &["threads", "events", "wall_ms", "events_per_sec", "speedup"],
                &format!("entry {i}: scaling point {j}"),
            );
            let threads = p.get("threads").and_then(Json::as_f64).unwrap_or(0.0);
            if threads < 1.0 {
                c.fail(format!("entry {i}: scaling point {j}: threads < 1"));
            }
            let events = p.get("events").and_then(Json::as_f64).unwrap_or(0.0);
            match first_events {
                None => first_events = Some(events),
                Some(base) if events != base => {
                    c.fail(format!(
                        "entry {i}: scaling point {j} ({threads} threads) dispatched \
                         {events} events but the first point dispatched {base}: \
                         parallel run diverged from serial"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_three_patterns_times_two() {
        let configs = slice_configs(false);
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().any(|c| c.prefetch.enabled));
        assert!(configs.iter().any(|c| !c.prefetch.enabled));
    }

    #[test]
    fn quick_slice_is_small() {
        for cfg in slice_configs(true) {
            assert_eq!(cfg.procs, 4);
            assert_eq!(cfg.workload.total_reads, 200);
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn measure_quick_produces_valid_report() {
        let entry = measure("unit-test", true, &[1, 2]);
        assert!(entry.events > 0);
        assert!(entry.events_per_sec > 0.0);
        assert!(entry.runs_per_sec > 0.0);
        assert_eq!(entry.sweep_runs, (6 * SWEEP_REPS) as u64);
        assert_eq!(entry.fork_runs, entry.sweep_runs);
        assert!(entry.fork_runs_per_sec > 0.0);
        assert_eq!(entry.scaling.len(), 2);
        assert_eq!(entry.scaling[0].threads, 1);
        assert_eq!(entry.scaling[1].threads, 2);
        assert_eq!(entry.scaling[0].events, entry.scaling[1].events);
        assert!((entry.scaling[0].speedup - 1.0).abs() < 1e-9);
        let doc = merge_report(None, &entry);
        validate_report(&doc).expect("fresh report validates");
        let reparsed = Json::parse(&doc.pretty()).expect("report parses");
        validate_report(&reparsed).expect("round-tripped report validates");
    }

    #[test]
    fn aggregation_is_merge_order_independent() {
        let runs: Vec<RunPerf> = (0..7)
            .map(|i| RunPerf {
                events: 1000 + i * 37,
                wall: std::time::Duration::from_micros(500 + i * 13),
                peak_pending: (40 + (i * 29) % 50) as usize,
            })
            .collect();
        // Partial aggregates merged in several different orders.
        let agg_in = |order: &[usize]| {
            let parts: Vec<PerfAgg> = runs
                .iter()
                .map(|r| {
                    let mut a = PerfAgg::default();
                    a.add_run(r);
                    a
                })
                .collect();
            let mut total = PerfAgg::default();
            for &i in order {
                total.merge(&parts[i]);
            }
            total
        };
        let forward: Vec<usize> = (0..7).collect();
        let reverse: Vec<usize> = (0..7).rev().collect();
        let rotated: Vec<usize> = (0..7).map(|i| (i + 3) % 7).collect();
        let base = agg_in(&forward);
        assert_eq!(base, agg_in(&reverse));
        assert_eq!(base, agg_in(&rotated));
        assert_eq!(base.events, runs.iter().map(|r| r.events).sum::<u64>());
        assert_eq!(
            base.peak_live_events,
            runs.iter().map(|r| r.peak_pending as u64).max().unwrap()
        );
    }

    #[test]
    fn validate_rejects_scaling_divergence() {
        let mut entry = measure("diverge", true, &[1, 2]);
        let doc = merge_report(None, &entry);
        validate_report(&doc).expect("consistent curve validates");
        // Tamper with one point's event count: the validator must see a
        // parallel/serial divergence.
        entry.scaling[1].events += 1;
        let doc = merge_report(None, &entry);
        let err = validate_report(&doc).expect_err("divergent curve rejected");
        assert!(err.contains("diverged"), "{err}");
        // And an entry with no curve at all is rejected.
        entry.scaling.clear();
        let doc = merge_report(None, &entry);
        let err = validate_report(&doc).expect_err("empty curve rejected");
        assert!(err.contains("scaling"), "{err}");
    }

    #[test]
    fn merge_replaces_same_label_keeps_others() {
        let a = measure("alpha", true, &[1]);
        let doc = merge_report(None, &a);
        let mut b = a.clone();
        b.label = "beta".into();
        let doc = merge_report(Some(&doc), &b);
        let mut b2 = b.clone();
        b2.events += 1;
        let doc = merge_report(Some(&doc), &b2);
        let entries = doc.get("entries").unwrap().as_array().unwrap();
        let labels: Vec<_> = entries
            .iter()
            .map(|e| e.get("label").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(labels, vec!["alpha", "beta"]);
        let beta_events = entries[1].get("events").unwrap().as_f64().unwrap();
        assert_eq!(beta_events, b2.events as f64);
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate_report(&Json::Obj(vec![])).is_err());
        let no_entries = Json::Obj(vec![
            ("schema".into(), Json::Num(SCHEMA as f64)),
            ("entries".into(), Json::Arr(vec![])),
        ]);
        assert!(validate_report(&no_entries).is_err());
    }
}
