//! # rt-bench — the figure-reproduction harness
//!
//! Shared plumbing for the `benches/figNN_*` targets, each of which
//! regenerates one figure of Kotz & Ellis (1989). The figures fall into
//! three families:
//!
//! * **Grid scatter plots** (Figs. 3–11): every point is one configuration
//!   of the §IV-D grid run twice (without and with prefetching).
//!   [`grid_pairs`] produces those pairs once, in parallel.
//! * **The computation sweep** (Fig. 12): the `gw` pattern with the mean
//!   per-block compute time varied — [`compute_sweep`].
//! * **The minimum-prefetch-lead sweeps** (Figs. 13–16): the four patterns
//!   of §V-E under leads 0–90 — [`lead_sweep`].
//!
//! Every harness prints the series the paper plots plus the summary
//! statistics quoted in its text, so `cargo bench` output can be compared
//! against the paper claim by claim (see `EXPERIMENTS.md`).

use rt_core::experiment::{paper_grid, run_pairs_parallel};
use rt_core::sweeps;
use rt_core::{ExperimentConfig, RunMetrics, RunPair};
use rt_patterns::{AccessPattern, SyncStyle};

pub mod crashes;
pub mod faults;
pub mod integrity;
pub mod json;
pub mod perf;
pub mod soak;
pub mod tail;
pub mod trace_check;

/// Events shown in a flight dump's human-readable tail.
pub const FLIGHT_TAIL_EVENTS: usize = 40;

/// A flight-recorder postmortem: the Perfetto JSON document plus a
/// human-readable tail of the last events before a violation. The soak
/// and integrity harnesses produce one whenever an invariant (including
/// the corrupt-delivery tripwire) fires mid-run.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Chrome Trace Event JSON (open in ui.perfetto.dev).
    pub perfetto: String,
    /// Human-readable tail of the recording, newest last.
    pub tail: String,
}

impl FlightDump {
    /// Detach `world`'s recording (if it was observed) as a dump.
    pub fn take(world: &mut rt_core::World) -> Option<FlightDump> {
        world.take_obs().map(|d| FlightDump {
            perfetto: d.to_perfetto(),
            tail: d.tail(FLIGHT_TAIL_EVENTS),
        })
    }
}

pub use rt_core::sweeps::{ComputePoint, LeadPoint};

/// Threads used by the sweep runners.
pub fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Run the paper's full §IV-D grid as base/prefetch pairs.
pub fn grid_pairs() -> Vec<RunPair> {
    run_pairs_parallel(&paper_grid(), threads())
}

/// The §V-C computation sweep: `gw`, synchronizing every 10 blocks per
/// processor, compute mean swept from I/O-bound to compute-bound.
pub fn compute_sweep() -> Vec<ComputePoint> {
    let base = ExperimentConfig::paper_default(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(10),
    );
    sweeps::compute_sweep_over(
        &base,
        &[0, 5, 10, 20, 30, 45, 60, 80, 100, 150, 200],
        threads(),
    )
}

/// The §V-E patterns: the lead restriction only matters where prefetching
/// past the frontier is permitted, so the paper studies the fixed-portion
/// and whole-file patterns.
pub const LEAD_PATTERNS: [AccessPattern; 4] = [
    AccessPattern::LocalFixedPortions,
    AccessPattern::GlobalFixedPortions,
    AccessPattern::LocalWholeFile,
    AccessPattern::GlobalWholeFile,
];

/// The paper's lead values (0 through 90 blocks).
pub const LEADS: [u32; 7] = [0, 15, 30, 45, 60, 75, 90];

/// Run the §V-E lead sweep for all four patterns. Local patterns read the
/// whole file per process (40 000 reads); divide their total time by 20
/// when comparing with the global patterns, as the paper does.
pub fn lead_sweep() -> Vec<LeadPoint> {
    sweeps::lead_sweep_over(&LEAD_PATTERNS, &LEADS, threads())
}

/// The no-prefetch reference runs for the lead-sweep patterns (for the
/// Fig. 16 comparison), keyed in [`LEAD_PATTERNS`] order.
pub fn lead_baselines() -> Vec<RunMetrics> {
    sweeps::lead_baselines_for(&LEAD_PATTERNS)
}

/// Normalization for comparing local lead-sweep runs (40 000 reads) with
/// global ones (2000 reads): the paper divides local total times by 20.
pub fn lead_time_scale(pattern: AccessPattern) -> f64 {
    if pattern.is_local() {
        20.0
    } else {
        1.0
    }
}

/// Standard header printed by every figure harness.
pub fn figure_header(fig: &str, caption: &str) {
    println!("==================================================================");
    println!("{fig} — {caption}");
    println!("Kotz & Ellis, \"Prefetching in File Systems for MIMD");
    println!("Multiprocessors\" (1989); reproduced on the rt-core simulator.");
    println!("==================================================================\n");
}
