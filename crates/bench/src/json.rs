//! A minimal JSON value, writer, and parser.
//!
//! `BENCH_core.json` needs structured, machine-checkable output, and the
//! workspace builds offline with no serde. This module covers exactly what
//! the perf report needs: objects, arrays, strings, finite numbers, bools,
//! and null, with a strict parser good enough to validate round trips.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (written with up to 12 significant digits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse `text` as a single JSON value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON numbers must be finite");
    if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n:.6}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shorthand for a numeric object field.
pub fn num(key: &str, v: f64) -> (String, Json) {
    (key.to_string(), Json::Num(v))
}

/// An object made only of numeric fields, in order.
pub fn num_obj(fields: &[(&str, f64)]) -> Json {
    Json::Obj(fields.iter().map(|(k, v)| num(k, *v)).collect())
}

/// The standard sweep-report shell shared by the faults, soak, and
/// integrity harnesses: format version, smoke flag, scenario array.
pub fn sweep_report(schema: u64, smoke: bool, scenarios: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Num(schema as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("scenarios".into(), Json::Arr(scenarios)),
    ])
}

/// A validation-failure accumulator. Report validators record every
/// problem they find instead of stopping at the first, so one `--check`
/// run surfaces the complete damage; [`Check::finish`] joins the
/// failures into a single newline-separated error.
#[derive(Debug, Default)]
pub struct Check {
    errors: Vec<String>,
}

impl Check {
    /// An empty accumulator.
    pub fn new() -> Self {
        Check::default()
    }

    /// Record one failure.
    pub fn fail(&mut self, msg: impl Into<String>) {
        self.errors.push(msg.into());
    }

    /// True while no failure has been recorded.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Require `doc` to carry the expected format version.
    pub fn require_schema(&mut self, doc: &Json, want: u64) {
        if doc.get("schema").and_then(Json::as_f64) != Some(want as f64) {
            self.fail(format!("missing or unexpected schema (want {want})"));
        }
    }

    /// The non-empty array at `key`; a missing or empty array is recorded
    /// and an empty slice returned so validation can continue.
    pub fn array<'a>(&mut self, doc: &'a Json, key: &str) -> &'a [Json] {
        match doc.get(key).and_then(Json::as_array) {
            Some([]) => {
                self.fail(format!("{key} array is empty"));
                &[]
            }
            Some(items) => items,
            None => {
                self.fail(format!("missing {key} array"));
                &[]
            }
        }
    }

    /// The string at `field`, recording a failure when absent.
    pub fn string<'a>(&mut self, obj: &'a Json, field: &str, ctx: &str) -> Option<&'a str> {
        let s = obj.get(field).and_then(Json::as_str);
        if s.is_none() {
            self.fail(format!("{ctx}: missing {field}"));
        }
        s
    }

    /// The non-negative number at `field`; missing and negative values
    /// are both recorded.
    pub fn num(&mut self, obj: &Json, field: &str, ctx: &str) -> Option<f64> {
        match obj.get(field).and_then(Json::as_f64) {
            Some(v) => {
                if v < 0.0 {
                    self.fail(format!("{ctx}: negative {field}"));
                }
                Some(v)
            }
            None => {
                self.fail(format!("{ctx}: missing {field}"));
                None
            }
        }
    }

    /// [`Check::num`] over a field list.
    pub fn nums(&mut self, obj: &Json, fields: &[&str], ctx: &str) {
        for f in fields {
            self.num(obj, f, ctx);
        }
    }

    /// `Ok(())` when clean, otherwise every failure newline-joined.
    pub fn finish(self) -> Result<(), String> {
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(self.errors.join("\n"))
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl ParseError {
    fn at(at: usize, message: &'static str) -> Self {
        ParseError { at, message }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(ParseError::at(*pos, "unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ParseError::at(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or(ParseError::at(*pos, "bad unicode escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "bad unicode escape"))?;
                        *pos += 4;
                        // Surrogates are not produced by our writer; map
                        // them to the replacement character on read.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(ParseError::at(*pos - 1, "unknown escape")),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the whole code point through.
                let start = *pos - 1;
                let len = utf8_len(b).ok_or(ParseError::at(start, "invalid UTF-8"))?;
                *pos = start + len;
                let s = bytes
                    .get(start..start + len)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or(ParseError::at(start, "invalid UTF-8"))?;
                out.push_str(s);
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or(ParseError::at(start, "invalid number"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(ParseError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(ParseError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let value = Json::Obj(vec![
            ("label".into(), Json::Str("seed-baseline".into())),
            ("events_per_sec".into(), Json::Num(1234567.89)),
            ("runs".into(), Json::Num(6.0)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "entries".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
        ]);
        let text = value.pretty();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, value);
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": {"b": [1, "x"]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\n\"quoted\"\tand \\ back".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn integers_write_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty().trim(), "42");
        assert!(Json::Num(0.5).pretty().trim().starts_with("0.5"));
    }

    #[test]
    fn check_accumulates_every_failure() {
        let doc = Json::parse(r#"{"schema":9,"scenarios":[{"a":-1}]}"#).unwrap();
        let mut c = Check::new();
        c.require_schema(&doc, 1);
        let items = c.array(&doc, "scenarios");
        assert_eq!(items.len(), 1);
        c.num(&items[0], "a", "scenario x");
        c.num(&items[0], "b", "scenario x");
        c.string(&items[0], "name", "scenario x");
        assert!(!c.ok());
        let err = c.finish().unwrap_err();
        assert!(err.contains("schema"));
        assert!(err.contains("negative a"));
        assert!(err.contains("missing b"));
        assert!(err.contains("missing name"));
        assert_eq!(err.lines().count(), 4, "all four failures reported: {err}");
    }

    #[test]
    fn check_array_and_shell_helpers() {
        let doc = sweep_report(3, true, vec![num_obj(&[("x", 1.0)])]);
        let mut c = Check::new();
        c.require_schema(&doc, 3);
        assert_eq!(c.array(&doc, "scenarios").len(), 1);
        c.finish().unwrap();

        let empty = Json::parse(r#"{"scenarios":[]}"#).unwrap();
        let mut c = Check::new();
        assert!(c.array(&empty, "scenarios").is_empty());
        assert!(c.array(&empty, "entries").is_empty());
        let err = c.finish().unwrap_err();
        assert!(err.contains("scenarios array is empty"));
        assert!(err.contains("missing entries array"));
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::Str("métrique — ± µs".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }
}
