//! Fig. 7 — Average disk response time (queue entry to I/O completion),
//! prefetching vs not. Paper claims: prefetching increases disk contention
//! — the same number of requests issued in less time fills the queues — so
//! most points lie *above* the y = x line, with sharp increases for runs
//! that already had high disk utilization.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::scatter_table;

fn main() {
    figure_header(
        "Figure 7",
        "average disk response time with prefetching (y) vs without (x)",
    );
    let pairs = grid_pairs();
    let table = scatter_table(
        &pairs,
        "disk resp ms",
        |p| p.base.mean_disk_response_ms(),
        |p| p.prefetch.mean_disk_response_ms(),
    );
    print!("{}", table.render());

    let worsened = pairs
        .iter()
        .filter(|p| p.prefetch.mean_disk_response_ms() > p.base.mean_disk_response_ms())
        .count();
    let same_ops = pairs
        .iter()
        .filter(|p| p.prefetch.disk_ops == p.base.disk_ops)
        .count();
    println!("\nSummary vs. paper text:");
    println!(
        "  runs where disk response worsened under prefetching: {}/{}  (paper: general trend)",
        worsened,
        pairs.len()
    );
    println!(
        "  runs with identical disk op counts (no wasted fetches): {}/{}  (paper: disks serve no more requests)",
        same_ops,
        pairs.len()
    );
}
