//! Fig. 14 — Cache miss ratio vs. minimum prefetch lead. Paper claims: the
//! miss ratio climbs drastically for the global patterns (toward ~0.8),
//! rises slowly for lfp, and — while lw's ratio looks flat — its misses
//! jump from 1 to over 1500 out of 2000 possible, which is devastating
//! because every block is read by every process.

use rt_bench::{figure_header, lead_sweep, LEADS, LEAD_PATTERNS};
use rt_core::report::Table;

fn main() {
    figure_header("Figure 14", "cache miss ratio vs minimum prefetch lead");
    let points = lead_sweep();
    let mut t = Table::new(&["lead", "lfp", "gfp", "lw", "gw"]);
    for lead in LEADS {
        let mut row = vec![lead.to_string()];
        for pattern in LEAD_PATTERNS {
            let m = points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .unwrap();
            row.push(format!("{:.3}", m.metrics.miss_ratio()));
        }
        t.row(&row);
    }
    print!("{}", t.render());

    println!("\nAbsolute misses (lead 0 -> 90):");
    for pattern in LEAD_PATTERNS {
        let at = |lead| {
            points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .unwrap()
                .metrics
                .misses
        };
        println!("  {}: {} -> {}", pattern.abbrev(), at(0), at(90));
    }
    println!(
        "\n(paper: global patterns approach a 0.8 miss ratio; lfp rises slowly;\n\
         lw's misses go from 1 to 1556 of 2000 unique blocks)"
    );
}
