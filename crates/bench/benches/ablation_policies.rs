//! Extension ablation — oracle vs. on-line predictors. The paper supplies
//! the reference string in advance (its optimistic upper bound) and leaves
//! on-the-fly prediction to future work; this ablation measures the gap.
//! Expected shape: OBL and the portion learner approach the oracle on
//! *locally* sequential patterns but collapse on *global* patterns, whose
//! sequentiality is invisible to any single process's history.

use rt_bench::figure_header;
use rt_core::experiment::run_experiment;
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PolicyKind, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle};

fn main() {
    figure_header(
        "Ablation (extension)",
        "oracle vs on-line predictors: hit ratio and total time",
    );
    let sync = SyncStyle::BlocksPerProc(10);
    let mut t = Table::new(&[
        "pattern",
        "oracle hit",
        "oracle tot ms",
        "obl hit",
        "obl tot ms",
        "learner hit",
        "learner tot ms",
    ]);
    for pattern in AccessPattern::ALL {
        let run = |policy: PolicyKind| {
            let mut cfg = ExperimentConfig::paper_default(pattern, sync);
            cfg.prefetch = match policy {
                PolicyKind::Oracle => PrefetchConfig::paper(),
                // Fallible predictors get the unused-prefetch eviction
                // relaxation, or their wrong guesses wedge the partition.
                other => PrefetchConfig::online(other),
            };
            run_experiment(&cfg)
        };
        let oracle = run(PolicyKind::Oracle);
        let obl = run(PolicyKind::Obl { depth: 3 });
        let learner = run(PolicyKind::PortionLearner { confidence: 2 });
        t.row(&[
            pattern.abbrev().to_string(),
            format!("{:.3}", oracle.hit_ratio),
            format!("{:.0}", oracle.total_time.as_millis_f64()),
            format!("{:.3}", obl.hit_ratio),
            format!("{:.0}", obl.total_time.as_millis_f64()),
            format!("{:.3}", learner.hit_ratio),
            format!("{:.0}", learner.total_time.as_millis_f64()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(expected: on-line predictors track local patterns but miss most of\n\
         the oracle's hit ratio on global patterns — the motivation for\n\
         conveying access-pattern information to the file system)"
    );
}
