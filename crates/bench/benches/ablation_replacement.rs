//! Extension ablation — demand-buffer replacement: the paper's
//! per-processor RU sets vs. a classical global LRU list (§III discusses
//! the choice: RU sets keep "the more complex list manipulations" local
//! while still enforcing a global policy). The interesting case is `lw`,
//! where a global LRU lets a fast process's misses evict blocks that
//! slower processes still need.

use rt_bench::figure_header;
use rt_cache::Replacement;
use rt_core::experiment::run_experiment;
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle};

fn main() {
    figure_header(
        "Ablation (extension)",
        "RU-set vs global-LRU demand replacement, per pattern",
    );
    let sync = SyncStyle::BlocksPerProc(10);
    let mut t = Table::new(&[
        "pattern",
        "prefetch",
        "RU-set total ms",
        "LRU total ms",
        "RU-set hit",
        "LRU hit",
    ]);
    for pattern in AccessPattern::ALL {
        for &prefetch in &[false, true] {
            let run = |replacement: Replacement| {
                let mut cfg = ExperimentConfig::paper_default(pattern, sync);
                cfg.replacement = replacement;
                if prefetch {
                    cfg.prefetch = PrefetchConfig::paper();
                }
                run_experiment(&cfg)
            };
            let ru = run(Replacement::RuSet);
            let lru = run(Replacement::GlobalLru);
            t.row(&[
                pattern.abbrev().to_string(),
                if prefetch { "yes" } else { "no" }.to_string(),
                format!("{:.0}", ru.total_time.as_millis_f64()),
                format!("{:.0}", lru.total_time.as_millis_f64()),
                format!("{:.3}", ru.hit_ratio),
                format!("{:.3}", lru.hit_ratio),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\n(with one demand buffer per node and read-only sequential access,\n\
         the two policies differ mainly where interprocess temporal locality\n\
         exists — lw — and in how often a fetch evicts a block another node\n\
         was about to reuse)"
    );
}
