//! Fig. 13 — Average hit-wait time vs. minimum prefetch lead, for the
//! lfp/gfp/lw/gw patterns. Paper claims: the hit-wait time falls
//! considerably as the lead grows — *except* for lw, where it rises,
//! because every block is hit by nearly all processes and each forgone
//! early prefetch is paid twenty times over.

use rt_bench::{figure_header, lead_sweep, LEADS, LEAD_PATTERNS};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 13",
        "average hit-wait time (ms) vs minimum prefetch lead (blocks)",
    );
    let points = lead_sweep();
    let mut t = Table::new(&["lead", "lfp", "gfp", "lw", "gw"]);
    for lead in LEADS {
        let mut row = vec![lead.to_string()];
        for pattern in LEAD_PATTERNS {
            let m = points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .expect("sweep covers all cells");
            row.push(format!("{:.2}", m.metrics.mean_hit_wait_ms()));
        }
        t.row(&row);
    }
    print!("{}", t.render());

    let cell = |pattern, lead| {
        points
            .iter()
            .find(|p| p.pattern == pattern && p.lead == lead)
            .unwrap()
            .metrics
            .mean_hit_wait_ms()
    };
    println!("\nSummary vs. paper text:");
    for pattern in LEAD_PATTERNS {
        let start = cell(pattern, 0);
        let end = cell(pattern, 90);
        println!(
            "  {}: {:.2} ms at lead 0 -> {:.2} ms at lead 90  ({})",
            pattern.abbrev(),
            start,
            end,
            if pattern == rt_patterns::AccessPattern::LocalWholeFile {
                "paper: lw INCREASES"
            } else {
                "paper: decreases"
            }
        );
    }
}
