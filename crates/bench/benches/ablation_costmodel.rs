//! Extension ablation — cost-model sensitivity. The reproduction's
//! absolute costs are calibrated, so its conclusions must be robust to
//! that calibration: this sweep scales the prefetch-action cost and the
//! lock-held overheads over an order of magnitude and checks whether the
//! qualitative results (read time improves; total time improves less;
//! disk response worsens) survive.

use rt_bench::figure_header;
use rt_core::experiment::run_pair;
use rt_core::report::Table;
use rt_core::{CostModel, ExperimentConfig};
use rt_patterns::{AccessPattern, SyncStyle};
use rt_sim::SimDuration;

fn scaled(base: &CostModel, factor: f64) -> CostModel {
    let scale = |d: SimDuration| SimDuration::from_nanos((d.as_nanos() as f64 * factor) as u64);
    CostModel {
        lookup_overhead: scale(base.lookup_overhead),
        miss_overhead: scale(base.miss_overhead),
        copy_local: scale(base.copy_local),
        copy_remote: scale(base.copy_remote),
        action_hold: scale(base.action_hold),
        action_fail_hold: scale(base.action_fail_hold),
    }
}

fn main() {
    figure_header(
        "Ablation (extension)",
        "cost-model sensitivity: overheads scaled 0.25x .. 4x (gw)",
    );
    let mut t = Table::new(&[
        "cost scale",
        "Δtotal %",
        "Δread %",
        "Δdisk resp %",
        "action ms",
        "overrun ms",
    ]);
    let base_costs = CostModel::paper();
    for &factor in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.costs = scaled(&base_costs, factor);
        let pair = run_pair(&cfg);
        t.row(&[
            format!("{factor:.2}x"),
            format!("{:+.1}", pair.total_time_improvement() * 100.0),
            format!("{:+.1}", pair.read_time_improvement() * 100.0),
            format!("{:+.1}", pair.disk_response_improvement() * 100.0),
            format!("{:.2}", pair.prefetch.action_time.mean_millis()),
            format!("{:.2}", pair.prefetch.overrun.mean_millis()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(the reproduction's claims should hold at every scale: read time\n\
         improves, the total-time gain is smaller, disk response worsens;\n\
         only the magnitudes move with the calibration)"
    );
}
