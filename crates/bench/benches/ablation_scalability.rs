//! Extension ablation — scalability (the paper lists "determining the
//! scalability of these schemes" as future work). Machine and workload
//! scale together: P processors, P disks, 100·P blocks read collectively
//! under gw. Interesting quantities: whether prefetching's relative gain
//! survives growing contention for the shared cache structures.

use rt_bench::figure_header;
use rt_core::experiment::run_pair;
use rt_core::report::Table;
use rt_core::ExperimentConfig;
use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};

fn main() {
    figure_header(
        "Ablation (extension)",
        "scalability: processors 4..64, gw, work scaled with the machine",
    );
    let mut t = Table::new(&[
        "procs",
        "total ms (base)",
        "total ms (pf)",
        "Δtotal %",
        "Δread %",
        "hit ratio",
        "action ms",
        "lock wait ms",
    ]);
    for procs in [4u16, 8, 16, 20, 32, 48, 64] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = procs;
        cfg.disks = procs;
        cfg.workload = WorkloadParams {
            procs,
            file_blocks: 100 * procs as u32,
            total_reads: 100 * procs as u32,
            ..WorkloadParams::paper()
        };
        let pair = run_pair(&cfg);
        t.row(&[
            procs.to_string(),
            format!("{:.0}", pair.base.total_time.as_millis_f64()),
            format!("{:.0}", pair.prefetch.total_time.as_millis_f64()),
            format!("{:+.1}", pair.total_time_improvement() * 100.0),
            format!("{:+.1}", pair.read_time_improvement() * 100.0),
            format!("{:.3}", pair.prefetch.hit_ratio),
            format!("{:.2}", pair.prefetch.action_time.mean_millis()),
            format!("{:.2}", pair.prefetch.lock_wait.mean_millis()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(expected: the single shared cache lock becomes the scaling\n\
         bottleneck — lock waits and action times grow with the machine,\n\
         eroding prefetching's relative gain at large P)"
    );
}
