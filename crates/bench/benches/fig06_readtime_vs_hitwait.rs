//! Fig. 6 — Average block read time vs. average hit-wait time, one point
//! per prefetching run. Paper claims: a "fuzzy relationship" — hit-wait
//! contributes to read time but does not determine it.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

/// Pearson correlation of two equal-length samples.
fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

fn main() {
    figure_header(
        "Figure 6",
        "average block read time vs average hit-wait time (prefetch runs)",
    );
    let pairs = grid_pairs();
    let mut t = Table::new(&["experiment", "hit-wait ms (x)", "read ms (y)"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for p in &pairs {
        let x = p.prefetch.mean_hit_wait_ms();
        let y = p.prefetch.mean_read_ms();
        xs.push(x);
        ys.push(y);
        t.row(&[p.label.clone(), format!("{x:.2}"), format!("{y:.2}")]);
    }
    print!("{}", t.render());

    println!("\nSummary vs. paper text:");
    println!(
        "  correlation(read time, hit-wait): {:.2}  (paper: fuzzy positive relationship)",
        correlation(&xs, &ys)
    );
    let hr: Vec<f64> = pairs.iter().map(|p| p.prefetch.hit_ratio).collect();
    println!(
        "  correlation(read time, hit ratio): {:.2}  (paper: no obvious relationship)",
        correlation(&ys, &hr)
    );
}
