//! Fig. 11 — Reduction in total execution time vs. the cache hit ratio
//! achieved, one point per grid configuration. Paper claims: the hit ratio
//! is *not* a strong predictor of overall success — a high hit ratio can
//! coexist with small (even negative) total-time improvements.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 11",
        "reduction in total time (y, %) vs hit ratio with prefetching (x)",
    );
    let pairs = grid_pairs();
    let mut t = Table::new(&["experiment", "hit ratio", "Δtotal %"]);
    for p in &pairs {
        t.row(&[
            p.label.clone(),
            format!("{:.3}", p.prefetch.hit_ratio),
            format!("{:+.1}", p.total_time_improvement() * 100.0),
        ]);
    }
    print!("{}", t.render());

    // Demonstrate the paper's point: among high-hit-ratio runs, the spread
    // of total-time outcomes stays wide.
    let high: Vec<f64> = pairs
        .iter()
        .filter(|p| p.prefetch.hit_ratio > 0.85)
        .map(|p| p.total_time_improvement() * 100.0)
        .collect();
    if !high.is_empty() {
        let min = high.iter().copied().fold(f64::MAX, f64::min);
        let max = high.iter().copied().fold(f64::MIN, f64::max);
        println!(
            "\nAmong {} runs with hit ratio > 0.85, Δtotal ranges from {min:+.1}% to {max:+.1}%.",
            high.len()
        );
        println!("(paper: hit ratio alone does not predict overall performance)");
    }
}
