//! Criterion micro-benchmarks of the simulator substrate itself: event
//! queue throughput, cache operations, oracle selection, and a complete
//! small experiment. These measure the *reproduction's* performance (how
//! fast the harness regenerates figures), not the paper's system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rt_cache::{BufferPool, PoolConfig};
use rt_core::experiment::run_experiment;
use rt_core::policy::{select_oracle, OracleView};
use rt_core::ExperimentConfig;
use rt_disk::{BlockId, ProcId};
use rt_patterns::{AccessPattern, RefString, SyncStyle, WorkloadParams};
use rt_sim::{EventQueue, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    // Pseudo-shuffled times exercise heap reordering.
                    let t = SimTime::from_nanos(((i as u64).wrapping_mul(2654435761)) % 1_000_000);
                    q.schedule(t, i);
                }
                let mut count = 0;
                while let Some((_, v)) = q.pop() {
                    count += black_box(v) as u64 & 1;
                }
                count
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_ops(c: &mut Criterion) {
    c.bench_function("cache/miss_fetch_hit_cycle", |b| {
        b.iter_batched(
            || BufferPool::new(PoolConfig::paper_prefetch(20)),
            |mut pool| {
                let mut t = SimTime::ZERO;
                for i in 0..1000u32 {
                    let block = BlockId(i);
                    let proc = ProcId((i % 20) as u16);
                    let _ = pool.lookup_for_read(block, t);
                    let ready = t + SimDuration::from_millis(30);
                    let buf = pool.alloc_demand(proc, block, ready).unwrap();
                    pool.complete_io(buf, ready);
                    let _ = pool.lookup_for_read(block, ready);
                    pool.record_use(buf, proc, ready);
                    t = ready;
                }
                black_box(pool.stats().hit_ratio.value())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_oracle_select(c: &mut Criterion) {
    let string = RefString::from_portions(&[(0, 2000)]);
    let pool = BufferPool::new(PoolConfig::paper_prefetch(20));
    c.bench_function("policy/oracle_select_2000", |b| {
        b.iter(|| {
            let view = OracleView {
                string: &string,
                frontier: black_box(1000),
                cross_portions: true,
                min_lead: 0,
            };
            black_box(select_oracle(&view, &pool))
        })
    });
}

fn bench_full_run(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::paper_default(
        AccessPattern::GlobalWholeFile,
        SyncStyle::BlocksPerProc(10),
    );
    cfg.procs = 8;
    cfg.disks = 8;
    cfg.workload = WorkloadParams {
        procs: 8,
        file_blocks: 800,
        total_reads: 800,
        ..WorkloadParams::paper()
    };
    cfg.prefetch = rt_core::PrefetchConfig::paper();
    c.bench_function("experiment/gw_8proc_800blocks", |b| {
        b.iter(|| black_box(run_experiment(&cfg)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_ops,
    bench_oracle_select,
    bench_full_run
);
criterion_main!(benches);
