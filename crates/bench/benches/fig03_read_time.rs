//! Fig. 3 — Average block read time, prefetching vs. not, one point per
//! grid configuration. Paper claims: every point falls below the y = x
//! line; the improvement exceeds 35% for 60% of the experiments, has a
//! median of 48%, and reaches 88%.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::{fraction_at_least, median, pct, quantile_table, scatter_table};

fn main() {
    figure_header(
        "Figure 3",
        "average block read time with prefetching (y) vs without (x)",
    );
    let pairs = grid_pairs();
    let table = scatter_table(
        &pairs,
        "read ms",
        |p| p.base.mean_read_ms(),
        |p| p.prefetch.mean_read_ms(),
    );
    print!("{}", table.render());

    let improvements: Vec<f64> = pairs.iter().map(|p| p.read_time_improvement()).collect();
    let below_line = improvements.iter().filter(|&&i| i > 0.0).count();
    println!("\nSummary vs. paper text:");
    println!(
        "  points improved (below y=x):   {}/{}   (paper: all)",
        below_line,
        improvements.len()
    );
    println!(
        "  improvement >= 35%:            {}  (paper: 60% of experiments)",
        pct(fraction_at_least(&improvements, 0.35))
    );
    println!(
        "  median improvement:            {}  (paper: 48%)",
        pct(median(&improvements))
    );
    println!(
        "  max improvement:               {}  (paper: 88%)",
        pct(improvements.iter().copied().fold(f64::MIN, f64::max))
    );

    // The mean understates what prefetching does to the tail; show the
    // full quantile picture at the best-improving configuration.
    if let Some(best) = pairs.iter().max_by(|a, b| {
        a.read_time_improvement()
            .total_cmp(&b.read_time_improvement())
    }) {
        println!(
            "\nTail latency at the best-improving configuration ({}):",
            best.label
        );
        print!(
            "{}",
            quantile_table(&[("no prefetch", &best.base), ("prefetch", &best.prefetch)]).render()
        );
    }
}
