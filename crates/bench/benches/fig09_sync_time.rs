//! Fig. 9 — Average synchronization time (arrival at a barrier to the
//! moment all processes achieve synchrony), prefetching vs not. Paper
//! claims: prefetching *usually increases* synchronization time — savings
//! on I/O operations convert into longer waits at the next barrier when
//! the benefit is unevenly distributed.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::scatter_table;

fn main() {
    figure_header(
        "Figure 9",
        "average synchronization time with prefetching (y) vs without (x)",
    );
    let pairs: Vec<_> = grid_pairs()
        .into_iter()
        .filter(|p| p.base.barriers > 0)
        .collect();
    let table = scatter_table(
        &pairs,
        "sync ms",
        |p| p.base.sync_wait.mean_millis(),
        |p| p.prefetch.sync_wait.mean_millis(),
    );
    print!("{}", table.render());

    let increased = pairs
        .iter()
        .filter(|p| p.prefetch.sync_wait.mean_millis() > p.base.sync_wait.mean_millis())
        .count();
    let dramatic = pairs
        .iter()
        .filter(|p| p.prefetch.sync_wait.mean_millis() > 1.5 * p.base.sync_wait.mean_millis())
        .count();
    println!("\nSummary vs. paper text:");
    println!(
        "  synchronizing runs where sync time increased: {}/{}  (paper: usually)",
        increased,
        pairs.len()
    );
    println!(
        "  increases beyond 1.5x: {}/{}  (paper: a few quite dramatic)",
        dramatic,
        pairs.len()
    );
}
