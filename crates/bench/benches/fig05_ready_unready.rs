//! Fig. 5 — For the prefetching runs, the fraction of accesses serviced by
//! ready hits ("R") vs unready hits ("U"). Paper claims: unready hits are a
//! significant portion of all hits; hit-wait times stay low under full
//! interleaving (70% of averages below 6 ms, all below 17 ms).

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 5",
        "fraction of accesses serviced by ready (R) and unready (U) hits",
    );
    let pairs = grid_pairs();
    let mut t = Table::new(&[
        "experiment",
        "ready frac (R)",
        "unready frac (U)",
        "avg hit-wait ms",
    ]);
    let mut hit_waits = Vec::new();
    for p in &pairs {
        let m = &p.prefetch;
        let hw = m.mean_hit_wait_ms();
        hit_waits.push(hw);
        t.row(&[
            p.label.clone(),
            format!("{:.3}", m.ready_fraction()),
            format!("{:.3}", m.unready_fraction()),
            format!("{hw:.2}"),
        ]);
    }
    print!("{}", t.render());

    let under6 = hit_waits.iter().filter(|&&h| h < 6.0).count();
    let max_hw = hit_waits.iter().copied().fold(f64::MIN, f64::max);
    let unready_significant = pairs
        .iter()
        .filter(|p| p.prefetch.unready_fraction() > 0.1)
        .count();
    println!("\nSummary vs. paper text:");
    println!(
        "  experiments with avg hit-wait < 6 ms: {}/{}  (paper: 70%)",
        under6,
        hit_waits.len()
    );
    println!("  max avg hit-wait: {max_hw:.2} ms  (paper: all < 17 ms)");
    println!(
        "  runs where unready hits exceed 10% of reads: {}/{}  (paper: significant portion)",
        unready_significant,
        pairs.len()
    );
}
