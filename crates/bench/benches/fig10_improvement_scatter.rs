//! Fig. 10 — Reduction in total execution time vs. reduction in average
//! block read time, one point per grid configuration. Paper claims: "at
//! best only a fuzzy relationship" — without a way to distribute the
//! benefit across processes, a lower *average* read time does not
//! necessarily shorten the computation.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 10",
        "reduction in total time (y) vs reduction in read time (x), %",
    );
    let pairs = grid_pairs();
    let mut t = Table::new(&["experiment", "Δread %", "Δtotal %"]);
    let mut weaker = 0usize;
    for p in &pairs {
        let dr = p.read_time_improvement() * 100.0;
        let dt = p.total_time_improvement() * 100.0;
        if dt < dr {
            weaker += 1;
        }
        t.row(&[p.label.clone(), format!("{dr:+.1}"), format!("{dt:+.1}")]);
    }
    print!("{}", t.render());

    println!("\nSummary vs. paper text:");
    println!(
        "  runs where total-time gain lags read-time gain: {}/{}",
        weaker,
        pairs.len()
    );
    println!(
        "  (paper: read-time savings only partially translate into total-time\n\
         savings; the relationship is fuzzy because benefits distribute\n\
         unevenly across processes and turn into synchronization waits)"
    );
}
