//! Fig. 12 — Total-time improvement as the program shifts from I/O-bound
//! to compute-bound (gw pattern, synchronizing every 10 blocks per
//! processor, exponential compute with swept mean). Paper claims: the
//! improvement grows once some computation exists to overlap with I/O,
//! then tails off as computation dominates; the read-time reduction
//! reaches ~80% (read time falls to 20% of the no-prefetch value); disk
//! contention and prefetch-action times fall as processors stay busy
//! (actions from ~22 ms down to ~5 ms).

use rt_bench::{compute_sweep, figure_header};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 12",
        "improvement in total time vs mean computation per block (gw, sync 10/proc)",
    );
    let points = compute_sweep();
    let mut t = Table::new(&[
        "compute ms",
        "Δtotal %",
        "Δread %",
        "read ms (pf)",
        "disk resp pf ms",
        "action ms",
        "overrun ms",
    ]);
    for p in &points {
        t.row(&[
            p.compute_ms.to_string(),
            format!("{:+.1}", p.pair.total_time_improvement() * 100.0),
            format!("{:+.1}", p.pair.read_time_improvement() * 100.0),
            format!("{:.2}", p.pair.prefetch.mean_read_ms()),
            format!("{:.2}", p.pair.prefetch.mean_disk_response_ms()),
            format!("{:.2}", p.pair.prefetch.action_time.mean_millis()),
            format!("{:.2}", p.pair.prefetch.overrun.mean_millis()),
        ]);
    }
    print!("{}", t.render());

    let io_bound = &points[0];
    let peak = points
        .iter()
        .max_by(|a, b| {
            a.pair
                .total_time_improvement()
                .partial_cmp(&b.pair.total_time_improvement())
                .unwrap()
        })
        .unwrap();
    let last = points.last().unwrap();
    println!("\nSummary vs. paper text:");
    println!(
        "  I/O-bound (0 ms) improvement: {:+.1}%; peak {:+.1}% at {} ms; compute-bound tail {:+.1}%",
        io_bound.pair.total_time_improvement() * 100.0,
        peak.pair.total_time_improvement() * 100.0,
        peak.compute_ms,
        last.pair.total_time_improvement() * 100.0
    );
    println!(
        "  prefetch action time: {:.1} ms when I/O-bound vs {:.1} ms compute-bound  (paper: 22 -> 5 ms)",
        io_bound.pair.prefetch.action_time.mean_millis(),
        last.pair.prefetch.action_time.mean_millis()
    );
    let best_read = points
        .iter()
        .map(|p| p.pair.read_time_improvement())
        .fold(f64::MIN, f64::max);
    println!(
        "  best read-time reduction: {:.0}%  (paper: read time falls to ~20% of base)",
        best_read * 100.0
    );
}
