//! Fig. 16 — Total execution time vs. minimum prefetch lead (local-pattern
//! times divided by 20, as in the paper, since those runs read 20× the
//! blocks). Paper claims: gw and lw slow down overall; gfp also slows
//! (severely increased miss ratio); lfp *improves*, and with leads of 30
//! or more beats even its non-prefetching time — but no lead value helps
//! all patterns at once.

use rt_bench::{figure_header, lead_baselines, lead_sweep, lead_time_scale, LEADS, LEAD_PATTERNS};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 16",
        "total execution time (ms, local /20) vs minimum prefetch lead",
    );
    let points = lead_sweep();
    let baselines = lead_baselines();

    let mut t = Table::new(&["lead", "lfp", "gfp", "lw", "gw"]);
    for lead in LEADS {
        let mut row = vec![lead.to_string()];
        for pattern in LEAD_PATTERNS {
            let m = points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .unwrap();
            let ms = m.metrics.total_time.as_millis_f64() / lead_time_scale(pattern);
            row.push(format!("{ms:.0}"));
        }
        t.row(&row);
    }
    // The non-prefetching reference row.
    let mut base_row = vec!["none".to_string()];
    for (i, pattern) in LEAD_PATTERNS.iter().enumerate() {
        base_row.push(format!(
            "{:.0}",
            baselines[i].total_time.as_millis_f64() / lead_time_scale(*pattern)
        ));
    }
    t.row(&base_row);
    print!("{}", t.render());
    println!("(last row: no prefetching at all)\n");

    println!("Summary vs. paper text:");
    for (i, pattern) in LEAD_PATTERNS.iter().enumerate() {
        let at = |lead| {
            points
                .iter()
                .find(|p| p.pattern == *pattern && p.lead == lead)
                .unwrap()
                .metrics
                .total_time
                .as_millis_f64()
                / lead_time_scale(*pattern)
        };
        let base = baselines[i].total_time.as_millis_f64() / lead_time_scale(*pattern);
        println!(
            "  {}: lead0 {:.0} ms, lead90 {:.0} ms, no-prefetch {:.0} ms ({})",
            pattern.abbrev(),
            at(0),
            at(90),
            base,
            if at(90) > at(0) {
                "slows with lead"
            } else {
                "improves with lead"
            },
        );
    }
    println!(
        "(paper: gw/lw/gfp slow down with lead; lfp improves, beating the\n\
         non-prefetching time at leads >= 30; no lead satisfies all patterns)"
    );
}
