//! Extension ablation — disk queue discipline. The paper's testbed serves
//! disk requests FCFS, so prefetches delay demand fetches and the disk
//! response time worsens under prefetching (Fig. 7). This ablation asks
//! how much of that contention a demand-priority disk queue would absorb.

use rt_bench::figure_header;
use rt_core::experiment::run_experiment;
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_disk::Discipline;
use rt_patterns::{AccessPattern, SyncStyle};
use rt_sim::SimDuration;

fn main() {
    figure_header(
        "Ablation (extension)",
        "FCFS vs demand-priority disk queues under prefetching",
    );
    let mut t = Table::new(&[
        "pattern",
        "compute ms",
        "FCFS total ms",
        "prio total ms",
        "FCFS read ms",
        "prio read ms",
        "FCFS disk ms",
        "prio disk ms",
    ]);
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalWholeFile,
        AccessPattern::GlobalFixedPortions,
        AccessPattern::LocalFixedPortions,
    ] {
        for &compute_ms in &[0u64, 30] {
            let run = |discipline: Discipline| {
                let mut cfg =
                    ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
                cfg.compute_mean = SimDuration::from_millis(compute_ms);
                cfg.discipline = discipline;
                cfg.prefetch = PrefetchConfig::paper();
                run_experiment(&cfg)
            };
            let fifo = run(Discipline::Fifo);
            let prio = run(Discipline::DemandPriority);
            t.row(&[
                pattern.abbrev().to_string(),
                compute_ms.to_string(),
                format!("{:.0}", fifo.total_time.as_millis_f64()),
                format!("{:.0}", prio.total_time.as_millis_f64()),
                format!("{:.2}", fifo.mean_read_ms()),
                format!("{:.2}", prio.mean_read_ms()),
                format!("{:.2}", fifo.mean_disk_response_ms()),
                format!("{:.2}", prio.mean_disk_response_ms()),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nWith the paper's oracle at lead 0, almost every block is prefetched,\n\
         so disk queues are nearly pure prefetch traffic and the discipline is\n\
         irrelevant. Mixed traffic appears when misses are plentiful — e.g.\n\
         under a minimum prefetch lead:\n"
    );

    let mut t = Table::new(&[
        "pattern+lead",
        "FCFS total ms",
        "prio total ms",
        "FCFS read ms",
        "prio read ms",
        "FCFS demand-resp ms",
        "prio demand-resp ms",
    ]);
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::GlobalFixedPortions,
    ] {
        for lead in [30u32, 60] {
            let run = |discipline: Discipline| {
                let mut cfg = ExperimentConfig::paper_lead(pattern, lead);
                cfg.discipline = discipline;
                run_experiment(&cfg)
            };
            let fifo = run(Discipline::Fifo);
            let prio = run(Discipline::DemandPriority);
            t.row(&[
                format!("{}+{}", pattern.abbrev(), lead),
                format!("{:.0}", fifo.total_time.as_millis_f64()),
                format!("{:.0}", prio.total_time.as_millis_f64()),
                format!("{:.2}", fifo.mean_read_ms()),
                format!("{:.2}", prio.mean_read_ms()),
                format!("{:.2}", fifo.disk_response.mean_millis()),
                format!("{:.2}", prio.disk_response.mean_millis()),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\n(expected: with real demand traffic, priority shortens misses'\n\
         queueing at the cost of prefetch timeliness)"
    );
}
