//! Fig. 8 — Total execution time, prefetching vs not: the paper's primary
//! measure. Paper claims: prefetching reduces total time in most cases
//! (improvements up to 69%, the best in lw where every prefetched block
//! benefits all 20 processes), but *some lfp runs slow down* by as much as
//! 15% despite better hit ratios and read times — the benefit-distribution
//! pathology of Fig. 1(b).

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::{median, pct, scatter_table};
use rt_patterns::AccessPattern;

fn main() {
    figure_header(
        "Figure 8",
        "total execution time with prefetching (y) vs without (x)",
    );
    let pairs = grid_pairs();
    let table = scatter_table(
        &pairs,
        "total ms",
        |p| p.base.total_time.as_millis_f64(),
        |p| p.prefetch.total_time.as_millis_f64(),
    );
    print!("{}", table.render());

    let imps: Vec<f64> = pairs.iter().map(|p| p.total_time_improvement()).collect();
    let improved = imps.iter().filter(|&&i| i > 0.0).count();
    let over15 = imps.iter().filter(|&&i| i > 0.15).count();
    let best = pairs
        .iter()
        .max_by(|a, b| {
            a.total_time_improvement()
                .partial_cmp(&b.total_time_improvement())
                .unwrap()
        })
        .unwrap();
    let worst = pairs
        .iter()
        .min_by(|a, b| {
            a.total_time_improvement()
                .partial_cmp(&b.total_time_improvement())
                .unwrap()
        })
        .unwrap();
    let lw_imps: Vec<f64> = pairs
        .iter()
        .filter(|p| p.label.starts_with(AccessPattern::LocalWholeFile.abbrev()))
        .map(|p| p.total_time_improvement())
        .collect();
    let slowdowns: Vec<&str> = pairs
        .iter()
        .filter(|p| p.total_time_improvement() < 0.0)
        .map(|p| p.label.as_str())
        .collect();

    println!("\nSummary vs. paper text:");
    println!(
        "  runs improved: {}/{}   (paper: most cases)",
        improved,
        imps.len()
    );
    println!(
        "  runs improved by more than 15%: {}/{}  (paper: most improvements exceed 15%)",
        over15,
        imps.len()
    );
    println!("  median improvement: {}", pct(median(&imps)));
    println!(
        "  best: {} at {}   (paper: up to 69%, in lw)",
        best.label,
        pct(best.total_time_improvement())
    );
    println!(
        "  best lw improvement: {}",
        pct(lw_imps.iter().copied().fold(f64::MIN, f64::max))
    );
    println!(
        "  worst: {} at {}   (paper: lfp slowdowns up to -15%)",
        worst.label,
        pct(worst.total_time_improvement())
    );
    println!("  slowed-down runs: {slowdowns:?}");
}
