//! Fig. 1 — the paper's opening *conceptual* figure made quantitative.
//!
//! Fig. 1(a): evenly distributed prefetching benefit shortens everyone's
//! I/O and the barrier opens sooner. Fig. 1(b): the same average benefit
//! concentrated on some processes shortens *their* waits only — everyone
//! still waits for the stragglers, and the prefetching effort of the
//! unlucky processes is pure overhead. The paper invokes this to explain
//! why lfp can slow down despite better read times (§V-B).
//!
//! This bench measures the distribution directly: the coefficient of
//! variation of per-process mean read times and hit counts, next to each
//! pattern's total-time outcome.

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 1 (quantified)",
        "distribution of prefetching benefit across processes",
    );
    let pairs = grid_pairs();
    let mut t = Table::new(&[
        "experiment",
        "Δtotal %",
        "read-time CV",
        "hit CV",
        "finish skew ms",
        "min proc hits",
        "max proc hits",
    ]);
    for p in &pairs {
        let m = &p.prefetch;
        let hits: Vec<u64> = m.per_proc.iter().map(|pp| pp.hits).collect();
        t.row(&[
            p.label.clone(),
            format!("{:+.1}", p.total_time_improvement() * 100.0),
            format!("{:.3}", m.read_time_imbalance()),
            format!("{:.3}", m.hit_imbalance()),
            format!("{:.1}", m.finish_skew().as_millis_f64()),
            hits.iter().min().unwrap().to_string(),
            hits.iter().max().unwrap().to_string(),
        ]);
    }
    print!("{}", t.render());

    // The paper's causal claim: among the *local* patterns (which prefetch
    // only for themselves), higher benefit imbalance should go with worse
    // total-time outcomes.
    let locals: Vec<_> = pairs.iter().filter(|p| p.label.starts_with('l')).collect();
    let mut cvs: Vec<f64> = locals
        .iter()
        .map(|p| p.prefetch.read_time_imbalance())
        .collect();
    cvs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let split = cvs[cvs.len() / 2];
    let (high, low): (Vec<_>, Vec<_>) = locals
        .iter()
        .partition(|p| p.prefetch.read_time_imbalance() > split);
    let mean = |v: &[&&rt_core::RunPair]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().map(|p| p.total_time_improvement()).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nLocal patterns, split at their median read-time imbalance \
         (CV {split:.3}):"
    );
    println!(
        "  more-imbalanced runs: {} (mean Δtotal {:+.1}%)",
        high.len(),
        mean(&high) * 100.0
    );
    println!(
        "  less-imbalanced runs: {} (mean Δtotal {:+.1}%)",
        low.len(),
        mean(&low) * 100.0
    );
    println!(
        "(paper Fig. 1(b): concentrated benefit converts I/O savings into\n\
         barrier waits; the high-imbalance group should fare worse)"
    );
}
