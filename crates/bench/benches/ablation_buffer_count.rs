//! §V-F ablation — the number of prefetch buffers per process. Paper
//! claims: one buffer per process obtains smaller improvements for all
//! patterns; within 2–5 buffers the choice has only a minor impact on
//! total execution time.

use rt_bench::figure_header;
use rt_core::experiment::{run_experiment, run_pair};
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle};

fn main() {
    figure_header(
        "Ablation (§V-F)",
        "prefetch buffers per process vs total-time improvement",
    );
    let sync = SyncStyle::BlocksPerProc(10);
    let mut t = Table::new(&[
        "pattern", "1 buf %", "2 buf %", "3 buf %", "4 buf %", "5 buf %",
    ]);
    for pattern in AccessPattern::ALL {
        // The no-prefetch base for this pattern.
        let base = run_pair(&ExperimentConfig::paper_default(pattern, sync)).base;
        let base_ms = base.total_time.as_millis_f64();
        let mut row = vec![pattern.abbrev().to_string()];
        for bufs in 1..=5u16 {
            let mut cfg = ExperimentConfig::paper_default(pattern, sync);
            cfg.prefetch = PrefetchConfig {
                buffers_per_proc: bufs,
                global_cap_per_proc: bufs,
                ..PrefetchConfig::paper()
            };
            let m = run_experiment(&cfg);
            let imp = (base_ms - m.total_time.as_millis_f64()) / base_ms * 100.0;
            row.push(format!("{imp:+.1}"));
        }
        t.row(&row);
    }
    print!("{}", t.render());
    println!(
        "\n(paper: one buffer per process is noticeably worse; two to five\n\
         buffers differ only slightly)"
    );
}
