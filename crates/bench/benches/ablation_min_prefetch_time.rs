//! §V-D ablation — the *minimum prefetch time*: refuse to start a prefetch
//! action when the estimated remaining idle time is below a threshold.
//! Paper claims: raising the threshold lowers the overrun but only
//! negligibly improves total execution and read times, because the hit
//! ratio degrades steadily — "an unproductive idea".

use rt_bench::figure_header;
use rt_core::experiment::run_experiment;
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_patterns::{AccessPattern, SyncStyle};
use rt_sim::SimDuration;

fn main() {
    figure_header(
        "Ablation (§V-D)",
        "minimum prefetch time vs overrun / hit ratio / total time (gw)",
    );
    let mut t = Table::new(&[
        "min action time (ms)",
        "overrun ms",
        "hit ratio",
        "read ms",
        "total ms",
    ]);
    for min_ms in [0u64, 2, 5, 10, 15, 20, 25] {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.prefetch = PrefetchConfig {
            min_action_time: SimDuration::from_millis(min_ms),
            ..PrefetchConfig::paper()
        };
        let m = run_experiment(&cfg);
        t.row(&[
            min_ms.to_string(),
            format!("{:.2}", m.overrun.mean_millis()),
            format!("{:.3}", m.hit_ratio),
            format!("{:.2}", m.mean_read_ms()),
            format!("{:.0}", m.total_time.as_millis_f64()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(paper: overrun falls with the threshold, but the hit ratio degrades\n\
         steadily and total/read times barely move — an unproductive idea)"
    );
}
