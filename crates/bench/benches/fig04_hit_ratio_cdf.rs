//! Fig. 4 — Cumulative distributions of the cache hit ratio across the
//! grid, with ("P") and without ("N") prefetching. Paper claims: with
//! prefetching every experiment exceeds 0.69 and more than half exceed
//! 0.86; without prefetching most hit ratios are near zero, except the
//! patterns with interprocess locality (lw).

use rt_bench::{figure_header, grid_pairs};
use rt_core::report::Table;

fn cdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = values.len() as f64;
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

fn main() {
    figure_header(
        "Figure 4",
        "cumulative distribution of cache hit ratios (P = prefetch, N = none)",
    );
    let pairs = grid_pairs();
    let with: Vec<f64> = pairs.iter().map(|p| p.prefetch.hit_ratio).collect();
    let without: Vec<f64> = pairs.iter().map(|p| p.base.hit_ratio).collect();

    let mut t = Table::new(&["series", "hit ratio", "cumulative fraction"]);
    for (v, f) in cdf(without.clone()) {
        t.row(&["N".into(), format!("{v:.3}"), format!("{f:.3}")]);
    }
    for (v, f) in cdf(with.clone()) {
        t.row(&["P".into(), format!("{v:.3}"), format!("{f:.3}")]);
    }
    print!("{}", t.render());

    let min_with = with.iter().copied().fold(f64::MAX, f64::min);
    let over_086 = with.iter().filter(|&&v| v > 0.86).count();
    let near_zero_without = without.iter().filter(|&&v| v < 0.1).count();
    println!("\nSummary vs. paper text:");
    println!("  min hit ratio with prefetching:    {min_with:.3}  (paper: > 0.69)");
    println!(
        "  runs over 0.86 with prefetching:   {}/{}  (paper: more than half)",
        over_086,
        with.len()
    );
    println!(
        "  non-prefetch runs with ratio <0.1: {}/{}  (paper: most, except lw)",
        near_zero_without,
        without.len()
    );
}
