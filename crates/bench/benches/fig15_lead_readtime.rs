//! Fig. 15 — Average block read time vs. minimum prefetch lead. Paper
//! claims: the miss-ratio increase overwhelms the hit-wait improvement —
//! read times *rise* for lw and gw, with only slight improvements for gfp
//! and lfp at small leads.

use rt_bench::{figure_header, lead_sweep, LEADS, LEAD_PATTERNS};
use rt_core::report::Table;

fn main() {
    figure_header(
        "Figure 15",
        "average block read time (ms) vs minimum prefetch lead",
    );
    let points = lead_sweep();
    let mut t = Table::new(&["lead", "lfp", "gfp", "lw", "gw"]);
    for lead in LEADS {
        let mut row = vec![lead.to_string()];
        for pattern in LEAD_PATTERNS {
            let m = points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .unwrap();
            row.push(format!("{:.2}", m.metrics.mean_read_ms()));
        }
        t.row(&row);
    }
    print!("{}", t.render());

    println!("\nSummary vs. paper text (read time, lead 0 -> 90):");
    for pattern in LEAD_PATTERNS {
        let at = |lead| {
            points
                .iter()
                .find(|p| p.pattern == pattern && p.lead == lead)
                .unwrap()
                .metrics
                .mean_read_ms()
        };
        let (a, b) = (at(0), at(90));
        println!(
            "  {}: {:.2} -> {:.2} ms ({})",
            pattern.abbrev(),
            a,
            b,
            if b > a { "rises" } else { "falls" }
        );
    }
    println!("(paper: lw and gw rise; gfp/lfp see only slight dips at small leads)");
}
