//! Extension ablation — file layout: interleaved over all disks (Bridge,
//! the paper's configuration) vs. contiguous on a single disk (the
//! traditional layout). This is the §II motivation quantified: without
//! hardware parallelism, neither caching nor prefetching can push a
//! sequential scan past one disk's bandwidth.

use rt_bench::figure_header;
use rt_core::experiment::run_experiment;
use rt_core::report::Table;
use rt_core::{ExperimentConfig, PrefetchConfig};
use rt_fs::Striping;
use rt_patterns::{AccessPattern, SyncStyle};

fn main() {
    figure_header(
        "Ablation (extension)",
        "interleaved vs single-disk file layout (gw and lw)",
    );
    let mut t = Table::new(&[
        "pattern",
        "layout",
        "prefetch",
        "total ms",
        "read ms",
        "disk resp ms",
        "mean disk util",
    ]);
    for pattern in [
        AccessPattern::GlobalWholeFile,
        AccessPattern::LocalWholeFile,
    ] {
        for &striping in &[Striping::Interleaved, Striping::OnDisk(0)] {
            for &prefetch in &[false, true] {
                let mut cfg =
                    ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
                cfg.striping = striping;
                if prefetch {
                    cfg.prefetch = PrefetchConfig::paper();
                }
                let m = run_experiment(&cfg);
                t.row(&[
                    pattern.abbrev().to_string(),
                    match striping {
                        Striping::Interleaved => "interleaved".to_string(),
                        Striping::OnDisk(d) => format!("disk {d}"),
                    },
                    if prefetch { "yes" } else { "no" }.to_string(),
                    format!("{:.0}", m.total_time.as_millis_f64()),
                    format!("{:.2}", m.mean_read_ms()),
                    format!("{:.2}", m.mean_disk_response_ms()),
                    format!("{:.3}", m.disk_utilization),
                ]);
            }
        }
    }
    print!("{}", t.render());
    println!(
        "\n(expected: on one disk the 2000 reads serialize — at least\n\
         2000 x 30 ms = 60 s regardless of prefetching; interleaving buys\n\
         the ~20x that makes prefetching worth studying at all)"
    );
}
