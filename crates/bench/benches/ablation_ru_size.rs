//! Extension ablation — RU-set (demand cache) size. The paper fixes one
//! demand buffer per node ("toss-immediately") and argues 20 buffers
//! suffice for the interprocess locality present; this sweep verifies that
//! claim and shows where extra demand buffers would start to matter.

use rt_bench::figure_header;
use rt_core::experiment::run_pair;
use rt_core::report::Table;
use rt_core::ExperimentConfig;
use rt_patterns::{AccessPattern, SyncStyle};

fn main() {
    figure_header(
        "Ablation (extension)",
        "demand buffers per node (RU-set size) 1..8, without prefetching",
    );
    let mut t = Table::new(&[
        "pattern",
        "1 buf hit",
        "2 buf hit",
        "4 buf hit",
        "8 buf hit",
        "1 buf total ms",
        "8 buf total ms",
    ]);
    for pattern in [
        AccessPattern::LocalWholeFile,
        AccessPattern::LocalRandomPortions,
        AccessPattern::GlobalWholeFile,
    ] {
        let run = |ru: u16| {
            let mut cfg = ExperimentConfig::paper_default(pattern, SyncStyle::BlocksPerProc(10));
            cfg.ru_set_size = ru;
            run_pair(&cfg).base
        };
        let r1 = run(1);
        let r2 = run(2);
        let r4 = run(4);
        let r8 = run(8);
        t.row(&[
            pattern.abbrev().to_string(),
            format!("{:.3}", r1.hit_ratio),
            format!("{:.3}", r2.hit_ratio),
            format!("{:.3}", r4.hit_ratio),
            format!("{:.3}", r8.hit_ratio),
            format!("{:.0}", r1.total_time.as_millis_f64()),
            format!("{:.0}", r8.total_time.as_millis_f64()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(paper §IV-D: \"the cache size of 20 was adequate to accommodate\n\
         any interprocess locality present within these sequential access\n\
         patterns\" — extra demand buffers should barely move lw's hit ratio\n\
         and do nothing for the disjoint patterns)"
    );
}
