//! Property tests for the workload generators: every pattern, over
//! arbitrary valid geometries, must produce exactly the promised reads,
//! stay within the file, keep portions sequential, and be reproducible.

use proptest::prelude::*;

use rt_patterns::{AccessPattern, Workload, WorkloadParams};
use rt_sim::Rng;

prop_compose! {
    fn params_strategy()(
        // Even process counts keep the total even, so the gfp constraint
        // (file divisible by 2L) is always satisfiable.
        procs in (1u16..6).prop_map(|p| p * 2),
        portions_per_proc in 2u32..12,
        len in 1u32..8,
        seedless in any::<u64>(),
    ) -> (WorkloadParams, u64) {
        // total = procs * portions * len keeps lfp geometry exact; the file
        // equals the total so every generator's constraints hold.
        let total = procs as u32 * portions_per_proc * len;
        // gfp needs file % 2L == 0 for its global portion length. Derive a
        // valid global length from the file size.
        let mut global_len = (total / 8).max(1);
        while !total.is_multiple_of(2 * global_len) {
            global_len -= 1;
        }
        let params = WorkloadParams {
            procs,
            file_blocks: total,
            total_reads: total,
            fixed_portion_len: len,
            global_fixed_portion_len: global_len,
            rand_portion_min: 1,
            rand_portion_max: 6.min(total),
            global_rand_portion_min: 1,
            global_rand_portion_max: 10.min(total),
        };
        (params, seedless)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn all_patterns_produce_exact_read_counts((params, seed) in params_strategy()) {
        for pattern in AccessPattern::ALL {
            let w = Workload::generate(pattern, &params, &mut Rng::seeded(seed));
            prop_assert_eq!(
                w.total_reads(),
                params.total_reads as usize,
                "{} produced the wrong number of reads", pattern
            );
            if let Some(max) = w.max_block() {
                prop_assert!(
                    max.0 < params.file_blocks,
                    "{} read past the end of the file", pattern
                );
            }
        }
    }

    #[test]
    fn portions_are_sequential_runs((params, seed) in params_strategy()) {
        for pattern in AccessPattern::ALL {
            let w = Workload::generate(pattern, &params, &mut Rng::seeded(seed));
            match &w {
                Workload::Local(strings) => {
                    for s in strings {
                        prop_assert_eq!(
                            s.first_nonsequential(), None,
                            "{} has a non-sequential portion", pattern
                        );
                    }
                }
                Workload::Global(s) => {
                    prop_assert_eq!(s.first_nonsequential(), None);
                }
            }
        }
    }

    #[test]
    fn generation_is_reproducible((params, seed) in params_strategy()) {
        for pattern in AccessPattern::ALL {
            let a = Workload::generate(pattern, &params, &mut Rng::seeded(seed));
            let b = Workload::generate(pattern, &params, &mut Rng::seeded(seed));
            prop_assert_eq!(a.total_reads(), b.total_reads());
            match (&a, &b) {
                (Workload::Local(x), Workload::Local(y)) => prop_assert_eq!(x, y),
                (Workload::Global(x), Workload::Global(y)) => prop_assert_eq!(x, y),
                _ => prop_assert!(false, "locality class changed between runs"),
            }
        }
    }

    #[test]
    fn whole_file_patterns_cover_exactly((params, seed) in params_strategy()) {
        // gw covers blocks 0..total exactly once.
        let w = Workload::generate(AccessPattern::GlobalWholeFile, &params, &mut Rng::seeded(seed));
        let s = w.global_string();
        let mut seen = vec![false; params.total_reads as usize];
        for a in s.accesses() {
            prop_assert!(!seen[a.block.index()], "gw read a block twice");
            seen[a.block.index()] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));

        // lfp covers the file exactly once across all processes.
        let w = Workload::generate(AccessPattern::LocalFixedPortions, &params, &mut Rng::seeded(seed));
        let Workload::Local(strings) = &w else { unreachable!() };
        let mut seen = vec![0u32; params.file_blocks as usize];
        for s in strings {
            for a in s.accesses() {
                seen[a.block.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "lfp coverage not exactly once");
    }

    #[test]
    fn lfp_portion_geometry_is_regular((params, seed) in params_strategy()) {
        let w = Workload::generate(AccessPattern::LocalFixedPortions, &params, &mut Rng::seeded(seed));
        let Workload::Local(strings) = &w else { unreachable!() };
        let len = params.fixed_portion_len as usize;
        for s in strings {
            // Portion starts are spaced procs*len apart.
            let starts: Vec<u32> = s
                .accesses()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % len == 0)
                .map(|(_, a)| a.block.0)
                .collect();
            for w2 in starts.windows(2) {
                prop_assert_eq!(
                    (w2[1] as i64 - w2[0] as i64).rem_euclid(params.file_blocks as i64) as u32
                        % (params.procs as u32 * params.fixed_portion_len),
                    0,
                    "irregular lfp spacing"
                );
            }
        }
    }

    #[test]
    fn local_random_portions_stay_per_process((params, seed) in params_strategy()) {
        let w = Workload::generate(AccessPattern::LocalRandomPortions, &params, &mut Rng::seeded(seed));
        let Workload::Local(strings) = &w else { unreachable!() };
        prop_assert_eq!(strings.len(), params.procs as usize);
        let per = params.total_reads / params.procs as u32;
        for s in strings {
            prop_assert_eq!(s.len(), per as usize);
        }
    }
}
