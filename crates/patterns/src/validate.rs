//! Workload conformance checking.
//!
//! Given a [`Workload`] and the [`AccessPattern`] it claims to embody,
//! [`validate`] verifies the structural properties the taxonomy promises:
//! locality class, per-portion sequentiality, portion regularity for the
//! fixed-portion patterns, whole-file coverage for the `*w` patterns, and
//! process disjointness where the pattern requires it. The testbed's own
//! generators pass by construction (property-tested); the checker exists so
//! user-supplied custom workloads can be validated before a run and so
//! experiments can assert what they consumed.

use std::collections::HashSet;

use crate::gen::Workload;
use crate::refstring::RefString;
use crate::taxonomy::AccessPattern;

/// A conformance violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The workload's locality class (local/global) does not match the
    /// pattern's.
    WrongLocality {
        /// Whether the pattern expects a global workload.
        expected_global: bool,
    },
    /// A portion contains non-consecutive blocks.
    NonSequentialPortion {
        /// Which process's string (0 for global workloads).
        proc: usize,
        /// Index of the offending access.
        index: usize,
    },
    /// A fixed-portion pattern has portions of differing lengths.
    IrregularPortionLength {
        /// Which process's string (0 for global workloads).
        proc: usize,
        /// The lengths observed.
        lengths: Vec<u32>,
    },
    /// A whole-file pattern does not read a contiguous prefix exactly once
    /// (per process for `lw`, collectively for `gw`).
    IncompleteCoverage {
        /// Which process's string (0 for global workloads).
        proc: usize,
    },
    /// Processes of a disjoint pattern share blocks.
    UnexpectedOverlap {
        /// A block read by more than one process.
        block: u32,
    },
}

/// Portion lengths of a reference string.
fn portion_lengths(s: &RefString) -> Vec<u32> {
    let mut lengths = Vec::new();
    let mut current = 0u32;
    let mut cur_portion = None;
    for a in s.accesses() {
        if cur_portion == Some(a.portion) {
            current += 1;
        } else {
            if cur_portion.is_some() {
                lengths.push(current);
            }
            cur_portion = Some(a.portion);
            current = 1;
        }
    }
    if cur_portion.is_some() {
        lengths.push(current);
    }
    lengths
}

/// Does the string read exactly the blocks `0..n` once each, in order?
fn is_whole_prefix(s: &RefString) -> bool {
    s.accesses()
        .iter()
        .enumerate()
        .all(|(i, a)| a.block.0 == i as u32)
}

/// Check `workload` against the structural promises of `pattern`.
/// Returns all violations found (empty = conformant).
pub fn validate(pattern: AccessPattern, workload: &Workload) -> Vec<Violation> {
    let mut violations = Vec::new();

    if pattern.is_global() != workload.is_global() {
        violations.push(Violation::WrongLocality {
            expected_global: pattern.is_global(),
        });
        return violations; // nothing else is meaningful
    }

    let strings: Vec<&RefString> = match workload {
        Workload::Local(v) => v.iter().collect(),
        Workload::Global(s) => vec![s],
    };

    // Per-portion sequentiality holds for every sequential pattern.
    for (proc, s) in strings.iter().enumerate() {
        if let Some(index) = s.first_nonsequential() {
            violations.push(Violation::NonSequentialPortion { proc, index });
        }
    }

    // Fixed-portion patterns: equal portion lengths.
    if matches!(
        pattern,
        AccessPattern::LocalFixedPortions | AccessPattern::GlobalFixedPortions
    ) {
        for (proc, s) in strings.iter().enumerate() {
            let lengths = portion_lengths(s);
            if lengths.windows(2).any(|w| w[0] != w[1]) {
                violations.push(Violation::IrregularPortionLength { proc, lengths });
            }
        }
    }

    // Whole-file patterns: a contiguous prefix read exactly once, in order.
    match pattern {
        AccessPattern::LocalWholeFile => {
            for (proc, s) in strings.iter().enumerate() {
                if !is_whole_prefix(s) {
                    violations.push(Violation::IncompleteCoverage { proc });
                }
            }
        }
        AccessPattern::GlobalWholeFile if !is_whole_prefix(strings[0]) => {
            violations.push(Violation::IncompleteCoverage { proc: 0 });
        }
        _ => {}
    }

    // lfp processes never read a block twice themselves, and across
    // processes are either fully disjoint (the grid shape: the machine
    // covers the file once collectively) or all read the same block set
    // (the lead shape: every process covers the whole file, in laps that
    // keep them disjoint *in time*). lrp may overlap by coincidence; lw
    // overlaps fully by definition.
    if pattern == AccessPattern::LocalFixedPortions {
        let sets: Vec<HashSet<u32>> = strings
            .iter()
            .map(|s| s.accesses().iter().map(|a| a.block.0).collect())
            .collect();
        for (proc, (s, set)) in strings.iter().zip(&sets).enumerate() {
            if set.len() != s.len() {
                // A repeated block within one process's own string.
                violations.push(Violation::IncompleteCoverage { proc });
            }
        }
        let disjoint = {
            let mut seen: HashSet<u32> = HashSet::new();
            sets.iter().flatten().all(|&b| seen.insert(b))
        };
        let identical = sets.windows(2).all(|w| w[0] == w[1]);
        if !disjoint && !identical {
            let block = sets
                .iter()
                .enumerate()
                .flat_map(|(i, set)| {
                    sets[..i]
                        .iter()
                        .flat_map(move |prev| set.intersection(prev))
                })
                .next()
                .copied()
                .unwrap_or(0);
            violations.push(Violation::UnexpectedOverlap { block });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadParams;
    use crate::refstring::{Access, RefString};
    use rt_disk::BlockId;
    use rt_sim::Rng;

    #[test]
    fn generated_workloads_conform() {
        let params = WorkloadParams::paper();
        for pattern in AccessPattern::ALL {
            let w = Workload::generate(pattern, &params, &mut Rng::seeded(5));
            assert_eq!(
                validate(pattern, &w),
                Vec::new(),
                "{pattern} generator violated its own taxonomy"
            );
        }
    }

    #[test]
    fn locality_mismatch_detected() {
        let params = WorkloadParams::paper();
        let w = Workload::generate(AccessPattern::GlobalWholeFile, &params, &mut Rng::seeded(5));
        let v = validate(AccessPattern::LocalWholeFile, &w);
        assert_eq!(
            v,
            vec![Violation::WrongLocality {
                expected_global: false
            }]
        );
    }

    #[test]
    fn nonsequential_portion_detected() {
        let s = RefString::new(vec![
            Access {
                block: BlockId(0),
                portion: 0,
                last_of_portion: false,
            },
            Access {
                block: BlockId(7),
                portion: 0,
                last_of_portion: true,
            },
        ]);
        let w = Workload::Global(s);
        let v = validate(AccessPattern::GlobalWholeFile, &w);
        assert!(v.contains(&Violation::NonSequentialPortion { proc: 0, index: 0 }));
    }

    #[test]
    fn irregular_fixed_portions_detected() {
        let s = RefString::from_portions(&[(0, 5), (100, 3)]);
        let w = Workload::Global(s);
        let v = validate(AccessPattern::GlobalFixedPortions, &w);
        assert!(matches!(
            v.as_slice(),
            [Violation::IrregularPortionLength { proc: 0, .. }]
        ));
    }

    #[test]
    fn incomplete_whole_file_detected() {
        // Starts at block 1: not a whole prefix.
        let s = RefString::from_portions(&[(1, 10)]);
        let w = Workload::Global(s);
        let v = validate(AccessPattern::GlobalWholeFile, &w);
        assert_eq!(v, vec![Violation::IncompleteCoverage { proc: 0 }]);
    }

    #[test]
    fn lfp_overlap_detected() {
        let a = RefString::from_portions(&[(0, 5)]);
        let b = RefString::from_portions(&[(4, 5)]); // shares block 4
        let w = Workload::Local(vec![a, b]);
        let v = validate(AccessPattern::LocalFixedPortions, &w);
        assert!(v.contains(&Violation::UnexpectedOverlap { block: 4 }));
    }

    #[test]
    fn portion_lengths_helper() {
        let s = RefString::from_portions(&[(0, 3), (10, 3), (20, 2)]);
        assert_eq!(portion_lengths(&s), vec![3, 3, 2]);
        assert_eq!(portion_lengths(&RefString::default()), Vec::<u32>::new());
    }
}
