//! On-the-fly access-pattern predictors (extension).
//!
//! The paper supplies the prefetcher with the reference string in advance —
//! an optimistic upper bound — and defers "on-the-fly prediction algorithms"
//! to future work. This module implements two such predictors so the
//! oracle's advantage can be measured:
//!
//! * [`Obl`] — classic one-block lookahead: after a read of block *i*,
//!   predict *i + 1*. The dominant technique in uniprocessor disk caches
//!   (§II-B).
//! * [`PortionLearner`] — observes a process's accesses, detects regular
//!   portion length and stride, and once confident predicts through and
//!   across portion boundaries (what an adaptive `lfp` prefetcher needs).

use rt_disk::BlockId;

/// A predictor consumes the observed access stream of one process and
/// yields candidate blocks to prefetch, nearest-future first.
///
/// Predictors are `Send` and clonable through [`Predictor::clone_box`], so
/// a world holding boxed predictors can be snapshotted mid-run and each
/// fork carries its own independent copy of the learned state.
pub trait Predictor: Send {
    /// Observe one demand access.
    fn observe(&mut self, block: BlockId);

    /// Predict up to `n` future blocks, nearest first.
    fn predict(&self, n: usize) -> Vec<BlockId>;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Clone the predictor, learned state included, into a fresh box.
    fn clone_box(&self) -> Box<dyn Predictor>;
}

impl Clone for Box<dyn Predictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One-block lookahead, generalized to a run of `depth` successors.
#[derive(Clone, Debug)]
pub struct Obl {
    last: Option<BlockId>,
    depth: u32,
    file_blocks: u32,
}

impl Obl {
    /// Predict up to `depth` blocks past the last access, never past the
    /// end of the file.
    pub fn new(depth: u32, file_blocks: u32) -> Self {
        assert!(depth >= 1);
        Obl {
            last: None,
            depth,
            file_blocks,
        }
    }
}

impl Predictor for Obl {
    fn observe(&mut self, block: BlockId) {
        self.last = Some(block);
    }

    fn predict(&self, n: usize) -> Vec<BlockId> {
        let Some(last) = self.last else {
            return Vec::new();
        };
        (1..=self.depth.min(n as u32))
            .map(|d| last.0 + d)
            .take_while(|&b| b < self.file_blocks)
            .map(BlockId)
            .collect()
    }

    fn name(&self) -> &'static str {
        "obl"
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Learns a `(portion length, stride between portion starts)` pair from the
/// observed stream of a single process.
///
/// The learner segments the stream into maximal sequential runs. Once
/// `confidence_runs` consecutive completed runs agree on length and on the
/// start-to-start stride, it extrapolates: remaining blocks of the current
/// run first, then blocks of following portions.
#[derive(Clone, Debug)]
pub struct PortionLearner {
    history: Vec<BlockId>,
    /// Completed runs as (start, len).
    runs: Vec<(u32, u32)>,
    /// Current run (start, len).
    current: Option<(u32, u32)>,
    confidence_runs: usize,
    file_blocks: u32,
}

impl PortionLearner {
    /// A learner requiring `confidence_runs` agreeing portions before it
    /// predicts across boundaries.
    pub fn new(confidence_runs: usize, file_blocks: u32) -> Self {
        assert!(confidence_runs >= 1);
        PortionLearner {
            history: Vec::new(),
            runs: Vec::new(),
            current: None,
            confidence_runs,
            file_blocks,
        }
    }

    /// The learned (length, stride), if confident.
    pub fn learned(&self) -> Option<(u32, u32)> {
        if self.runs.len() < self.confidence_runs + 1 {
            return None;
        }
        let recent = &self.runs[self.runs.len() - self.confidence_runs - 1..];
        let len = recent[0].1;
        if recent.iter().any(|&(_, l)| l != len) {
            return None;
        }
        let stride = recent[1].0.wrapping_sub(recent[0].0);
        for w in recent.windows(2) {
            if w[1].0.wrapping_sub(w[0].0) != stride {
                return None;
            }
        }
        Some((len, stride))
    }
}

impl Predictor for PortionLearner {
    fn observe(&mut self, block: BlockId) {
        self.history.push(block);
        match self.current {
            Some((start, len)) if block.0 == start + len => {
                self.current = Some((start, len + 1));
            }
            Some(run) => {
                self.runs.push(run);
                self.current = Some((block.0, 1));
            }
            None => {
                self.current = Some((block.0, 1));
            }
        }
    }

    fn predict(&self, n: usize) -> Vec<BlockId> {
        let Some((start, len)) = self.current else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(n);
        match self.learned() {
            Some((plen, stride)) if stride > 0 => {
                // Rest of the current portion, then subsequent portions.
                let mut portion_start = start;
                let mut next = start + len;
                while out.len() < n {
                    if next >= self.file_blocks {
                        break;
                    }
                    if next < portion_start + plen {
                        out.push(BlockId(next));
                        next += 1;
                    } else {
                        portion_start = portion_start.wrapping_add(stride);
                        if portion_start >= self.file_blocks {
                            break;
                        }
                        next = portion_start;
                    }
                }
            }
            _ => {
                // Not confident: behave like OBL within the current run.
                let mut next = start + len;
                while out.len() < n && next < self.file_blocks {
                    out.push(BlockId(next));
                    next += 1;
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "portion-learner"
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obl_predicts_successors() {
        let mut p = Obl::new(3, 100);
        assert!(p.predict(3).is_empty(), "nothing before first observation");
        p.observe(BlockId(10));
        assert_eq!(p.predict(3), vec![BlockId(11), BlockId(12), BlockId(13)]);
        assert_eq!(p.predict(2), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn obl_stops_at_eof() {
        let mut p = Obl::new(4, 12);
        p.observe(BlockId(10));
        assert_eq!(p.predict(4), vec![BlockId(11)]);
    }

    #[test]
    fn learner_tracks_current_run_before_confidence() {
        let mut p = PortionLearner::new(2, 1000);
        for b in [0u32, 1, 2] {
            p.observe(BlockId(b));
        }
        assert_eq!(p.learned(), None);
        // Falls back to within-run lookahead.
        assert_eq!(p.predict(2), vec![BlockId(3), BlockId(4)]);
    }

    #[test]
    fn learner_detects_fixed_portions() {
        // Portions of length 5 at stride 100: 0-4, 100-104, 200-204, ...
        let mut p = PortionLearner::new(2, 10_000);
        for k in 0..3u32 {
            for j in 0..5u32 {
                p.observe(BlockId(k * 100 + j));
            }
        }
        p.observe(BlockId(300)); // starts the fourth portion
        assert_eq!(p.learned(), Some((5, 100)));
        // Predict rest of portion 3 then into portion 4.
        assert_eq!(
            p.predict(6),
            vec![
                BlockId(301),
                BlockId(302),
                BlockId(303),
                BlockId(304),
                BlockId(400),
                BlockId(401)
            ]
        );
    }

    #[test]
    fn learner_rejects_irregular_portions() {
        let mut p = PortionLearner::new(2, 10_000);
        // Lengths 3, 5, 2 — never agree.
        for b in [0u32, 1, 2] {
            p.observe(BlockId(b));
        }
        for b in [50u32, 51, 52, 53, 54] {
            p.observe(BlockId(b));
        }
        for b in [90u32, 91] {
            p.observe(BlockId(b));
        }
        p.observe(BlockId(200));
        assert_eq!(p.learned(), None);
    }

    #[test]
    fn learner_predictions_stay_in_file() {
        let mut p = PortionLearner::new(1, 210);
        for k in 0..2u32 {
            for j in 0..5u32 {
                p.observe(BlockId(k * 100 + j));
            }
        }
        p.observe(BlockId(200));
        assert_eq!(p.learned(), Some((5, 100)));
        let preds = p.predict(20);
        assert!(preds.iter().all(|b| b.0 < 210));
        assert_eq!(
            preds,
            vec![BlockId(201), BlockId(202), BlockId(203), BlockId(204)]
        );
    }

    #[test]
    fn names() {
        assert_eq!(Obl::new(1, 10).name(), "obl");
        assert_eq!(PortionLearner::new(1, 10).name(), "portion-learner");
    }
}
