//! The paper's taxonomy of parallel file access patterns (Fig. 2) and
//! synchronization styles (§IV-B).
//!
//! Sequential access splits along three axes: **local** (each process reads
//! consecutive blocks itself) vs **global** (the merged reference string of
//! all processes is sequential), whether sequential *portions* have
//! **regular** or **random** length/spacing, and whether the per-process
//! block sets **overlap** or are **disjoint**. The six patterns embedded in
//! the paper's synthetic workload are the values of [`AccessPattern`].

use std::fmt;

/// The six representative parallel file access patterns of §IV-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// `lfp` — local sequential portions of regular length and spacing, at
    /// different places in the file for each process. The prefetcher may
    /// predict across portion boundaries.
    LocalFixedPortions,
    /// `lrp` — local sequential portions of random length and spacing;
    /// portions may overlap between processes by coincidence. Prefetching
    /// past the end of the current portion is not permitted.
    LocalRandomPortions,
    /// `lw` — every process reads the entire file from beginning to end:
    /// a single fully-overlapped portion with strong interprocess temporal
    /// locality.
    LocalWholeFile,
    /// `gfp` — processes cooperate so the merged reference string forms
    /// sequential portions of regular length and spacing.
    GlobalFixedPortions,
    /// `grp` — globally sequential portions of random length and spacing.
    GlobalRandomPortions,
    /// `gw` — processes cooperate to read the whole file exactly once;
    /// globally sequential, locally no discernible pattern.
    GlobalWholeFile,
}

impl AccessPattern {
    /// All six patterns, in the paper's order.
    pub const ALL: [AccessPattern; 6] = [
        AccessPattern::LocalFixedPortions,
        AccessPattern::LocalRandomPortions,
        AccessPattern::LocalWholeFile,
        AccessPattern::GlobalFixedPortions,
        AccessPattern::GlobalRandomPortions,
        AccessPattern::GlobalWholeFile,
    ];

    /// The paper's abbreviation (`lfp`, `lrp`, `lw`, `gfp`, `grp`, `gw`).
    pub fn abbrev(self) -> &'static str {
        match self {
            AccessPattern::LocalFixedPortions => "lfp",
            AccessPattern::LocalRandomPortions => "lrp",
            AccessPattern::LocalWholeFile => "lw",
            AccessPattern::GlobalFixedPortions => "gfp",
            AccessPattern::GlobalRandomPortions => "grp",
            AccessPattern::GlobalWholeFile => "gw",
        }
    }

    /// Parse a paper abbreviation.
    pub fn from_abbrev(s: &str) -> Option<AccessPattern> {
        Self::ALL.iter().copied().find(|p| p.abbrev() == s)
    }

    /// True for the three patterns whose sequentiality is per-process.
    pub fn is_local(self) -> bool {
        matches!(
            self,
            AccessPattern::LocalFixedPortions
                | AccessPattern::LocalRandomPortions
                | AccessPattern::LocalWholeFile
        )
    }

    /// True for the three patterns whose sequentiality is only visible in
    /// the merged reference string.
    pub fn is_global(self) -> bool {
        !self.is_local()
    }

    /// True for patterns with multiple sequential portions (everything but
    /// the whole-file patterns).
    pub fn is_portioned(self) -> bool {
        !matches!(
            self,
            AccessPattern::LocalWholeFile | AccessPattern::GlobalWholeFile
        )
    }

    /// True when portion length and spacing are regular, so the prefetcher
    /// may predict past a portion boundary (§IV-B: allowed for `lfp`/`gfp`,
    /// forbidden for `lrp`/`grp`; whole-file patterns have one portion).
    pub fn may_prefetch_across_portions(self) -> bool {
        !matches!(
            self,
            AccessPattern::LocalRandomPortions | AccessPattern::GlobalRandomPortions
        )
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The four synchronization styles of §IV-B: barriers tied to the amount of
/// data processed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncStyle {
    /// No synchronization at all.
    None,
    /// All processes synchronize after each has read this many blocks.
    /// The paper uses 10.
    BlocksPerProc(u32),
    /// All processes synchronize each time the computation as a whole has
    /// read this many blocks. The paper uses 200.
    BlocksTotal(u32),
    /// All processes synchronize after each sequential portion (local or
    /// global). Not used with `lw` in the paper (footnote 3).
    EachPortion,
}

impl SyncStyle {
    /// The paper's four styles with its parameter choices.
    pub const PAPER: [SyncStyle; 4] = [
        SyncStyle::BlocksPerProc(10),
        SyncStyle::BlocksTotal(200),
        SyncStyle::None,
        SyncStyle::EachPortion,
    ];

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            SyncStyle::None => "none".to_string(),
            SyncStyle::BlocksPerProc(n) => format!("per-proc:{n}"),
            SyncStyle::BlocksTotal(n) => format!("total:{n}"),
            SyncStyle::EachPortion => "portion".to_string(),
        }
    }

    /// The paper never pairs portion synchronization with `lw` (each
    /// process has one giant portion, so it cannot be compared fairly).
    pub fn valid_for(self, pattern: AccessPattern) -> bool {
        !(self == SyncStyle::EachPortion && pattern == AccessPattern::LocalWholeFile)
    }
}

impl fmt::Display for SyncStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs_round_trip() {
        for p in AccessPattern::ALL {
            assert_eq!(AccessPattern::from_abbrev(p.abbrev()), Some(p));
        }
        assert_eq!(AccessPattern::from_abbrev("zzz"), None);
    }

    #[test]
    fn locality_split() {
        let locals: Vec<_> = AccessPattern::ALL.iter().filter(|p| p.is_local()).collect();
        assert_eq!(locals.len(), 3);
        for p in AccessPattern::ALL {
            assert_ne!(p.is_local(), p.is_global());
        }
    }

    #[test]
    fn portion_rules_match_paper() {
        use AccessPattern::*;
        assert!(LocalFixedPortions.may_prefetch_across_portions());
        assert!(GlobalFixedPortions.may_prefetch_across_portions());
        assert!(!LocalRandomPortions.may_prefetch_across_portions());
        assert!(!GlobalRandomPortions.may_prefetch_across_portions());
        assert!(LocalWholeFile.may_prefetch_across_portions());
        assert!(GlobalWholeFile.may_prefetch_across_portions());
        assert!(!LocalWholeFile.is_portioned());
        assert!(!GlobalWholeFile.is_portioned());
        assert!(LocalFixedPortions.is_portioned());
    }

    #[test]
    fn lw_excludes_portion_sync() {
        assert!(!SyncStyle::EachPortion.valid_for(AccessPattern::LocalWholeFile));
        assert!(SyncStyle::EachPortion.valid_for(AccessPattern::GlobalWholeFile));
        assert!(SyncStyle::None.valid_for(AccessPattern::LocalWholeFile));
    }

    #[test]
    fn labels() {
        assert_eq!(SyncStyle::BlocksPerProc(10).label(), "per-proc:10");
        assert_eq!(SyncStyle::BlocksTotal(200).label(), "total:200");
        assert_eq!(format!("{}", AccessPattern::GlobalWholeFile), "gw");
    }
}
