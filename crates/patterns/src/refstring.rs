//! Reference strings: the block sequences an experiment reads.
//!
//! A [`RefString`] is an ordered list of [`Access`]es annotated with the
//! sequential-portion structure the access belongs to. Local patterns carry
//! one string per process; global patterns carry a single string that the
//! processes consume cooperatively (§IV-B: "the encoding of the reference
//! string for local patterns is a set of strings, one per processor; in the
//! global patterns, a single global reference string is used").

use rt_disk::BlockId;

/// One read in a reference string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The block read.
    pub block: BlockId,
    /// Index of the sequential portion this access belongs to.
    pub portion: u32,
    /// True for the final access of its portion (drives portion-style
    /// synchronization and the `*rp` prefetch stop rule).
    pub last_of_portion: bool,
}

/// An ordered sequence of accesses with portion annotations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefString {
    accesses: Vec<Access>,
}

impl RefString {
    /// Build from raw accesses. Portion indices must be non-decreasing.
    pub fn new(accesses: Vec<Access>) -> Self {
        debug_assert!(
            accesses.windows(2).all(|w| w[0].portion <= w[1].portion),
            "portion indices must be non-decreasing"
        );
        RefString { accesses }
    }

    /// Build from a list of portions, each a run of consecutive blocks
    /// `[start, start + len)`.
    pub fn from_portions(portions: &[(u32, u32)]) -> Self {
        let mut accesses = Vec::new();
        for (pi, &(start, len)) in portions.iter().enumerate() {
            for j in 0..len {
                accesses.push(Access {
                    block: BlockId(start + j),
                    portion: pi as u32,
                    last_of_portion: j + 1 == len,
                });
            }
        }
        RefString { accesses }
    }

    /// Number of accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The access at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Access> {
        self.accesses.get(i).copied()
    }

    /// All accesses in order.
    #[inline]
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of distinct portions.
    pub fn portion_count(&self) -> u32 {
        self.accesses.last().map_or(0, |a| a.portion + 1)
    }

    /// Largest block number referenced (for sizing the file).
    pub fn max_block(&self) -> Option<BlockId> {
        self.accesses.iter().map(|a| a.block).max()
    }

    /// Verify the per-portion sequentiality invariant: within a portion,
    /// consecutive accesses reference consecutive blocks. Returns the index
    /// of the first violation, if any.
    pub fn first_nonsequential(&self) -> Option<usize> {
        self.accesses.windows(2).position(|w| {
            w[0].portion == w[1].portion && w[1].block.0 != w[0].block.0.wrapping_add(1)
        })
    }
}

/// A position cursor over a reference string. Local patterns give each
/// process its own cursor; global patterns share one cursor among all
/// processes (cooperative consumption — each process takes the next access
/// when it is ready to read).
#[derive(Clone, Debug)]
pub struct Cursor {
    pos: usize,
}

impl Cursor {
    /// A cursor at the beginning.
    pub fn new() -> Self {
        Cursor { pos: 0 }
    }

    /// The next access, advancing the cursor.
    pub fn take(&mut self, string: &RefString) -> Option<Access> {
        let a = string.get(self.pos);
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    /// Position of the next unconsumed access (the demand frontier).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Accesses not yet consumed.
    pub fn remaining(&self, string: &RefString) -> usize {
        string.len().saturating_sub(self.pos)
    }
}

impl Default for Cursor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_portions_annotates_boundaries() {
        let s = RefString::from_portions(&[(0, 3), (10, 2)]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.portion_count(), 2);
        assert_eq!(
            s.get(2),
            Some(Access {
                block: BlockId(2),
                portion: 0,
                last_of_portion: true
            })
        );
        assert_eq!(
            s.get(3),
            Some(Access {
                block: BlockId(10),
                portion: 1,
                last_of_portion: false
            })
        );
        assert_eq!(s.max_block(), Some(BlockId(11)));
        assert_eq!(s.first_nonsequential(), None);
    }

    #[test]
    fn sequentiality_check_finds_violation() {
        let s = RefString::new(vec![
            Access {
                block: BlockId(0),
                portion: 0,
                last_of_portion: false,
            },
            Access {
                block: BlockId(2),
                portion: 0,
                last_of_portion: true,
            },
        ]);
        assert_eq!(s.first_nonsequential(), Some(0));
    }

    #[test]
    fn cursor_consumes_in_order() {
        let s = RefString::from_portions(&[(5, 3)]);
        let mut c = Cursor::new();
        assert_eq!(c.remaining(&s), 3);
        assert_eq!(c.take(&s).unwrap().block, BlockId(5));
        assert_eq!(c.take(&s).unwrap().block, BlockId(6));
        assert_eq!(c.position(), 2);
        assert_eq!(c.take(&s).unwrap().block, BlockId(7));
        assert_eq!(c.take(&s), None);
        assert_eq!(c.position(), 3);
        assert_eq!(c.remaining(&s), 0);
    }

    #[test]
    fn empty_string() {
        let s = RefString::default();
        assert!(s.is_empty());
        assert_eq!(s.portion_count(), 0);
        assert_eq!(s.max_block(), None);
        let mut c = Cursor::new();
        assert_eq!(c.take(&s), None);
    }
}
