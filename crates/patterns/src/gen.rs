//! Generators for the six synthetic access patterns (§IV-B, §IV-D).
//!
//! The paper's grid configuration reads 2000 blocks in total from a
//! 2000-block file with 20 processes (100 reads per process for local
//! patterns); the prefetch-lead experiments (§V-E) instead have each local
//! process read 2000 blocks (40 000 total). Both shapes are supported.

use rt_disk::BlockId;
use rt_sim::Rng;

use crate::refstring::{Access, RefString};
use crate::taxonomy::AccessPattern;

/// Parameters shared by all generators.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Number of cooperating processes (one per node).
    pub procs: u16,
    /// File size in blocks.
    pub file_blocks: u32,
    /// Total reads across all processes. Must be divisible by `procs`.
    pub total_reads: u32,
    /// Portion length for the local fixed-portion pattern (`lfp`). Local
    /// portions are per-process, so they are short relative to each
    /// process's share of the reads.
    pub fixed_portion_len: u32,
    /// Portion length for the global fixed-portion pattern (`gfp`). Global
    /// portions are consumed by all processes jointly, so they are sized
    /// relative to the whole file.
    pub global_fixed_portion_len: u32,
    /// Smallest random portion length for `lrp`.
    pub rand_portion_min: u32,
    /// Largest random portion length for `lrp`.
    pub rand_portion_max: u32,
    /// Smallest random portion length for `grp`.
    pub global_rand_portion_min: u32,
    /// Largest random portion length for `grp`.
    pub global_rand_portion_max: u32,
}

impl WorkloadParams {
    /// The paper's grid configuration: 20 processes, 2000-block file,
    /// 2000 total reads, portions of 5 blocks (local) — we use 5 for both
    /// fixed-portion patterns so portion structure is comparable.
    pub fn paper() -> Self {
        WorkloadParams {
            procs: 20,
            file_blocks: 2000,
            total_reads: 2000,
            fixed_portion_len: 5,
            global_fixed_portion_len: 50,
            rand_portion_min: 1,
            rand_portion_max: 10,
            global_rand_portion_min: 20,
            global_rand_portion_max: 80,
        }
    }

    /// The §V-E prefetch-lead configuration for local patterns: each of the
    /// 20 processes reads the whole 2000-block file (40 000 total reads).
    pub fn paper_lead_local() -> Self {
        WorkloadParams {
            total_reads: 40_000,
            ..WorkloadParams::paper()
        }
    }

    /// Reads issued by each process.
    pub fn reads_per_proc(&self) -> u32 {
        assert!(self.procs > 0, "need at least one process");
        assert_eq!(
            self.total_reads % self.procs as u32,
            0,
            "total_reads must divide evenly among processes"
        );
        self.total_reads / self.procs as u32
    }
}

/// A generated workload: per-process strings for local patterns, one shared
/// string for global patterns.
#[derive(Clone, Debug)]
pub enum Workload {
    /// One reference string per process, consumed independently.
    Local(Vec<RefString>),
    /// One shared reference string, consumed cooperatively.
    Global(RefString),
}

impl Workload {
    /// Generate the reference string(s) for `pattern` under `params`,
    /// drawing any randomness from `rng`.
    pub fn generate(pattern: AccessPattern, params: &WorkloadParams, rng: &mut Rng) -> Workload {
        match pattern {
            AccessPattern::LocalFixedPortions => Workload::Local(gen_lfp(params)),
            AccessPattern::LocalRandomPortions => Workload::Local(gen_lrp(params, rng)),
            AccessPattern::LocalWholeFile => Workload::Local(gen_lw(params)),
            AccessPattern::GlobalFixedPortions => Workload::Global(gen_gfp(params)),
            AccessPattern::GlobalRandomPortions => Workload::Global(gen_grp(params, rng)),
            AccessPattern::GlobalWholeFile => Workload::Global(gen_gw(params)),
        }
    }

    /// True for globally consumed workloads.
    pub fn is_global(&self) -> bool {
        matches!(self, Workload::Global(_))
    }

    /// Total reads across all processes.
    pub fn total_reads(&self) -> usize {
        match self {
            Workload::Local(strings) => strings.iter().map(|s| s.len()).sum(),
            Workload::Global(s) => s.len(),
        }
    }

    /// Largest block referenced anywhere.
    pub fn max_block(&self) -> Option<BlockId> {
        match self {
            Workload::Local(strings) => strings.iter().filter_map(|s| s.max_block()).max(),
            Workload::Global(s) => s.max_block(),
        }
    }

    /// The per-process string of a local workload.
    pub fn local_string(&self, proc: usize) -> &RefString {
        match self {
            Workload::Local(strings) => &strings[proc],
            Workload::Global(_) => panic!("local_string on a global workload"),
        }
    }

    /// The shared string of a global workload.
    pub fn global_string(&self) -> &RefString {
        match self {
            Workload::Global(s) => s,
            Workload::Local(_) => panic!("global_string on a local workload"),
        }
    }
}

/// `lfp`: regular portions at per-process offsets.
///
/// * When the whole grid covers the file once (`total_reads == file_blocks`),
///   process *p*'s *k*-th portion starts at `p·L + k·P·L`: portions of
///   length `L` spaced `P·L` apart, disjoint across processes, jointly
///   covering the file exactly once.
/// * When each process reads the whole file (`reads_per_proc ==
///   file_blocks`, the §V-E shape), process *p* reads the file rotated by
///   `p·file/P`, cut into portions of length `L` — regular and at different
///   places per process, fully overlapped.
fn gen_lfp(params: &WorkloadParams) -> Vec<RefString> {
    let p_count = params.procs as u32;
    let rpp = params.reads_per_proc();
    let len = params.fixed_portion_len;
    assert!(len > 0, "portion length must be positive");
    assert_eq!(rpp % len, 0, "reads per process must be whole portions");
    let portions_per_proc = rpp / len;

    (0..p_count)
        .map(|p| {
            let mut accesses = Vec::with_capacity(rpp as usize);
            if rpp == params.file_blocks {
                // Whole-file shape (lead experiments): the grid geometry
                // repeated in "laps". In lap l, process p reads the
                // interleaved subset numbered (p + l) mod P — portions of
                // length L at a regular stride of P·L, and at any instant
                // the processes cover disjoint subsets, preserving the
                // no-sharing character of lfp at 20× the length.
                let stride = p_count * len;
                let portions_per_lap = params.file_blocks / stride;
                let laps = portions_per_proc / portions_per_lap;
                debug_assert_eq!(portions_per_lap * laps, portions_per_proc);
                let mut portion = 0;
                for lap in 0..laps {
                    let subset = (p + lap) % p_count;
                    for k in 0..portions_per_lap {
                        for j in 0..len {
                            let block = subset * len + k * stride + j;
                            accesses.push(Access {
                                block: BlockId(block),
                                portion,
                                last_of_portion: j + 1 == len,
                            });
                        }
                        portion += 1;
                    }
                }
            } else {
                // Disjoint interleaved shape (grid experiments); wraps
                // modulo the file if the pattern is larger than the file.
                let stride = p_count * len;
                for k in 0..portions_per_proc {
                    for j in 0..len {
                        let block = (p * len + k * stride + j) % params.file_blocks;
                        accesses.push(Access {
                            block: BlockId(block),
                            portion: k,
                            last_of_portion: j + 1 == len,
                        });
                    }
                }
            }
            RefString::new(accesses)
        })
        .collect()
}

/// `lrp`: random-length portions at random places, per process; overlaps
/// with other processes happen by coincidence.
fn gen_lrp(params: &WorkloadParams, rng: &mut Rng) -> Vec<RefString> {
    let rpp = params.reads_per_proc();
    (0..params.procs)
        .map(|p| {
            let mut local = rng.split(0x6c72_7000 + p as u64);
            random_portions(
                params.file_blocks,
                rpp,
                params.rand_portion_min,
                params.rand_portion_max,
                &mut local,
            )
        })
        .collect()
}

/// `lw`: every process reads blocks `0 .. reads_per_proc` in order — a
/// single fully-overlapped portion. (In the paper's grid this is 100 blocks
/// per process so the total stays at 2000 reads, comparable with the global
/// patterns; in the lead experiments it is the whole 2000-block file.)
fn gen_lw(params: &WorkloadParams) -> Vec<RefString> {
    let rpp = params.reads_per_proc();
    assert!(
        rpp <= params.file_blocks,
        "lw cannot read past the end of the file"
    );
    let s = RefString::from_portions(&[(0, rpp)]);
    vec![s; params.procs as usize]
}

/// `gfp`: globally sequential portions of length `L` spaced `2L` apart; the
/// file is covered in two passes (even-numbered stretches first, then the
/// odd ones) so length *and* spacing are regular while every block is still
/// read exactly once, keeping the paper's "2000 blocks read" invariant.
fn gen_gfp(params: &WorkloadParams) -> RefString {
    let len = params.global_fixed_portion_len;
    assert!(len > 0, "portion length must be positive");
    assert_eq!(
        params.total_reads, params.file_blocks,
        "gfp covers the file exactly once"
    );
    assert_eq!(
        params.file_blocks % (2 * len),
        0,
        "file must be a whole number of 2L stretches"
    );
    let mut portions = Vec::new();
    for pass in 0..2u32 {
        let mut start = pass * len;
        while start < params.file_blocks {
            portions.push((start, len));
            start += 2 * len;
        }
    }
    RefString::from_portions(&portions)
}

/// `grp`: globally sequential portions of random length and spacing.
fn gen_grp(params: &WorkloadParams, rng: &mut Rng) -> RefString {
    let mut local = rng.split(0x6772_7000);
    random_portions(
        params.file_blocks,
        params.total_reads,
        params.global_rand_portion_min,
        params.global_rand_portion_max,
        &mut local,
    )
}

/// `gw`: the whole file, beginning to end, read exactly once collectively.
fn gen_gw(params: &WorkloadParams) -> RefString {
    assert!(
        params.total_reads <= params.file_blocks,
        "gw cannot read past the end of the file"
    );
    RefString::from_portions(&[(0, params.total_reads)])
}

/// Portions with uniformly random length in `[min, max]` and uniformly
/// random start, accumulated until exactly `count` blocks are covered (the
/// final portion is truncated to fit).
fn random_portions(
    file_blocks: u32,
    count: u32,
    min_len: u32,
    max_len: u32,
    rng: &mut Rng,
) -> RefString {
    assert!(min_len >= 1 && min_len <= max_len);
    assert!(max_len <= file_blocks);
    let mut portions = Vec::new();
    let mut produced = 0;
    while produced < count {
        let len = rng
            .range_inclusive(min_len as u64, max_len as u64)
            .min((count - produced) as u64) as u32;
        let start = rng.below((file_blocks - len + 1) as u64) as u32;
        portions.push((start, len));
        produced += len;
    }
    RefString::from_portions(&portions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> WorkloadParams {
        WorkloadParams::paper()
    }

    #[test]
    fn reads_per_proc_divides() {
        assert_eq!(paper().reads_per_proc(), 100);
        assert_eq!(WorkloadParams::paper_lead_local().reads_per_proc(), 2000);
    }

    #[test]
    fn lfp_grid_covers_file_exactly_once() {
        let w = Workload::generate(
            AccessPattern::LocalFixedPortions,
            &paper(),
            &mut Rng::seeded(1),
        );
        let Workload::Local(strings) = &w else {
            panic!("lfp must be local")
        };
        assert_eq!(strings.len(), 20);
        let mut seen = vec![0u32; 2000];
        for s in strings {
            assert_eq!(s.len(), 100);
            assert_eq!(s.portion_count(), 20);
            assert_eq!(s.first_nonsequential(), None);
            for a in s.accesses() {
                seen[a.block.index()] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every block read exactly once"
        );
    }

    #[test]
    fn lfp_portions_have_fixed_length_and_spacing() {
        let w = Workload::generate(
            AccessPattern::LocalFixedPortions,
            &paper(),
            &mut Rng::seeded(1),
        );
        let s = w.local_string(3);
        // Portion starts: 15, 115, 215, ...
        let starts: Vec<u32> = s
            .accesses()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 == 0)
            .map(|(_, a)| a.block.0)
            .collect();
        assert_eq!(starts[0], 15);
        for w2 in starts.windows(2) {
            assert_eq!(w2[1] - w2[0], 100, "regular spacing");
        }
    }

    #[test]
    fn lfp_lead_shape_rotates_whole_file() {
        let params = WorkloadParams::paper_lead_local();
        let w = Workload::generate(
            AccessPattern::LocalFixedPortions,
            &params,
            &mut Rng::seeded(1),
        );
        let Workload::Local(strings) = &w else {
            panic!()
        };
        for (p, s) in strings.iter().enumerate() {
            assert_eq!(s.len(), 2000);
            // The first lap starts in the process's own interleaved subset.
            assert_eq!(s.get(0).unwrap().block.0, p as u32 * 5);
            // Every block of the file appears exactly once.
            let mut seen = vec![false; 2000];
            for a in s.accesses() {
                assert!(!seen[a.block.index()]);
                seen[a.block.index()] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
        // At equal string positions, processes cover disjoint blocks.
        for pos in [0usize, 7, 500, 1999] {
            let mut blocks: Vec<u32> = strings
                .iter()
                .map(|s| s.get(pos).unwrap().block.0)
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            assert_eq!(blocks.len(), 20, "overlap at position {pos}");
        }
    }

    #[test]
    fn lrp_counts_and_bounds() {
        let w = Workload::generate(
            AccessPattern::LocalRandomPortions,
            &paper(),
            &mut Rng::seeded(2),
        );
        let Workload::Local(strings) = &w else {
            panic!()
        };
        for s in strings {
            assert_eq!(s.len(), 100);
            assert!(s.max_block().unwrap().0 < 2000);
            assert_eq!(s.first_nonsequential(), None);
            assert!(s.portion_count() >= 10, "random portions of length <= 10");
        }
    }

    #[test]
    fn lrp_differs_between_procs_and_reproduces() {
        let w1 = Workload::generate(
            AccessPattern::LocalRandomPortions,
            &paper(),
            &mut Rng::seeded(2),
        );
        let w2 = Workload::generate(
            AccessPattern::LocalRandomPortions,
            &paper(),
            &mut Rng::seeded(2),
        );
        let (Workload::Local(a), Workload::Local(b)) = (&w1, &w2) else {
            panic!()
        };
        assert_eq!(a, b, "same seed, same workload");
        assert_ne!(a[0], a[1], "different processes draw different portions");
    }

    #[test]
    fn lw_all_processes_identical() {
        let w = Workload::generate(AccessPattern::LocalWholeFile, &paper(), &mut Rng::seeded(3));
        let Workload::Local(strings) = &w else {
            panic!()
        };
        for s in strings {
            assert_eq!(s.len(), 100);
            assert_eq!(s.portion_count(), 1);
            assert_eq!(s.get(0).unwrap().block, BlockId(0));
            assert_eq!(s.get(99).unwrap().block, BlockId(99));
        }
        assert_eq!(w.total_reads(), 2000);
    }

    #[test]
    fn gfp_two_pass_coverage() {
        let params = paper(); // global portions of 50 at stride 100
        let w = Workload::generate(
            AccessPattern::GlobalFixedPortions,
            &params,
            &mut Rng::seeded(4),
        );
        let s = w.global_string();
        assert_eq!(s.len(), 2000);
        assert_eq!(s.portion_count(), 40);
        assert_eq!(s.first_nonsequential(), None);
        let mut seen = vec![0u32; 2000];
        for a in s.accesses() {
            seen[a.block.index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
        // First pass portion starts at 0, 100, 200, ...
        assert_eq!(s.get(0).unwrap().block, BlockId(0));
        assert_eq!(s.get(50).unwrap().block, BlockId(100));
        // Second pass starts at block 50 halfway through.
        assert_eq!(s.get(1000).unwrap().block, BlockId(50));
    }

    #[test]
    fn grp_count_and_sequential_within_portions() {
        let w = Workload::generate(
            AccessPattern::GlobalRandomPortions,
            &paper(),
            &mut Rng::seeded(5),
        );
        let s = w.global_string();
        assert_eq!(s.len(), 2000);
        assert_eq!(s.first_nonsequential(), None);
        assert!(s.max_block().unwrap().0 < 2000);
    }

    #[test]
    fn gw_is_one_sequential_sweep() {
        let w = Workload::generate(
            AccessPattern::GlobalWholeFile,
            &paper(),
            &mut Rng::seeded(6),
        );
        let s = w.global_string();
        assert_eq!(s.len(), 2000);
        assert_eq!(s.portion_count(), 1);
        for (i, a) in s.accesses().iter().enumerate() {
            assert_eq!(a.block, BlockId(i as u32));
        }
    }

    #[test]
    fn workload_accessors() {
        let w = Workload::generate(
            AccessPattern::GlobalWholeFile,
            &paper(),
            &mut Rng::seeded(6),
        );
        assert!(w.is_global());
        assert_eq!(w.total_reads(), 2000);
        assert_eq!(w.max_block(), Some(BlockId(1999)));
        let w = Workload::generate(AccessPattern::LocalWholeFile, &paper(), &mut Rng::seeded(6));
        assert!(!w.is_global());
        assert_eq!(w.local_string(5).len(), 100);
    }

    #[test]
    #[should_panic(expected = "local_string on a global workload")]
    fn local_accessor_panics_on_global() {
        let w = Workload::generate(
            AccessPattern::GlobalWholeFile,
            &paper(),
            &mut Rng::seeded(6),
        );
        let _ = w.local_string(0);
    }
}
