//! # rt-patterns — parallel file access patterns
//!
//! The workload substrate of the RAPID Transit reproduction: the paper's
//! taxonomy of parallel file access patterns (Fig. 2), generators for the
//! six synthetic patterns in its workload (`lfp`, `lrp`, `lw`, `gfp`,
//! `grp`, `gw`), the four synchronization styles, and — as an extension —
//! on-the-fly predictors that learn the pattern instead of being handed the
//! reference string.
//!
//! ```
//! use rt_patterns::{AccessPattern, Workload, WorkloadParams};
//! use rt_sim::Rng;
//!
//! let params = WorkloadParams::paper();
//! let w = Workload::generate(AccessPattern::GlobalWholeFile, &params, &mut Rng::seeded(1));
//! assert_eq!(w.total_reads(), 2000);
//! assert!(w.is_global());
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod predict;
pub mod refstring;
pub mod taxonomy;
pub mod validate;

pub use gen::{Workload, WorkloadParams};
pub use predict::{Obl, PortionLearner, Predictor};
pub use refstring::{Access, Cursor, RefString};
pub use taxonomy::{AccessPattern, SyncStyle};
pub use validate::{validate, Violation};
