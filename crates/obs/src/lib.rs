//! Inert observability for the RAPID Transit simulator.
//!
//! This crate defines the span/event vocabulary the simulator records
//! while it runs — read-lifecycle spans with exact latency attribution,
//! device service spans, daemon action spans, and one-shot instants for
//! integrity and backpressure episodes — together with the bounded ring
//! buffer they land in, named counter time-series, and a Chrome Trace
//! Event ("Perfetto") JSON writer.
//!
//! Everything here is **passive**: recording an event never allocates on
//! the hot path beyond the pre-sized ring, never touches a random number
//! generator, and never schedules simulation events. The simulator's
//! results are byte-identical whether observation is enabled or not;
//! that inertness is pinned by golden tests in the workspace root.

#![warn(missing_docs)]

mod perfetto;
mod ring;
mod series;

pub use perfetto::write_trace;
pub use ring::Ring;
pub use series::Series;

use rt_sim::{SimDuration, SimTime};

/// Where an event belongs on the timeline. Each variant becomes one
/// Perfetto thread track; the index is the entity id (process, device,
/// or the daemon slot of a process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// A compute process: carries read-lifecycle spans.
    Proc(u16),
    /// A disk device: carries service spans and I/O instants.
    Device(u16),
    /// The prefetch/scrub daemon slot of a process: carries action spans.
    Daemon(u16),
    /// The circuit breaker guarding a device: carries open-episode spans.
    /// Separate from `Device` so breaker windows never overlap the
    /// service spans that legitimately drain during an open episode.
    Breaker(u16),
}

/// What kind of event was recorded. Spans have a duration; instants are
/// zero-width marks (any associated cost rides in the args).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A complete read, request to completion (span on a proc track).
    Read,
    /// A device servicing one request (span on a device track).
    DeviceService,
    /// Checksum verification holding a fill (instant; hold length in args).
    VerifyHold,
    /// One daemon action slot, idle-lock to release (span on a daemon track).
    DaemonAction,
    /// The daemon submitted a prefetch for a block (instant).
    PrefetchSubmit,
    /// A prefetched block arrived in the cache (instant).
    PrefetchFill,
    /// Verification caught a corrupt fill (instant).
    CorruptDetected,
    /// All replicas of a block exhausted; block poisoned (instant).
    Poison,
    /// A read-repair rewrite was issued for a corrupted copy (instant).
    Repair,
    /// The scrubber issued a verify-only read (instant).
    Scrub,
    /// A demand read parked on admission backpressure (instant).
    Park,
    /// A queued prefetch was shed to make room for a demand read (instant).
    Shed,
    /// The admission controller denied a prefetch (instant).
    Throttle,
    /// A failed I/O was retried after backoff (instant).
    Retry,
    /// A request timed out and was redirected (instant).
    Timeout,
    /// The node crashed; its tracks go dead until a rejoin (instant).
    Crash,
    /// A crashed node restarted with a cold RU set (instant).
    Rejoin,
    /// The interval a node spent dead, emitted at its rejoin (span on a
    /// proc track). A node that never rejoins is marked only by its
    /// [`EventKind::Crash`] instant.
    DeadInterval,
    /// A hedged duplicate fetch was launched against another replica
    /// (instant; the target replica rides in `arg2`).
    HedgeLaunch,
    /// The hedged duplicate delivered the block before the original
    /// (instant; the winning replica rides in `arg2`).
    HedgeWin,
    /// A hedge loser was cancelled while still queued on its device
    /// (instant; the cancelled replica rides in `arg2`).
    HedgeCancel,
    /// The interval a device's circuit breaker spent open (span on a
    /// device track, emitted when the breaker closes again; half-open
    /// probation is the tail of the span, its length in `arg2`).
    BreakerOpen,
    /// A demand fetch was knowingly submitted to an avoided (open-breaker
    /// or quarantined) device because no healthy replica existed —
    /// patient waiting, not a steering failure (instant; the replica
    /// rides in `arg2`).
    BreakerBypass,
}

impl EventKind {
    /// Stable lower-case label used as the Perfetto event name.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Read => "read",
            EventKind::DeviceService => "service",
            EventKind::VerifyHold => "verify-hold",
            EventKind::DaemonAction => "action",
            EventKind::PrefetchSubmit => "prefetch-submit",
            EventKind::PrefetchFill => "prefetch-fill",
            EventKind::CorruptDetected => "corrupt-detected",
            EventKind::Poison => "poison",
            EventKind::Repair => "repair",
            EventKind::Scrub => "scrub",
            EventKind::Park => "park",
            EventKind::Shed => "shed",
            EventKind::Throttle => "throttle",
            EventKind::Retry => "retry",
            EventKind::Timeout => "timeout",
            EventKind::Crash => "crash",
            EventKind::Rejoin => "rejoin",
            EventKind::DeadInterval => "dead",
            EventKind::HedgeLaunch => "hedge-launch",
            EventKind::HedgeWin => "hedge-win",
            EventKind::HedgeCancel => "hedge-cancel",
            EventKind::BreakerOpen => "breaker-open",
            EventKind::BreakerBypass => "breaker-bypass",
        }
    }

    /// True for kinds rendered as duration spans (`ph:"X"`); false for
    /// kinds rendered as instants (`ph:"i"`).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Read
                | EventKind::DeviceService
                | EventKind::DaemonAction
                | EventKind::DeadInterval
                | EventKind::BreakerOpen
        )
    }
}

/// One latency component of a read. The components partition every
/// nanosecond between a read's request and its completion; see
/// [`ReadAttribution`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Queued on the file-system lock (lookup and miss-issue critical
    /// sections, daemon action holds).
    LockWait = 0,
    /// Demand request sitting in a device queue (or parked on admission).
    QueueWait = 1,
    /// Device actively servicing the demand request.
    DiskService = 2,
    /// Backoff and re-submission after an I/O error, including any
    /// post-retry queueing.
    RetryBackoff = 3,
    /// Fill held for checksum verification before delivery.
    VerifyHold = 4,
    /// Waiting on a block some other request (usually a prefetch) is
    /// already fetching — the paper's "unready hit" wait.
    HitWait = 5,
    /// Fixed CPU costs: lookup and miss overheads, buffer copy.
    Overhead = 6,
    /// Waiting between a hedge launch and whichever copy delivers first
    /// (zero unless the tail-tolerance layer launched a hedge).
    HedgeWait = 7,
}

/// Number of latency components in [`ReadAttribution`].
pub const COMPONENTS: usize = 8;

/// Short names for the components, indexed by `Component as usize`.
pub const COMPONENT_NAMES: [&str; COMPONENTS] = [
    "lock_wait",
    "queue_wait",
    "disk_service",
    "retry_backoff",
    "verify_hold",
    "hit_wait",
    "overhead",
    "hedge_wait",
];

/// Per-read latency breakdown in nanoseconds. The components telescope:
/// they are accumulated by closing contiguous intervals between lifecycle
/// transitions, so their sum is *exactly* the read's observed latency —
/// an invariant the simulator asserts at read completion and the trace
/// validator re-checks on exported files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadAttribution {
    /// Nanoseconds per component, indexed by `Component as usize`.
    pub ns: [u64; COMPONENTS],
}

impl ReadAttribution {
    /// Add `d` to component `c`.
    #[inline]
    pub fn add(&mut self, c: Component, d: SimDuration) {
        self.ns[c as usize] += d.as_nanos();
    }

    /// Total nanoseconds across all components.
    pub fn sum(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Nanoseconds attributed to `c`.
    pub fn get(&self, c: Component) -> u64 {
        self.ns[c as usize]
    }
}

/// One recorded event. Flat and `Copy` so the ring buffer never chases
/// pointers; the meaning of `arg` depends on `kind` (block number for
/// I/O events, outcome/result codes for reads and actions).
#[derive(Clone, Copy, Debug)]
pub struct ObsEvent {
    /// Timeline track the event belongs to.
    pub track: Track,
    /// Event kind (also selects span vs instant rendering).
    pub kind: EventKind,
    /// Span start (or instant position) on the simulation clock.
    pub start: SimTime,
    /// Span length; zero for instants (costs ride in `arg2`).
    pub dur: SimDuration,
    /// Primary argument: the file block involved, or `u64::MAX` if none.
    pub arg: u64,
    /// Secondary argument: outcome / fetch-kind / hold-length code,
    /// meaning depends on `kind`.
    pub arg2: u64,
    /// Latency breakdown; meaningful only for [`EventKind::Read`].
    pub attr: ReadAttribution,
}

/// Read outcome codes carried in `ObsEvent::arg2` for read spans.
pub const OUTCOME_LABELS: [&str; 4] = ["ready-hit", "unready-hit", "miss", "failed"];

/// Human-readable label for a read outcome code (see [`OUTCOME_LABELS`]).
pub fn outcome_label(code: u64) -> &'static str {
    OUTCOME_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// Fetch-kind codes carried in `ObsEvent::arg2` for device service spans.
pub const FETCH_LABELS: [&str; 4] = ["demand", "prefetch", "scrub", "repair"];

/// Human-readable label for a fetch-kind code (see [`FETCH_LABELS`]).
pub fn fetch_label(code: u64) -> &'static str {
    FETCH_LABELS.get(code as usize).copied().unwrap_or("other")
}

fn track_name(t: Track) -> String {
    match t {
        Track::Proc(i) => format!("proc {i}"),
        Track::Device(i) => format!("disk {i}"),
        Track::Daemon(i) => format!("daemon {i}"),
        Track::Breaker(i) => format!("breaker {i}"),
    }
}

/// Render the last events of a ring as a human-readable tail, newest
/// last — the text half of a flight-recorder dump.
pub fn render_tail(events: &[ObsEvent], limit: usize) -> String {
    let mut out = String::new();
    let skip = events.len().saturating_sub(limit);
    if skip > 0 {
        out.push_str(&format!("... {skip} earlier events elided ...\n"));
    }
    for e in &events[skip..] {
        let ms = e.start.as_millis_f64();
        let mut line = format!(
            "{ms:>12.3} ms  {:<10} {:<16}",
            track_name(e.track),
            e.kind.label()
        );
        if e.arg != u64::MAX {
            line.push_str(&format!(" block={}", e.arg));
        }
        match e.kind {
            EventKind::Read => {
                line.push_str(&format!(
                    " outcome={} dur={:.3}ms",
                    outcome_label(e.arg2),
                    e.dur.as_millis_f64()
                ));
                for (i, name) in COMPONENT_NAMES.iter().enumerate() {
                    if e.attr.ns[i] > 0 {
                        line.push_str(&format!(" {name}={:.3}ms", e.attr.ns[i] as f64 / 1e6));
                    }
                }
            }
            EventKind::DeviceService => {
                line.push_str(&format!(
                    " kind={} dur={:.3}ms",
                    fetch_label(e.arg2),
                    e.dur.as_millis_f64()
                ));
            }
            EventKind::DaemonAction
            | EventKind::VerifyHold
            | EventKind::DeadInterval
            | EventKind::BreakerOpen => {
                line.push_str(&format!(" dur={:.3}ms", e.dur.as_millis_f64()));
            }
            _ => {}
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_sums() {
        let mut a = ReadAttribution::default();
        a.add(Component::LockWait, SimDuration::from_micros(300));
        a.add(Component::DiskService, SimDuration::from_millis(30));
        a.add(Component::Overhead, SimDuration::from_micros(500));
        assert_eq!(a.sum(), 300_000 + 30_000_000 + 500_000);
        assert_eq!(a.get(Component::DiskService), 30_000_000);
        assert_eq!(a.get(Component::HitWait), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::Read.label(), "read");
        assert!(EventKind::Read.is_span());
        assert!(!EventKind::Poison.is_span());
        assert_eq!(outcome_label(1), "unready-hit");
        assert_eq!(outcome_label(99), "unknown");
        assert_eq!(fetch_label(0), "demand");
        assert_eq!(COMPONENT_NAMES.len(), COMPONENTS);
    }

    #[test]
    fn tail_renders_and_elides() {
        let ev = |kind, start_ms: u64| ObsEvent {
            track: Track::Proc(0),
            kind,
            start: SimTime::from_nanos(start_ms * 1_000_000),
            dur: SimDuration::from_millis(1),
            arg: 7,
            arg2: 2,
            attr: ReadAttribution::default(),
        };
        let events: Vec<ObsEvent> = (0..10).map(|i| ev(EventKind::Read, i)).collect();
        let tail = render_tail(&events, 4);
        assert!(tail.contains("6 earlier events elided"));
        assert!(tail.contains("block=7"));
        assert!(tail.contains("outcome=miss"));
        assert_eq!(tail.lines().count(), 5);
    }
}
