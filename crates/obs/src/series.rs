//! Named epoch time-series.
//!
//! The simulator samples a handful of gauges (cache occupancy, queue
//! depths, health EWMAs, admission credits) on a fixed sim-time epoch.
//! Each gauge is one [`Series`]; samples append to a plain vector, so
//! recording is a push and nothing else.

use rt_sim::SimTime;

/// One named gauge sampled over simulated time.
#[derive(Clone, Debug)]
pub struct Series {
    /// Stable series name (becomes the Perfetto counter-track name).
    pub name: String,
    /// `(sample instant, value)` pairs in recording order.
    pub points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample.
    #[inline]
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// Largest sampled value, or 0.0 for an empty series.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Value of the last sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut s = Series::new("queue-depth");
        assert_eq!(s.last(), None);
        assert_eq!(s.max(), 0.0);
        s.record(SimTime::from_nanos(10), 2.0);
        s.record(SimTime::from_nanos(20), 5.0);
        s.record(SimTime::from_nanos(30), 1.0);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.last(), Some(1.0));
    }
}
