//! A bounded, overwrite-oldest event ring.
//!
//! The ring allocates its full capacity up front and never grows, so
//! pushing an event on the simulator's hot path is a store and two index
//! updates — no allocator traffic, no reordering. When full, the oldest
//! event is overwritten and a drop counter records the loss, which the
//! Perfetto export surfaces so a truncated flight recording is never
//! mistaken for a complete one.

use crate::ObsEvent;

/// Fixed-capacity ring buffer of [`ObsEvent`]s.
#[derive(Clone, Debug)]
pub struct Ring {
    buf: Vec<ObsEvent>,
    /// Index of the oldest event when the ring has wrapped.
    head: usize,
    /// Number of live events (≤ capacity).
    len: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
}

impl Ring {
    /// Create a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, ev: ObsEvent) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of events lost to overwriting since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The live events in recording order (oldest first).
    pub fn to_vec(&self) -> Vec<ObsEvent> {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, ReadAttribution, Track};
    use rt_sim::{SimDuration, SimTime};

    fn ev(n: u64) -> ObsEvent {
        ObsEvent {
            track: Track::Proc(0),
            kind: EventKind::Read,
            start: SimTime::from_nanos(n),
            dur: SimDuration::ZERO,
            arg: n,
            arg2: 0,
            attr: ReadAttribution::default(),
        }
    }

    #[test]
    fn fills_then_wraps_in_order() {
        let mut r = Ring::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let order: Vec<u64> = r.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, vec![0, 1, 2]);

        for i in 3..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let order: Vec<u64> = r.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.to_vec()[0].arg, 2);
        assert_eq!(r.dropped(), 1);
    }
}
