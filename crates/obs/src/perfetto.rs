//! Chrome Trace Event JSON writer.
//!
//! Emits the classic JSON trace format that both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly: duration
//! events (`ph:"X"`) for spans, instants (`ph:"i"`), counters (`ph:"C"`)
//! for the epoch series, and metadata (`ph:"M"`) naming the tracks.
//! Timestamps are microseconds; all simulator values are nanoseconds, so
//! they are written with three decimal places (exact — one nanosecond is
//! 0.001 µs). Exact nanosecond values for the attribution-sum check ride
//! in `args`, where they stay integers.
//!
//! Track layout: pid 1 hosts one thread per compute process (read
//! spans), pid 2 one thread per device (service spans and I/O instants),
//! pid 3 one thread per daemon slot (action spans), and each epoch
//! series becomes its own counter track.

use crate::{fetch_label, outcome_label, EventKind, ObsEvent, Series, Track, COMPONENT_NAMES};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pid_tid(t: Track) -> (u32, u32) {
    match t {
        Track::Proc(i) => (1, i as u32),
        Track::Device(i) => (2, i as u32),
        Track::Daemon(i) => (3, i as u32),
        Track::Breaker(i) => (5, i as u32),
    }
}

fn track_label(t: Track) -> String {
    match t {
        Track::Proc(i) => format!("proc {i}"),
        Track::Device(i) => format!("disk {i}"),
        Track::Daemon(i) => format!("daemon {i}"),
        Track::Breaker(i) => format!("breaker {i}"),
    }
}

/// Microsecond timestamp with exact nanosecond resolution.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_meta(out: &mut Vec<String>, pid: u32, tid: Option<u32>, name: &str, value: &str) {
    let tid_part = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
    out.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},{tid_part}\"args\":{{\"name\":\"{}\"}}}}",
        esc(value)
    ));
}

fn event_args(e: &ObsEvent) -> String {
    let mut parts: Vec<String> = Vec::new();
    if e.arg != u64::MAX {
        parts.push(format!("\"block\":{}", e.arg));
    }
    match e.kind {
        EventKind::Read => {
            parts.push(format!("\"outcome\":\"{}\"", outcome_label(e.arg2)));
            parts.push(format!("\"dur_ns\":{}", e.dur.as_nanos()));
            for (i, name) in COMPONENT_NAMES.iter().enumerate() {
                parts.push(format!("\"{name}_ns\":{}", e.attr.ns[i]));
            }
        }
        EventKind::DeviceService => {
            parts.push(format!("\"kind\":\"{}\"", fetch_label(e.arg2)));
            parts.push(format!("\"dur_ns\":{}", e.dur.as_nanos()));
            if e.attr.ns[1] > 0 {
                // Queue delay the request saw before service began.
                parts.push(format!("\"queue_ns\":{}", e.attr.ns[1]));
            }
        }
        EventKind::VerifyHold => {
            parts.push(format!("\"hold_ns\":{}", e.arg2));
        }
        EventKind::DaemonAction => {
            parts.push(format!("\"dur_ns\":{}", e.dur.as_nanos()));
        }
        EventKind::BreakerOpen => {
            parts.push(format!("\"dur_ns\":{}", e.dur.as_nanos()));
            // Length of the half-open probation that followed the hold.
            parts.push(format!("\"half_open_ns\":{}", e.arg2));
        }
        _ => {
            if e.arg2 != 0 {
                parts.push(format!("\"code\":{}", e.arg2));
            }
        }
    }
    format!("{{{}}}", parts.join(","))
}

/// Serialize recorded events and epoch series as a Chrome Trace Event
/// JSON document. `dropped` is the ring's overwrite count; when nonzero
/// it is surfaced in the document so truncation is visible.
pub fn write_trace(events: &[ObsEvent], series: &[Series], dropped: u64) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 16);

    // Track metadata: name the processes and every thread we will use.
    let mut seen_pids: Vec<u32> = Vec::new();
    let mut seen_tracks: Vec<Track> = Vec::new();
    for e in events {
        if !seen_tracks.contains(&e.track) {
            seen_tracks.push(e.track);
            let (pid, _) = pid_tid(e.track);
            if !seen_pids.contains(&pid) {
                seen_pids.push(pid);
            }
        }
    }
    seen_pids.sort_unstable();
    for pid in &seen_pids {
        let label = match pid {
            1 => "processes",
            2 => "devices",
            5 => "breakers",
            _ => "daemons",
        };
        push_meta(&mut lines, *pid, None, "process_name", label);
    }
    seen_tracks.sort_by_key(|t| pid_tid(*t));
    for t in &seen_tracks {
        let (pid, tid) = pid_tid(*t);
        push_meta(&mut lines, pid, Some(tid), "thread_name", &track_label(*t));
    }

    for e in events {
        let (pid, tid) = pid_tid(e.track);
        let name = e.kind.label();
        let ts = us(e.start.as_nanos());
        let args = event_args(e);
        if e.kind.is_span() {
            let dur = us(e.dur.as_nanos());
            lines.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{args}}}"
            ));
        } else {
            lines.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{args}}}"
            ));
        }
    }

    for s in series {
        let name = esc(&s.name);
        for (at, v) in &s.points {
            lines.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":4,\"tid\":0,\"ts\":{},\"args\":{{\"value\":{v}}}}}",
                us(at.as_nanos())
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped}}},\"traceEvents\":[\n{}\n]}}\n",
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReadAttribution;
    use rt_sim::{SimDuration, SimTime};

    fn read_event() -> ObsEvent {
        let attr = ReadAttribution {
            ns: [100, 0, 30_000_000, 0, 0, 0, 500_000, 0],
        };
        ObsEvent {
            track: Track::Proc(2),
            kind: EventKind::Read,
            start: SimTime::from_nanos(1_234_567),
            dur: SimDuration::from_nanos(30_500_100),
            arg: 42,
            arg2: 2,
            attr,
        }
    }

    #[test]
    fn emits_spans_instants_counters_and_metadata() {
        let poison = ObsEvent {
            track: Track::Device(1),
            kind: EventKind::Poison,
            start: SimTime::from_nanos(2_000_000),
            dur: SimDuration::ZERO,
            arg: 42,
            arg2: 0,
            attr: ReadAttribution::default(),
        };
        let mut s = Series::new("disk0 queue");
        s.record(SimTime::from_nanos(5_000), 3.0);
        let doc = write_trace(&[read_event(), poison], &[s], 7);

        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"droppedEvents\":7"));
        // Metadata for both pids and both threads.
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("{\"name\":\"proc 2\"}"));
        assert!(doc.contains("{\"name\":\"disk 1\"}"));
        // The read span with exact-ns attribution args.
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1234.567"));
        assert!(doc.contains("\"dur\":30500.100"));
        assert!(doc.contains("\"outcome\":\"miss\""));
        assert!(doc.contains("\"disk_service_ns\":30000000"));
        assert!(doc.contains("\"dur_ns\":30500100"));
        // The instant and the counter.
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":3"));
        // Balanced braces (cheap well-formedness check; real parsing is
        // covered by the bench-side validator).
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("tab\tx"), "tab\\u0009x");
    }
}
