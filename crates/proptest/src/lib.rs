//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! path crate provides the subset of proptest's API that the test suites
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, integer-range and
//! tuple strategies, `any::<T>()`, `Just`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!`
//! macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - **Deterministic inputs.** Each test case's RNG is seeded from the test
//!   function's path and the case index, so a failing case reproduces on
//!   every run with no regression file needed (`.proptest-regressions`
//!   files are ignored).
//! - **No shrinking.** A failure reports the generated inputs' case number;
//!   inputs are small by construction (the suites bound their own sizes).

pub mod test_runner {
    //! Test configuration, error type, and the per-case RNG.

    use std::fmt;

    /// Runner configuration. Only `cases` is honored; `max_shrink_iters`
    /// exists for source compatibility with upstream struct-update syntax.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per `proptest!` test function.
        pub cases: u32,
        /// Ignored: this shim does not shrink failing inputs.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed with the contained message.
        Fail(String),
        /// The input was rejected (treated as a failure by this shim).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected-input error.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type for a single test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 generator seeded from the test's path and case index.
    /// The same (test, case) pair always sees the same input stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test path gives a stable per-test stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0)");
            // Multiply-shift rejection-free mapping; bias is < 2^-64 per
            // draw, irrelevant for test-input generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategies the macros build.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy's type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Picks uniformly among its branches; built by `prop_oneof!`.
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given branches. Must be non-empty.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.branches.len() as u64) as usize;
            self.branches[idx].generate(rng)
        }
    }

    /// Wraps a generation closure; used by `prop_compose!`.
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A strategy from a raw generation function.
    pub fn generator<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(width) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u64) - (lo as u64);
                    if width == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + rng.below(width + 1) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the suites draw directly.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy over `A`'s whole domain.
    pub struct Any<A>(PhantomData<fn() -> A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace: collection, option, and sample strategies.

    pub mod collection {
        //! Strategies for collections.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Element-count bounds for [`vec`]; built from `usize` (exact) or
        /// `Range<usize>` (half-open).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        /// Output of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` whose length is drawn from `size` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod option {
        //! Strategies for `Option`.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Output of [`of`].
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Match upstream's default: None about a quarter of the time.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// `Some` of the inner strategy most of the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod sample {
        //! Strategies that sample from explicit value sets.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Output of [`select`].
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.below(self.0.len() as u64) as usize;
                self.0[idx].clone()
            }
        }

        /// Picks uniformly from `values`. Must be non-empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select from empty set");
            Select(values)
        }
    }
}

pub mod prelude {
    //! Everything a test file needs from `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines test functions whose arguments are drawn from strategies.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `fn name(arg in strategy, ...) { body }` items carrying outer
/// attributes (typically `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __e,
                    );
                }
            }
        }
    )*};
}

/// Defines a named strategy function from component strategies and a body
/// that combines the drawn values.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:tt)*)(
            $($field:pat in $strat:expr),* $(,)?
        ) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::generator(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $field = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// A strategy that picks uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case (returns `Err(TestCaseError)`) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r,
        );
    }};
}

/// Fails the current test case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u64..1).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn same_case_same_values() {
        let mut a = TestRng::for_case("x", 7);
        let mut b = TestRng::for_case("x", 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_cases_differ() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::for_case("vec", 0);
        let strat = prop::collection::vec(0u64..10, 1..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let fixed = prop::collection::vec(any::<bool>(), 100);
        assert_eq!(fixed.generate(&mut rng).len(), 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_draws_compose(x in 1u32..10, (a, b) in (0u64..5, 0u64..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x, 0);
        }
    }

    prop_compose! {
        fn pair()(hi in 10u64..20, lo in 0u64..10) -> (u64, u64) {
            (hi, lo)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn composed_strategy_holds_invariant((hi, lo) in pair()) {
            prop_assert!(hi > lo);
        }

        #[test]
        fn oneof_and_select(v in prop_oneof![Just(1u8), Just(2u8)],
                            s in prop::sample::select(vec![10u8, 20u8]),
                            o in prop::option::of(0u32..3)) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(s == 10 || s == 20);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }
}
