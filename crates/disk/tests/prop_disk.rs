//! Property tests for the disk substrate: queue disciplines conserve
//! requests, FIFO never reorders, priority never starves within a class,
//! and interleaving balances load.

use proptest::prelude::*;

use rt_disk::{
    BlockId, Discipline, Disk, DiskRequest, FetchKind, FileLayout, Layout, ProcId, Service,
};
use rt_sim::{Rng, SimTime};

fn req(at: u64, kind: FetchKind, block: u32) -> DiskRequest {
    DiskRequest {
        block: BlockId(block),
        physical: block,
        kind,
        initiator: ProcId(0),
        submitted: SimTime::from_nanos(at),
    }
}

/// Drive one disk with a submission schedule; drain everything and return
/// completion order as (block, kind).
fn drive(discipline: Discipline, jobs: &[(u64, bool)]) -> Vec<(u32, FetchKind)> {
    let mut disk = Disk::new(Service::paper(), discipline, Rng::seeded(1));
    let mut completions: Vec<(u32, FetchKind)> = Vec::new();
    let mut next_completion: Option<SimTime> = None;
    let mut jobs: Vec<(u64, bool)> = jobs.to_vec();
    jobs.sort_by_key(|&(at, _)| at);

    let mut submitted = 0u32;
    let mut iter = jobs.iter().enumerate().peekable();
    // Event loop: interleave submissions and completions in time order.
    loop {
        let next_sub = iter.peek().map(|(_, &(at, _))| at);
        match (next_sub, next_completion) {
            (Some(at), Some(done)) if SimTime::from_nanos(at) <= done => {
                let (i, &(at, demand)) = iter.next().unwrap();
                let kind = if demand {
                    FetchKind::Demand
                } else {
                    FetchKind::Prefetch
                };
                if let Ok(Some(c)) = disk.submit(req(at, kind, i as u32)) {
                    assert!(next_completion.is_none());
                    next_completion = Some(c);
                }
                submitted += 1;
            }
            (Some(at), None) => {
                let (i, &(_, demand)) = iter.next().unwrap();
                let kind = if demand {
                    FetchKind::Demand
                } else {
                    FetchKind::Prefetch
                };
                if let Ok(Some(c)) = disk.submit(req(at, kind, i as u32)) {
                    next_completion = Some(c);
                }
                submitted += 1;
            }
            (_, Some(done)) => {
                let (finished, next) = disk.complete(done);
                completions.push((finished.req.block.0, finished.req.kind));
                next_completion = next.map(|(_, c)| c);
            }
            (None, None) => break,
        }
    }
    assert_eq!(completions.len(), submitted as usize);
    completions
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Every submitted request completes exactly once, under either
    /// discipline.
    #[test]
    fn all_requests_complete(
        jobs in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..60),
        priority in any::<bool>(),
    ) {
        let discipline = if priority { Discipline::DemandPriority } else { Discipline::Fifo };
        let completions = drive(discipline, &jobs);
        let mut blocks: Vec<u32> = completions.iter().map(|&(b, _)| b).collect();
        blocks.sort_unstable();
        blocks.dedup();
        prop_assert_eq!(blocks.len(), jobs.len());
    }

    /// FIFO completes requests in submission order.
    #[test]
    fn fifo_preserves_submission_order(
        jobs in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..60),
    ) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let completions = drive(Discipline::Fifo, &sorted);
        let order: Vec<u32> = completions.iter().map(|&(b, _)| b).collect();
        let expected: Vec<u32> = (0..jobs.len() as u32).collect();
        prop_assert_eq!(order, expected);
    }

    /// Demand priority preserves FIFO order *within* each class.
    #[test]
    fn priority_is_fifo_within_class(
        jobs in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..60),
    ) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let completions = drive(Discipline::DemandPriority, &sorted);
        for kind in [FetchKind::Demand, FetchKind::Prefetch] {
            let order: Vec<u32> = completions
                .iter()
                .filter(|&&(_, k)| k == kind)
                .map(|&(b, _)| b)
                .collect();
            let mut sorted_order = order.clone();
            sorted_order.sort_unstable();
            prop_assert_eq!(order, sorted_order, "same-class requests reordered");
        }
    }

    /// Round-robin interleave spreads any contiguous range evenly: counts
    /// per disk differ by at most one.
    #[test]
    fn interleave_balances_contiguous_ranges(
        disks in 1u16..32,
        start in 0u32..10_000,
        len in 1u32..5_000,
    ) {
        let layout = FileLayout::interleaved(disks);
        let mut counts = vec![0u32; disks as usize];
        for b in start..start + len {
            let p = layout.place(BlockId(b));
            prop_assert!(p.disk.index() < disks as usize);
            counts[p.disk.index()] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "imbalanced interleave: {counts:?}");
    }

    /// Placement is injective: distinct blocks never share a physical slot.
    #[test]
    fn interleave_is_injective(disks in 1u16..16, blocks in 1u32..2_000) {
        let layout = FileLayout::interleaved(disks);
        let mut seen = std::collections::HashSet::new();
        for b in 0..blocks {
            let p = layout.place(BlockId(b));
            prop_assert!(seen.insert((p.disk, p.physical)), "slot collision");
        }
    }
}
