//! Per-device event streams for conservative parallel simulation.
//!
//! The paper's testbed is a farm of independent disks: each device owns
//! its queue and its 30 ms service clock, and devices influence each other
//! only through *future* work — a block landing on the next disk of the
//! stripe cannot need service sooner than one disk access from now. That
//! structure is exactly what [`rt_sim::shard`] needs: one shard per
//! device, with the stripe hand-off latency as the lookahead bound.
//!
//! [`DeviceStream`] wraps a real [`Disk`] in a [`ShardModel`]: an open
//! arrival process feeds local demand requests, completions drive the
//! device state machine, and every `forward_every`-th completion sends a
//! follow-on prefetch to the next device in the stripe — the cross-shard
//! traffic. [`FarmConfig::run`] assembles a farm and runs it on any
//! number of threads with bit-identical results (the engine's guarantee,
//! re-asserted by the tests here on real device state).

use rt_sim::shard::{run_shards, ShardCtx, ShardModel, ShardRun};
use rt_sim::{Rng, SimDuration, SimTime, Tally};

use crate::device::{Discipline, Disk};
use crate::request::{BlockId, DiskRequest, FetchKind, ProcId};
use crate::service::Service;

/// Parameters of a striped disk-farm run.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Number of disk devices (= shards).
    pub devices: u16,
    /// Demand arrivals generated per device before its source dries up.
    pub requests_per_device: u32,
    /// Mean of the exponential interarrival time of local demand.
    pub mean_interarrival: SimDuration,
    /// Every `forward_every`-th completion forwards a stripe-follow-on
    /// prefetch to the next device. Zero disables forwarding.
    pub forward_every: u32,
    /// Hand-off latency of a forwarded request — the farm's lookahead
    /// bound. Must be positive.
    pub forward_delay: SimDuration,
    /// Service model of every device.
    pub service: Service,
    /// Master seed; each device derives its own independent stream.
    pub seed: u64,
}

impl Default for FarmConfig {
    /// Paper-flavored farm: 30 ms fixed service, hand-offs one service
    /// time out, devices at ~90% utilization.
    fn default() -> Self {
        FarmConfig {
            devices: 20,
            requests_per_device: 2_000,
            mean_interarrival: SimDuration::from_micros(33_333),
            forward_every: 4,
            forward_delay: SimDuration::from_millis(30),
            service: Service::paper(),
            seed: 0x5EED_FA2A,
        }
    }
}

/// Aggregate result of [`FarmConfig::run`], merged from the per-device
/// streams in fixed device order (merge order is part of the contract:
/// the same numbers come back at every thread count).
#[derive(Clone, Debug)]
pub struct FarmOutcome {
    /// Engine-level outcome (event counts, windows, end time).
    pub run: ShardRun,
    /// Requests completed across all devices.
    pub completions: u64,
    /// Stripe follow-ons forwarded between devices.
    pub forwarded: u64,
    /// Response-time distribution over all completed requests.
    pub response: Tally,
    /// Queue-delay distribution over all queued requests.
    pub queue_delay: Tally,
}

/// Events of one device stream.
#[derive(Clone, Copy, Debug)]
pub enum StreamEv {
    /// The local arrival process emits a demand request.
    Arrival,
    /// The in-service request completes now.
    Completion,
    /// A stripe follow-on handed over from the previous device.
    Forwarded(BlockId),
}

/// One disk device as a conservative-simulation shard.
pub struct DeviceStream {
    id: u16,
    disk: Disk,
    rng: Rng,
    remaining: u32,
    next_block: u32,
    completions: u64,
    forwarded: u64,
    forward_every: u32,
    forward_delay: SimDuration,
    mean_interarrival: SimDuration,
}

impl DeviceStream {
    fn new(id: u16, cfg: &FarmConfig) -> Self {
        let master = Rng::seeded(cfg.seed);
        DeviceStream {
            id,
            disk: Disk::new(
                cfg.service.clone(),
                Discipline::Fifo,
                master.split(2 * id as u64),
            ),
            rng: master.split(2 * id as u64 + 1),
            remaining: cfg.requests_per_device,
            next_block: 0,
            completions: 0,
            forwarded: 0,
            forward_every: cfg.forward_every,
            forward_delay: cfg.forward_delay,
            mean_interarrival: cfg.mean_interarrival,
        }
    }

    /// The wrapped device, for post-run statistics.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Requests completed by this device.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    fn submit(
        &mut self,
        now: SimTime,
        block: BlockId,
        kind: FetchKind,
        ctx: &mut ShardCtx<'_, StreamEv>,
    ) {
        let req = DiskRequest {
            block,
            physical: block.0,
            kind,
            initiator: ProcId(self.id),
            submitted: now,
        };
        if let Some(completion) = self.disk.submit(req).expect("farm queues are unbounded") {
            ctx.schedule_at(completion, StreamEv::Completion);
        }
    }
}

impl ShardModel for DeviceStream {
    type Event = StreamEv;

    fn lookahead(&self) -> SimDuration {
        self.forward_delay
    }

    fn handle(&mut self, event: StreamEv, ctx: &mut ShardCtx<'_, StreamEv>) {
        match event {
            StreamEv::Arrival => {
                if self.remaining == 0 {
                    // A farm with requests_per_device == 0 still seeds one
                    // Arrival per device; it must be a no-op, not an
                    // underflow.
                    return;
                }
                let block = BlockId(self.next_block);
                self.next_block += 1;
                self.submit(ctx.now(), block, FetchKind::Demand, ctx);
                self.remaining -= 1;
                if self.remaining > 0 {
                    let gap = self.rng.exponential(self.mean_interarrival);
                    ctx.schedule_in(gap, StreamEv::Arrival);
                }
            }
            StreamEv::Completion => {
                let (_, next) = self.disk.complete(ctx.now());
                if let Some((_, completion)) = next {
                    ctx.schedule_at(completion, StreamEv::Completion);
                }
                self.completions += 1;
                if self.forward_every > 0
                    && self.completions.is_multiple_of(self.forward_every as u64)
                {
                    let peer = (ctx.shard() + 1) % ctx.shards();
                    self.forwarded += 1;
                    ctx.send(
                        peer,
                        self.forward_delay,
                        StreamEv::Forwarded(BlockId(self.next_block)),
                    );
                }
            }
            StreamEv::Forwarded(block) => {
                self.submit(ctx.now(), block, FetchKind::Prefetch, ctx);
            }
        }
    }
}

impl FarmConfig {
    /// Build the farm's device streams (one shard per device).
    pub fn build(&self) -> Vec<DeviceStream> {
        assert!(self.devices > 0, "farm needs at least one device");
        assert!(
            self.forward_delay > SimDuration::ZERO,
            "forward delay is the lookahead bound and must be positive"
        );
        (0..self.devices)
            .map(|id| DeviceStream::new(id, self))
            .collect()
    }

    /// Run the farm on `threads` workers. Statistics are merged in device
    /// order, so the whole [`FarmOutcome`] — engine counts included — is
    /// identical for every `threads` value.
    pub fn run(&self, threads: usize) -> FarmOutcome {
        let mut streams = self.build();
        let run = run_shards(&mut streams, threads, u64::MAX, |_, ctx| {
            ctx.schedule_at(SimTime::ZERO, StreamEv::Arrival);
        });
        let mut response = Tally::new();
        let mut queue_delay = Tally::new();
        let mut completions = 0;
        let mut forwarded = 0;
        for s in &streams {
            response.merge(s.disk.response());
            queue_delay.merge(s.disk.queue_delay());
            completions += s.completions;
            forwarded += s.forwarded;
        }
        FarmOutcome {
            run,
            completions,
            forwarded,
            response,
            queue_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FarmConfig {
        FarmConfig {
            devices: 8,
            requests_per_device: 200,
            ..FarmConfig::default()
        }
    }

    fn fingerprint(o: &FarmOutcome) -> (u64, Vec<u64>, u64, u64, u64, u64, u64) {
        (
            o.run.events,
            o.run.per_shard_events.clone(),
            o.run.end_time.as_nanos(),
            o.completions,
            o.forwarded,
            o.response.count(),
            o.response.total().as_nanos(),
        )
    }

    #[test]
    fn farm_is_bit_identical_across_thread_counts() {
        let cfg = small();
        let base = cfg.run(1);
        assert!(base.run.events > 3_000, "farm too small to mean anything");
        for threads in [2, 4, 8] {
            let out = cfg.run(threads);
            assert_eq!(
                fingerprint(&out),
                fingerprint(&base),
                "farm diverged at {threads} threads"
            );
            assert!((out.response.mean_millis() - base.response.mean_millis()).abs() < 1e-12);
        }
    }

    #[test]
    fn every_arrival_eventually_completes() {
        let cfg = small();
        let out = cfg.run(4);
        // All demand arrivals plus all forwarded prefetches drain.
        let expected = cfg.devices as u64 * cfg.requests_per_device as u64 + out.forwarded;
        assert_eq!(out.completions, expected);
        assert!(!out.run.budget_exhausted);
    }

    #[test]
    fn forwarding_crosses_devices() {
        let out = small().run(2);
        assert!(out.forwarded > 0, "no cross-shard traffic exercised");
    }

    #[test]
    fn zero_requests_per_device_is_a_noop() {
        // The seeded Arrival must not underflow `remaining` when the farm
        // is configured with no demand at all.
        let cfg = FarmConfig {
            requests_per_device: 0,
            ..small()
        };
        let out = cfg.run(2);
        assert_eq!(out.completions, 0);
        assert_eq!(out.forwarded, 0);
        // One no-op Arrival per device, nothing else.
        assert_eq!(out.run.events, cfg.devices as u64);
    }

    #[test]
    fn seed_changes_the_run() {
        let a = small().run(1);
        let cfg_b = FarmConfig {
            seed: 999,
            ..small()
        };
        let b = cfg_b.run(1);
        assert_ne!(a.run.end_time, b.run.end_time);
    }

    #[test]
    fn windows_are_coarse() {
        // The whole point of the 30 ms lookahead: windows span a full
        // service time, so rounds stay far below event counts.
        let out = small().run(2);
        assert!(
            out.run.rounds * 2 < out.run.events,
            "sync rounds ({}) not amortized over events ({})",
            out.run.rounds,
            out.run.events
        );
    }
}
