//! Interleaved ("striped") file layout over parallel independent disks.
//!
//! RAPID Transit inherits the Bridge file system's layout: consecutive
//! logical blocks of a file are assigned to disks on different processor
//! nodes **round-robin**, so a sequential scan drives all disks in parallel.
//! A contiguous single-disk layout is provided as the traditional baseline.

use crate::request::{BlockId, DiskId};

/// Where a logical block lives: which disk, and at which physical offset on
/// that disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Target device.
    pub disk: DiskId,
    /// Physical block offset on that device.
    pub physical: u32,
}

/// A mapping from logical file blocks to physical placements.
pub trait Layout {
    /// Placement of logical block `block`.
    fn place(&self, block: BlockId) -> Placement;

    /// Number of disks this layout spreads the file over.
    fn disk_count(&self) -> u16;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Round-robin interleaving: block *i* lives on disk *i mod D* at physical
/// offset *i / D* (plus a per-file base). This is the paper's configuration
/// with stripe unit = 1 block.
#[derive(Clone, Copy, Debug)]
pub struct Interleaved {
    disks: u16,
    /// Physical offset of the file's first stripe on every disk.
    base: u32,
    /// Rotation applied to the disk assignment: block *i* lands on disk
    /// *(i + shift) mod D*. Replicated files give each copy a different
    /// shift so a replica read targets a different device.
    shift: u16,
}

impl Interleaved {
    /// Interleave over `disks` devices starting at physical offset `base`.
    /// Panics if `disks == 0`.
    pub fn new(disks: u16, base: u32) -> Self {
        Interleaved::with_shift(disks, base, 0)
    }

    /// Interleave with the disk assignment rotated by `shift` — the layout
    /// a rotated replica uses so every block lives on a different device
    /// than its primary. Panics if `disks == 0`.
    pub fn with_shift(disks: u16, base: u32, shift: u16) -> Self {
        assert!(disks > 0, "cannot interleave over zero disks");
        Interleaved {
            disks,
            base,
            shift: shift % disks,
        }
    }

    /// The paper's layout: interleaved over 20 disks from offset 0.
    pub fn paper() -> Self {
        Interleaved::new(20, 0)
    }
}

impl Layout for Interleaved {
    fn place(&self, block: BlockId) -> Placement {
        let d = self.disks as u32;
        Placement {
            disk: DiskId(((block.0 + self.shift as u32) % d) as u16),
            physical: self.base + block.0 / d,
        }
    }

    fn disk_count(&self) -> u16 {
        self.disks
    }

    fn name(&self) -> &'static str {
        "interleaved"
    }
}

/// Traditional layout: the whole file sits contiguously on one disk.
#[derive(Clone, Copy, Debug)]
pub struct Contiguous {
    disk: DiskId,
    base: u32,
}

impl Contiguous {
    /// Place the file on `disk` starting at physical offset `base`.
    pub fn new(disk: DiskId, base: u32) -> Self {
        Contiguous { disk, base }
    }
}

impl Layout for Contiguous {
    fn place(&self, block: BlockId) -> Placement {
        Placement {
            disk: self.disk,
            physical: self.base + block.0,
        }
    }

    fn disk_count(&self) -> u16 {
        1
    }

    fn name(&self) -> &'static str {
        "contiguous"
    }
}

/// Runtime-selectable layout.
#[derive(Clone, Copy, Debug)]
pub enum FileLayout {
    /// Round-robin over all disks (the paper's configuration).
    Interleaved(Interleaved),
    /// Whole file on one disk (uniprocessor baseline).
    Contiguous(Contiguous),
}

impl FileLayout {
    /// The paper's 20-disk round-robin interleave.
    pub fn paper() -> Self {
        FileLayout::Interleaved(Interleaved::paper())
    }

    /// Round-robin over `disks` devices.
    pub fn interleaved(disks: u16) -> Self {
        FileLayout::Interleaved(Interleaved::new(disks, 0))
    }
}

impl Layout for FileLayout {
    fn place(&self, block: BlockId) -> Placement {
        match self {
            FileLayout::Interleaved(l) => l.place(block),
            FileLayout::Contiguous(l) => l.place(block),
        }
    }

    fn disk_count(&self) -> u16 {
        match self {
            FileLayout::Interleaved(l) => l.disk_count(),
            FileLayout::Contiguous(l) => l.disk_count(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FileLayout::Interleaved(l) => l.name(),
            FileLayout::Contiguous(l) => l.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_robin() {
        let l = Interleaved::new(4, 0);
        assert_eq!(
            l.place(BlockId(0)),
            Placement {
                disk: DiskId(0),
                physical: 0
            }
        );
        assert_eq!(
            l.place(BlockId(1)),
            Placement {
                disk: DiskId(1),
                physical: 0
            }
        );
        assert_eq!(
            l.place(BlockId(4)),
            Placement {
                disk: DiskId(0),
                physical: 1
            }
        );
        assert_eq!(
            l.place(BlockId(7)),
            Placement {
                disk: DiskId(3),
                physical: 1
            }
        );
    }

    #[test]
    fn interleave_respects_base() {
        let l = Interleaved::new(2, 100);
        assert_eq!(l.place(BlockId(3)).physical, 101);
    }

    #[test]
    fn paper_layout_uses_20_disks() {
        let l = Interleaved::paper();
        assert_eq!(l.disk_count(), 20);
        // Consecutive blocks land on consecutive disks.
        for i in 0..40u32 {
            assert_eq!(l.place(BlockId(i)).disk, DiskId((i % 20) as u16));
        }
    }

    #[test]
    fn interleave_spreads_sequential_scan_evenly() {
        let l = Interleaved::paper();
        let mut counts = [0u32; 20];
        for i in 0..2000u32 {
            counts[l.place(BlockId(i)).disk.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn contiguous_single_disk() {
        let l = Contiguous::new(DiskId(5), 10);
        assert_eq!(
            l.place(BlockId(7)),
            Placement {
                disk: DiskId(5),
                physical: 17
            }
        );
        assert_eq!(l.disk_count(), 1);
    }

    #[test]
    #[should_panic(expected = "zero disks")]
    fn zero_disks_rejected() {
        let _ = Interleaved::new(0, 0);
    }

    #[test]
    fn shifted_replica_avoids_primary_disk() {
        let primary = Interleaved::new(4, 0);
        let replica = Interleaved::with_shift(4, 100, 1);
        for i in 0..16u32 {
            let p = primary.place(BlockId(i));
            let r = replica.place(BlockId(i));
            assert_ne!(p.disk, r.disk, "block {i} replica on primary's disk");
            // Same stripe depth, different base.
            assert_eq!(r.physical, 100 + p.physical);
        }
        // A shift of D is the identity rotation.
        let full = Interleaved::with_shift(4, 0, 4);
        assert_eq!(full.place(BlockId(3)), primary.place(BlockId(3)));
    }

    #[test]
    fn layout_enum_dispatch() {
        let l = FileLayout::paper();
        assert_eq!(l.name(), "interleaved");
        assert_eq!(l.disk_count(), 20);
        let c = FileLayout::Contiguous(Contiguous::new(DiskId(0), 0));
        assert_eq!(c.name(), "contiguous");
        assert_eq!(c.place(BlockId(9)).physical, 9);
    }
}
