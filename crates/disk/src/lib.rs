//! # rt-disk — parallel independent disks
//!
//! The disk substrate of the RAPID Transit reproduction: simulated disk
//! devices ([`Disk`]) behind FIFO queues, pluggable service-time models
//! (the paper's fixed 30 ms latency, plus a seek/rotate extension), and the
//! Bridge-style round-robin interleaved file layout ([`Interleaved`]) that
//! lets a sequential scan drive all twenty disks at once.
//!
//! ```
//! use rt_disk::{DiskSubsystem, BlockId, FetchKind, ProcId};
//! use rt_sim::{Rng, SimTime, SimDuration};
//!
//! let mut io = DiskSubsystem::paper(&Rng::seeded(42));
//! // Twenty consecutive blocks land on twenty distinct disks: all twenty
//! // reads start at once and complete after a single 30 ms access time.
//! for b in 0..20 {
//!     let started = io.read(SimTime::ZERO, BlockId(b), FetchKind::Demand, ProcId(0))
//!         .expect("queues are unbounded by default")
//!         .expect("idle disk starts immediately");
//!     assert_eq!(started.completion, SimTime::ZERO + SimDuration::from_millis(30));
//! }
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod fault;
pub mod request;
pub mod service;
pub mod stream;
pub mod striping;
pub mod subsystem;

pub use device::{Discipline, Disk, Finished, QueueFull};
pub use fault::{Applied, DeviceFault, DeviceFaults, DiskFault, FaultKind, FaultPlan};
pub use request::{BlockId, DiskId, DiskRequest, FetchKind, ProcId};
pub use service::{DiskGeometry, FixedLatency, SeekRotate, Service, ServiceModel};
pub use stream::{DeviceStream, FarmConfig, FarmOutcome, StreamEv};
pub use striping::{Contiguous, FileLayout, Interleaved, Layout, Placement};
pub use subsystem::{Completed, DiskSubsystem, Started};
