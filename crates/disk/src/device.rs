//! A single simulated disk device with an explicit request queue.
//!
//! The device is event-driven: a submission either starts service
//! immediately (the caller schedules a completion event) or queues; each
//! completion may start the next request per the queue discipline. The
//! paper's testbed serves requests FCFS — prefetches *do* delay demand
//! fetches, a deliberate property ([`Discipline::Fifo`]). The
//! demand-priority discipline is an extension for studying how much of the
//! prefetch-induced contention (Fig. 7) a smarter disk queue could absorb.

use std::collections::VecDeque;

use rt_sim::{Rng, SimDuration, SimTime, Tally, TimeWeighted};

use crate::fault::{DeviceFaults, DiskFault};
use crate::request::{DiskRequest, FetchKind};
use crate::service::{Service, ServiceModel};

/// Order in which queued requests are dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Discipline {
    /// First-come first-served (the paper's testbed).
    #[default]
    Fifo,
    /// Demand fetches dispatch before prefetches; FCFS within each class
    /// (extension).
    DemandPriority,
}

/// Typed rejection from a bounded device queue: the disk was busy and its
/// queue already held `depth` requests, the configured limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// Requests waiting in queue (excluding the one in service) at the
    /// moment of rejection.
    pub depth: usize,
}

/// A request actively being serviced. The completion status is decided
/// when service starts (the fault schedule is a function of the start
/// time) and reported when the completion event fires.
#[derive(Clone, Copy, Debug)]
struct InService {
    req: DiskRequest,
    completion: SimTime,
    status: Result<(), DiskFault>,
    service: SimDuration,
    corrupt: bool,
}

/// A finished I/O as reported by [`Disk::complete`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Finished {
    /// The request that finished.
    pub req: DiskRequest,
    /// `Ok` on success; `Err` carries the injected fault.
    pub status: Result<(), DiskFault>,
    /// The service time this request occupied the device for (excludes
    /// queueing).
    pub service: SimDuration,
    /// True when the completion is `Ok` but the payload is silently
    /// corrupt (a [`crate::fault::FaultKind::Corrupt`] window fired).
    /// Only checksum verification above the disk layer can see this.
    pub corrupt: bool,
}

/// One disk: a queue, a head, and the response-time accounting the paper
/// uses as its disk-contention metric ("the time from the entry of the
/// request on the queue of the appropriate disk to the completion of the
/// I/O").
#[derive(Clone, Debug)]
pub struct Disk {
    service: Service,
    rng: Rng,
    discipline: Discipline,
    faults: Option<DeviceFaults>,
    queue_limit: Option<usize>,
    max_depth: usize,
    queue: VecDeque<DiskRequest>,
    in_service: Option<InService>,
    busy: SimDuration,
    completed: u64,
    errors: u64,
    demand_response: Tally,
    prefetch_response: Tally,
    response: Tally,
    queue_delay: Tally,
    queue_len: TimeWeighted,
}

impl Disk {
    /// A new idle disk with the given service model, queue discipline, and
    /// its own random stream (used only by stochastic service models).
    pub fn new(service: Service, discipline: Discipline, rng: Rng) -> Self {
        Disk {
            service,
            rng,
            discipline,
            faults: None,
            queue_limit: None,
            max_depth: 0,
            queue: VecDeque::new(),
            in_service: None,
            busy: SimDuration::ZERO,
            completed: 0,
            errors: 0,
            demand_response: Tally::new(),
            prefetch_response: Tally::new(),
            response: Tally::new(),
            queue_delay: Tally::new(),
            queue_len: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    /// Submit `req` at `req.submitted`. If the disk is idle the request
    /// starts at once and its completion time is returned — the caller
    /// must schedule a completion event and call [`Disk::complete`] then.
    /// Otherwise the request queues and `Ok(None)` is returned — unless a
    /// queue limit is configured and already reached, in which case the
    /// request is rejected with [`QueueFull`] and the device is untouched.
    pub fn submit(&mut self, req: DiskRequest) -> Result<Option<SimTime>, QueueFull> {
        if self.in_service.is_none() {
            debug_assert!(self.queue.is_empty(), "idle disk with queued work");
            Ok(Some(self.start(req, req.submitted)))
        } else {
            if let Some(limit) = self.queue_limit {
                if self.queue.len() >= limit {
                    return Err(QueueFull {
                        depth: self.queue.len(),
                    });
                }
            }
            self.queue_len.add(req.submitted, 1.0);
            self.queue.push_back(req);
            self.max_depth = self.max_depth.max(self.queue.len());
            Ok(None)
        }
    }

    /// Remove the first queued request matching `pred` (in queue order),
    /// keeping the time-weighted queue-length accounting consistent.
    /// The in-service request is never cancelled. Returns the removed
    /// request, if any.
    pub fn cancel_queued(
        &mut self,
        now: SimTime,
        pred: impl Fn(&DiskRequest) -> bool,
    ) -> Option<DiskRequest> {
        let pos = self.queue.iter().position(pred)?;
        let req = self
            .queue
            .remove(pos)
            .expect("cancel position within queue bounds");
        self.queue_len.add(now, -1.0);
        Some(req)
    }

    /// The in-flight request finished at `now`. Returns the finished
    /// request (with its completion status) and, if the queue was
    /// non-empty, the next request together with its completion time (the
    /// caller schedules the next completion event).
    pub fn complete(&mut self, now: SimTime) -> (Finished, Option<(DiskRequest, SimTime)>) {
        let done = self.in_service.take().expect("complete on an idle disk");
        debug_assert_eq!(done.completion, now, "completion fired at the wrong time");
        self.completed += 1;
        if done.status.is_err() {
            self.errors += 1;
        }
        let response = now.saturating_since(done.req.submitted);
        self.response.record(response);
        match done.req.kind {
            FetchKind::Demand => self.demand_response.record(response),
            FetchKind::Prefetch => self.prefetch_response.record(response),
            // Scrub reads and repair rewrites are maintenance traffic;
            // they occupy the device but stay out of the paper's
            // demand/prefetch response split.
            FetchKind::Scrub | FetchKind::Repair => {}
        }
        let next = self.dequeue().map(|req| {
            self.queue_len.add(now, -1.0);
            self.queue_delay.record(now.saturating_since(req.submitted));
            let completion = self.start(req, now);
            (req, completion)
        });
        (
            Finished {
                req: done.req,
                status: done.status,
                service: done.service,
                corrupt: done.corrupt,
            },
            next,
        )
    }

    /// Pick the next queued request per the discipline.
    fn dequeue(&mut self) -> Option<DiskRequest> {
        match self.discipline {
            Discipline::Fifo => self.queue.pop_front(),
            Discipline::DemandPriority => {
                let pos = self
                    .queue
                    .iter()
                    .position(|r| r.kind == FetchKind::Demand)
                    .unwrap_or(0);
                if self.queue.is_empty() {
                    None
                } else {
                    self.queue.remove(pos)
                }
            }
        }
    }

    /// Begin servicing `req` at `start`; returns its completion time.
    ///
    /// The fault-free service time is drawn first, then the fault
    /// schedule (if any) adjusts it and decides the outcome — so a disk
    /// with no faults attached draws exactly the baseline sequence.
    fn start(&mut self, req: DiskRequest, start: SimTime) -> SimTime {
        let base = self.service.service_time(req.physical, &mut self.rng);
        let applied = match &mut self.faults {
            Some(f) => f.apply(start, base),
            None => crate::fault::Applied::clean(base),
        };
        self.busy += applied.service;
        let completion = start + applied.service;
        self.in_service = Some(InService {
            req,
            completion,
            status: applied.status,
            service: applied.service,
            corrupt: applied.corrupt,
        });
        completion
    }

    /// Attach a fault schedule. Replaces any previous schedule; a disk
    /// without one behaves exactly as before the fault layer existed.
    pub fn set_faults(&mut self, faults: DeviceFaults) {
        self.faults = Some(faults);
    }

    /// Bound the request queue to `limit` waiting requests (excluding the
    /// one in service); `None` restores the unbounded default. Submissions
    /// beyond the bound are rejected with [`QueueFull`].
    pub fn set_queue_limit(&mut self, limit: Option<usize>) {
        self.queue_limit = limit;
    }

    /// The configured queue bound, if any.
    pub fn queue_limit(&self) -> Option<usize> {
        self.queue_limit
    }

    /// Deepest the queue has ever been (waiting requests only).
    pub fn max_queue_depth(&self) -> usize {
        self.max_depth
    }

    /// Queued requests of the given kind (excluding the one in service).
    pub fn queued_of_kind(&self, kind: FetchKind) -> usize {
        self.queue.iter().filter(|r| r.kind == kind).count()
    }

    /// True when a request is in service.
    pub fn busy_now(&self) -> bool {
        self.in_service.is_some()
    }

    /// Requests completed so far.
    pub fn ops(&self) -> u64 {
        self.completed
    }

    /// Requests that completed with an injected fault.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Requests waiting in queue (excluding the one in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Distribution of response times over all completed requests.
    pub fn response(&self) -> &Tally {
        &self.response
    }

    /// Response-time distribution of demand fetches only.
    pub fn demand_response(&self) -> &Tally {
        &self.demand_response
    }

    /// Response-time distribution of prefetches only.
    pub fn prefetch_response(&self) -> &Tally {
        &self.prefetch_response
    }

    /// Distribution of time spent queued before service began (queued
    /// requests only; immediate starts contribute nothing).
    pub fn queue_delay(&self) -> &Tally {
        &self.queue_delay
    }

    /// Fraction of `[0, now]` the device was busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_nanos();
        if span == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / span as f64
        }
    }

    /// Aggregate busy time (sum of service times started so far).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Time-averaged queue length over `[0, now]`.
    pub fn avg_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.average(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{BlockId, ProcId};

    fn req(at_ms: u64, kind: FetchKind, block: u32) -> DiskRequest {
        DiskRequest {
            block: BlockId(block),
            physical: block,
            kind,
            initiator: ProcId(0),
            submitted: SimTime::ZERO + SimDuration::from_millis(at_ms),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn disk(d: Discipline) -> Disk {
        Disk::new(Service::paper(), d, Rng::seeded(1))
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = disk(Discipline::Fifo);
        let completion = d.submit(req(0, FetchKind::Demand, 0)).unwrap().unwrap();
        assert_eq!(completion, t(30));
        assert!(d.busy_now());
        let (done, next) = d.complete(t(30));
        assert_eq!(done.req.block, BlockId(0));
        assert_eq!(done.status, Ok(()));
        assert_eq!(done.service, SimDuration::from_millis(30));
        assert!(next.is_none());
        assert!(!d.busy_now());
        assert_eq!(d.ops(), 1);
        assert_eq!(d.errors(), 0);
    }

    #[test]
    fn busy_disk_queues_fifo() {
        let mut d = disk(Discipline::Fifo);
        assert_eq!(d.submit(req(0, FetchKind::Demand, 0)), Ok(Some(t(30))));
        assert_eq!(d.submit(req(5, FetchKind::Demand, 1)), Ok(None));
        assert_eq!(d.submit(req(6, FetchKind::Demand, 2)), Ok(None));
        assert_eq!(d.queued(), 2);
        let (done, next) = d.complete(t(30));
        assert_eq!(done.req.block, BlockId(0));
        let (nreq, ncomp) = next.unwrap();
        assert_eq!(nreq.block, BlockId(1));
        assert_eq!(ncomp, t(60));
        let (done, next) = d.complete(t(60));
        assert_eq!(done.req.block, BlockId(1));
        assert_eq!(next.unwrap().0.block, BlockId(2));
        // Response of block 1: submitted at 5, done at 60 -> 55ms.
        assert!((d.response().mean_millis() - (30.0 + 55.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn demand_priority_jumps_prefetches() {
        let mut d = disk(Discipline::DemandPriority);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        d.submit(req(1, FetchKind::Prefetch, 1)).unwrap();
        d.submit(req(2, FetchKind::Prefetch, 2)).unwrap();
        d.submit(req(3, FetchKind::Demand, 3)).unwrap();
        let (_, next) = d.complete(t(30));
        // The demand fetch (block 3) overtakes both queued prefetches.
        assert_eq!(next.unwrap().0.block, BlockId(3));
        let (_, next) = d.complete(t(60));
        assert_eq!(next.unwrap().0.block, BlockId(1));
    }

    #[test]
    fn fifo_never_reorders() {
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Prefetch, 0)).unwrap();
        d.submit(req(1, FetchKind::Prefetch, 1)).unwrap();
        d.submit(req(2, FetchKind::Demand, 2)).unwrap();
        let (_, next) = d.complete(t(30));
        assert_eq!(next.unwrap().0.block, BlockId(1));
    }

    #[test]
    fn kinds_tracked_separately() {
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        d.complete(t(30));
        d.submit(req(100, FetchKind::Prefetch, 1)).unwrap();
        d.complete(t(130));
        assert_eq!(d.demand_response().count(), 1);
        assert_eq!(d.prefetch_response().count(), 1);
        assert!((d.demand_response().mean_millis() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_accumulates() {
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        d.complete(t(30));
        d.submit(req(70, FetchKind::Demand, 1)).unwrap();
        d.complete(t(100));
        // Busy 60ms out of 100ms.
        assert!((d.utilization(t(100)) - 0.6).abs() < 1e-9);
        assert_eq!(d.busy_time(), SimDuration::from_millis(60));
    }

    #[test]
    fn queue_delay_recorded_for_waiters_only() {
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        d.submit(req(10, FetchKind::Demand, 1)).unwrap();
        d.complete(t(30));
        // Block 1 waited from 10 to 30.
        assert_eq!(d.queue_delay().count(), 1);
        assert!((d.queue_delay().mean_millis() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "complete on an idle disk")]
    fn complete_when_idle_panics() {
        let mut d = disk(Discipline::Fifo);
        d.complete(t(0));
    }

    /// Regression: a request arriving exactly at a prior completion time
    /// must not be double-delayed by stale busy accounting — both the
    /// complete-then-submit and the submit-then-complete ordering at the
    /// same instant must start service at that instant.
    #[test]
    fn arrival_at_completion_instant_not_double_delayed() {
        // Ordering A: completion processed first, then the new arrival
        // finds an idle device and starts immediately.
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        let (_, next) = d.complete(t(30));
        assert!(next.is_none());
        let completion = d.submit(req(30, FetchKind::Demand, 1)).unwrap().unwrap();
        assert_eq!(completion, t(60), "idle restart at t must finish at t+30");

        // Ordering B: the arrival is submitted while the prior request is
        // still in service (its completion is also at t=30); it queues,
        // and the completion must start it at 30 — not at 60.
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        assert!(d.submit(req(30, FetchKind::Demand, 1)).unwrap().is_none());
        let (_, next) = d.complete(t(30));
        let (nreq, ncomp) = next.unwrap();
        assert_eq!(nreq.block, BlockId(1));
        assert_eq!(ncomp, t(60), "queued same-instant arrival double-delayed");
        // It never actually waited, so its queue delay is zero.
        assert!((d.queue_delay().mean_millis() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_queue_rejects_past_limit() {
        let mut d = disk(Discipline::Fifo);
        d.set_queue_limit(Some(2));
        assert_eq!(d.queue_limit(), Some(2));
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        assert_eq!(d.submit(req(1, FetchKind::Demand, 1)), Ok(None));
        assert_eq!(d.submit(req(2, FetchKind::Prefetch, 2)), Ok(None));
        // Third waiter exceeds the bound: rejected, device untouched.
        assert_eq!(
            d.submit(req(3, FetchKind::Demand, 3)),
            Err(QueueFull { depth: 2 })
        );
        assert_eq!(d.queued(), 2);
        assert_eq!(d.max_queue_depth(), 2);
        // Draining frees a slot again.
        let (_, next) = d.complete(t(30));
        assert!(next.is_some());
        assert_eq!(d.submit(req(31, FetchKind::Demand, 4)), Ok(None));
    }

    #[test]
    fn cancel_queued_removes_first_match_only() {
        let mut d = disk(Discipline::Fifo);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        d.submit(req(1, FetchKind::Prefetch, 1)).unwrap();
        d.submit(req(2, FetchKind::Prefetch, 2)).unwrap();
        assert_eq!(d.queued_of_kind(FetchKind::Prefetch), 2);
        let cancelled = d
            .cancel_queued(t(5), |r| r.kind == FetchKind::Prefetch)
            .unwrap();
        assert_eq!(cancelled.block, BlockId(1));
        assert_eq!(d.queued(), 1);
        assert_eq!(d.queued_of_kind(FetchKind::Prefetch), 1);
        // The in-service demand request is never a cancellation target.
        assert!(d
            .cancel_queued(t(5), |r| r.kind == FetchKind::Demand)
            .is_none());
        assert!(d.busy_now());
        // Queue accounting stays consistent: the remaining prefetch drains.
        let (_, next) = d.complete(t(30));
        assert_eq!(next.unwrap().0.block, BlockId(2));
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let mut d = disk(Discipline::Fifo);
        assert_eq!(d.max_queue_depth(), 0);
        d.submit(req(0, FetchKind::Demand, 0)).unwrap();
        assert_eq!(d.max_queue_depth(), 0, "in-service request is not depth");
        d.submit(req(1, FetchKind::Demand, 1)).unwrap();
        d.submit(req(2, FetchKind::Demand, 2)).unwrap();
        assert_eq!(d.max_queue_depth(), 2);
        d.complete(t(30));
        d.complete(t(60));
        // Draining never lowers the high-water mark.
        assert_eq!(d.max_queue_depth(), 2);
    }

    #[test]
    fn straggler_window_slows_service_and_flags_nothing() {
        use crate::fault::{DeviceFaults, FaultPlan};
        use crate::request::DiskId;
        let mut d = disk(Discipline::Fifo);
        let plan = FaultPlan::none().straggler(DiskId(0), 4.0, t(0), Some(t(100)));
        d.set_faults(DeviceFaults::new(
            plan.for_disk(DiskId(0)).to_vec(),
            Rng::seeded(3),
        ));
        assert_eq!(d.submit(req(0, FetchKind::Demand, 0)), Ok(Some(t(120))));
        let (done, _) = d.complete(t(120));
        assert_eq!(done.status, Ok(()));
        assert_eq!(done.service, SimDuration::from_millis(120));
        // Outside the window, service is back to the 30 ms baseline.
        assert_eq!(d.submit(req(120, FetchKind::Demand, 1)), Ok(Some(t(150))));
        assert_eq!(d.errors(), 0);
    }

    #[test]
    fn corrupt_window_completes_ok_with_flag_and_counts_no_error() {
        use crate::fault::{DeviceFaults, FaultPlan};
        use crate::request::DiskId;
        let mut d = disk(Discipline::Fifo);
        // Probability ~1: the draw always corrupts inside the window.
        let plan = FaultPlan::none().corrupt(DiskId(0), 0.999_999, t(0), Some(t(50)));
        d.set_faults(DeviceFaults::new(
            plan.for_disk(DiskId(0)).to_vec(),
            Rng::seeded(3),
        ));
        assert_eq!(d.submit(req(0, FetchKind::Demand, 0)), Ok(Some(t(30))));
        let (done, _) = d.complete(t(30));
        assert_eq!(done.status, Ok(()));
        assert!(done.corrupt, "in-window request carries the corrupt flag");
        assert_eq!(done.service, SimDuration::from_millis(30));
        assert_eq!(d.errors(), 0, "silent corruption is not a device error");
        // Outside the window, completions are clean again.
        assert_eq!(d.submit(req(50, FetchKind::Demand, 1)), Ok(Some(t(80))));
        let (done, _) = d.complete(t(80));
        assert!(!done.corrupt);
    }

    #[test]
    fn outage_fails_fast_and_counts_errors() {
        use crate::fault::{DeviceFaults, DiskFault, FaultPlan, OUTAGE_ERROR_LATENCY};
        use crate::request::DiskId;
        let mut d = disk(Discipline::Fifo);
        let plan = FaultPlan::none().outage(DiskId(0), t(0), Some(t(50)));
        d.set_faults(DeviceFaults::new(
            plan.for_disk(DiskId(0)).to_vec(),
            Rng::seeded(3),
        ));
        let completion = d.submit(req(0, FetchKind::Demand, 0)).unwrap().unwrap();
        assert_eq!(completion, SimTime::ZERO + OUTAGE_ERROR_LATENCY);
        let (done, _) = d.complete(completion);
        assert_eq!(done.status, Err(DiskFault::DeviceDown));
        assert_eq!(d.errors(), 1);
        // After the repair time the device serves normally again.
        assert_eq!(d.submit(req(50, FetchKind::Demand, 1)), Ok(Some(t(80))));
        let (done, _) = d.complete(t(80));
        assert_eq!(done.status, Ok(()));
        assert_eq!(d.errors(), 1);
    }
}
