//! Disk request descriptors.

use rt_sim::SimTime;

/// Identifies a processor node (one user process per node, as on the
/// Butterfly testbed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Index for per-processor arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a physical disk device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub u16);

impl DiskId {
    /// Index for per-disk arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A logical block number within a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index for per-block arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a disk request was issued — the paper's accounting distinguishes
/// demand fetches from prefetches throughout; the integrity layer adds
/// maintenance traffic on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FetchKind {
    /// Issued on behalf of a blocked user read.
    Demand,
    /// Issued by the prefetching component during idle time.
    Prefetch,
    /// Issued by the integrity scrubber during idle time: a verify-only
    /// read that never lands in the cache.
    Scrub,
    /// A read-repair rewrite: after a corrupt copy was re-fetched from a
    /// healthy replica, the clean payload is written back over the bad
    /// copy. Occupies the device like any other request.
    Repair,
}

/// One read request as seen by a disk device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskRequest {
    /// The file block being fetched.
    pub block: BlockId,
    /// Physical block offset on the target disk (after interleaving).
    pub physical: u32,
    /// Demand fetch or prefetch.
    pub kind: FetchKind,
    /// The node that issued the request.
    pub initiator: ProcId,
    /// When the request was placed on the disk queue.
    pub submitted: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index() {
        assert_eq!(ProcId(3).index(), 3);
        assert_eq!(DiskId(19).index(), 19);
        assert_eq!(BlockId(1999).index(), 1999);
    }

    #[test]
    fn ids_order() {
        assert!(BlockId(1) < BlockId(2));
        assert!(ProcId(0) < ProcId(1));
    }
}
