//! The parallel independent disk subsystem: all devices plus the file
//! layout, behind one event-driven submit/complete interface.

use rt_sim::{Rng, SimDuration, SimTime, Tally};

use crate::device::{Discipline, Disk, QueueFull};
use crate::fault::{DeviceFaults, DiskFault, FaultPlan};
use crate::request::{BlockId, DiskId, DiskRequest, FetchKind, ProcId};
use crate::service::Service;
use crate::striping::{FileLayout, Layout};

/// A newly started disk request the caller must schedule completion for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Started {
    /// The device servicing it.
    pub disk: DiskId,
    /// The block being fetched.
    pub block: BlockId,
    /// What the request is for (demand, prefetch, scrub, repair).
    pub kind: FetchKind,
    /// When the I/O completes; call
    /// [`DiskSubsystem::complete`] at this instant.
    pub completion: SimTime,
}

/// A finished I/O as reported by [`DiskSubsystem::complete`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completed {
    /// The block whose fetch finished.
    pub block: BlockId,
    /// Demand fetch or prefetch.
    pub kind: FetchKind,
    /// The process that requested it.
    pub initiator: ProcId,
    /// `Ok` on success; `Err` carries the injected fault.
    pub status: Result<(), DiskFault>,
    /// Device service time of this request (excludes queueing).
    pub service: SimDuration,
    /// When the request was originally submitted to the subsystem (for
    /// response-time and queue-delay attribution at the caller).
    pub submitted: SimTime,
    /// True when the completion is `Ok` but the payload is silently
    /// corrupt.
    pub corrupt: bool,
}

/// All disks of the machine plus the (single) file's layout across them.
///
/// The testbed studies one parallel computation reading one interleaved
/// file, so a single layout suffices; the subsystem still exposes
/// per-device statistics to observe load imbalance.
///
/// `Clone` snapshots every device — queues, in-service requests, fault
/// state, and statistics — for world forking.
#[derive(Clone)]
pub struct DiskSubsystem {
    disks: Vec<Disk>,
    layout: FileLayout,
}

impl DiskSubsystem {
    /// Build `disk_count` devices sharing a `service` model and queue
    /// `discipline` (each with an independent random stream derived from
    /// `rng`), with `layout` mapping file blocks onto them.
    pub fn new(
        disk_count: u16,
        service: Service,
        discipline: Discipline,
        layout: FileLayout,
        rng: &Rng,
    ) -> Self {
        assert!(disk_count > 0, "need at least one disk");
        assert!(
            layout.disk_count() <= disk_count,
            "layout spans more disks than exist"
        );
        let disks = (0..disk_count)
            .map(|i| {
                Disk::new(
                    service.clone(),
                    discipline,
                    rng.split(0x6469_736b_0000 + i as u64),
                )
            })
            .collect();
        DiskSubsystem { disks, layout }
    }

    /// The paper's subsystem: 20 disks, 30 ms fixed latency, FCFS queues,
    /// round-robin interleave.
    pub fn paper(rng: &Rng) -> Self {
        DiskSubsystem::new(
            20,
            Service::paper(),
            Discipline::Fifo,
            FileLayout::paper(),
            rng,
        )
    }

    /// Submit a read of `block` at time `now`. Returns `Ok(Some)` when the
    /// request starts service immediately (schedule its completion);
    /// `Ok(None)` when it queued behind other work on its disk; `Err` when
    /// the disk's bounded queue rejected it.
    pub fn read(
        &mut self,
        now: SimTime,
        block: BlockId,
        kind: FetchKind,
        initiator: ProcId,
    ) -> Result<Option<Started>, QueueFull> {
        let placement = self.layout.place(block);
        self.read_placed(now, block, placement, kind, initiator)
    }

    /// Submit a read with an explicit placement, bypassing the subsystem's
    /// own layout — used by the file-system layer, which places each block
    /// through its file's layout.
    pub fn read_placed(
        &mut self,
        now: SimTime,
        block: BlockId,
        placement: crate::striping::Placement,
        kind: FetchKind,
        initiator: ProcId,
    ) -> Result<Option<Started>, QueueFull> {
        let req = DiskRequest {
            block,
            physical: placement.physical,
            kind,
            initiator,
            submitted: now,
        };
        Ok(self.disks[placement.disk.index()]
            .submit(req)?
            .map(|completion| Started {
                disk: placement.disk,
                block,
                kind,
                completion,
            }))
    }

    /// Remove the first queued request on `disk` matching `pred`, if any.
    /// The in-service request is never cancelled.
    pub fn cancel_queued(
        &mut self,
        disk: DiskId,
        now: SimTime,
        pred: impl Fn(&DiskRequest) -> bool,
    ) -> Option<DiskRequest> {
        self.disks[disk.index()].cancel_queued(now, pred)
    }

    /// Bound every device's queue to `limit` waiting requests (`None`
    /// restores the unbounded default).
    pub fn set_queue_limit(&mut self, limit: Option<usize>) {
        for d in &mut self.disks {
            d.set_queue_limit(limit);
        }
    }

    /// Deepest any device's queue has ever been.
    pub fn max_queue_depth(&self) -> usize {
        self.disks
            .iter()
            .map(Disk::max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// The in-flight request on `disk` finished at `now`. Returns the
    /// finished request (with its completion status) and, if more work was
    /// queued, the next started request (schedule its completion).
    pub fn complete(&mut self, disk: DiskId, now: SimTime) -> (Completed, Option<Started>) {
        let (done, next) = self.disks[disk.index()].complete(now);
        (
            Completed {
                block: done.req.block,
                kind: done.req.kind,
                initiator: done.req.initiator,
                status: done.status,
                service: done.service,
                submitted: done.req.submitted,
                corrupt: done.corrupt,
            },
            next.map(|(req, completion)| Started {
                disk,
                block: req.block,
                kind: req.kind,
                completion,
            }),
        )
    }

    /// Install a fault schedule: each device named in `plan` gets its
    /// windows plus a private random stream split from `rng`. Devices the
    /// plan never mentions keep running with no fault layer at all, so an
    /// empty plan changes nothing.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, rng: &Rng) {
        for (i, disk) in self.disks.iter_mut().enumerate() {
            let windows = plan.for_disk(DiskId(i as u16));
            if !windows.is_empty() {
                disk.set_faults(DeviceFaults::new(
                    windows.to_vec(),
                    rng.split(0xfa17_0000 + i as u64),
                ));
            }
        }
    }

    /// Number of devices.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Per-device view (for load-imbalance reporting).
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// Total requests completed across all devices.
    pub fn total_ops(&self) -> u64 {
        self.disks.iter().map(|d| d.ops()).sum()
    }

    /// Total requests that completed with an injected fault.
    pub fn total_errors(&self) -> u64 {
        self.disks.iter().map(|d| d.errors()).sum()
    }

    /// Merged response-time distribution across devices — the paper's
    /// "average effective disk access time".
    pub fn response(&self) -> Tally {
        let mut t = Tally::new();
        for d in &self.disks {
            t.merge(d.response());
        }
        t
    }

    /// Merged queue-delay distribution across devices.
    pub fn queue_delay(&self) -> Tally {
        let mut t = Tally::new();
        for d in &self.disks {
            t.merge(d.queue_delay());
        }
        t
    }

    /// Mean utilization across devices over `[0, now]`.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        if self.disks.is_empty() {
            return 0.0;
        }
        self.disks.iter().map(|d| d.utilization(now)).sum::<f64>() / self.disks.len() as f64
    }

    /// Aggregate busy time across devices.
    pub fn total_busy(&self) -> SimDuration {
        self.disks.iter().map(|d| d.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subsystem(disks: u16) -> DiskSubsystem {
        DiskSubsystem::new(
            disks,
            Service::paper(),
            Discipline::Fifo,
            FileLayout::interleaved(disks),
            &Rng::seeded(7),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn parallel_blocks_start_in_parallel() {
        let mut s = subsystem(4);
        // Blocks 0..4 hit distinct disks; all start immediately.
        for b in 0..4 {
            let started = s
                .read(SimTime::ZERO, BlockId(b), FetchKind::Demand, ProcId(0))
                .unwrap()
                .expect("idle disk starts at once");
            assert_eq!(started.completion, t(30));
            assert_eq!(started.disk, DiskId(b as u16));
        }
    }

    #[test]
    fn same_disk_blocks_serialize() {
        let mut s = subsystem(4);
        let a = s
            .read(SimTime::ZERO, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        assert!(a.is_some());
        // Block 4 maps to the same disk: it queues.
        let b = s
            .read(SimTime::ZERO, BlockId(4), FetchKind::Demand, ProcId(1))
            .unwrap();
        assert!(b.is_none());
        let (done, next) = s.complete(DiskId(0), t(30));
        assert_eq!(done.block, BlockId(0));
        assert_eq!(done.kind, FetchKind::Demand);
        assert_eq!(done.initiator, ProcId(0));
        assert_eq!(done.status, Ok(()));
        let next = next.unwrap();
        assert_eq!(next.block, BlockId(4));
        assert_eq!(next.completion, t(60));
        let (done, next) = s.complete(DiskId(0), t(60));
        assert_eq!(done.block, BlockId(4));
        assert!(next.is_none());
        assert_eq!(s.total_ops(), 2);
        assert_eq!(s.total_errors(), 0);
    }

    #[test]
    fn fault_plan_applies_only_to_named_devices() {
        use crate::fault::{DiskFault, FaultPlan};
        let mut s = subsystem(4);
        let plan = FaultPlan::none().outage(DiskId(1), SimTime::ZERO, None);
        s.set_fault_plan(&plan, &Rng::seeded(11));
        let ok = s
            .read(SimTime::ZERO, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        assert_eq!(ok.completion, t(30));
        let bad = s
            .read(SimTime::ZERO, BlockId(1), FetchKind::Demand, ProcId(0))
            .unwrap()
            .unwrap();
        assert!(bad.completion < t(30), "outage fails fast");
        let (done, _) = s.complete(DiskId(1), bad.completion);
        assert_eq!(done.status, Err(DiskFault::DeviceDown));
        let (done, _) = s.complete(DiskId(0), t(30));
        assert_eq!(done.status, Ok(()));
        assert_eq!(s.total_errors(), 1);
    }

    #[test]
    fn response_merges_devices() {
        let mut s = subsystem(2);
        s.read(SimTime::ZERO, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        s.read(SimTime::ZERO, BlockId(1), FetchKind::Demand, ProcId(1))
            .unwrap();
        s.read(SimTime::ZERO, BlockId(2), FetchKind::Prefetch, ProcId(0))
            .unwrap();
        s.complete(DiskId(0), t(30));
        s.complete(DiskId(1), t(30));
        s.complete(DiskId(0), t(60));
        let r = s.response();
        assert_eq!(r.count(), 3);
        // Two immediate (30) + one queued (60).
        assert!((r.mean_millis() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn queue_limit_and_cancel_apply_per_device() {
        let mut s = subsystem(2);
        s.set_queue_limit(Some(1));
        // Disk 0: one in service, one queued, then full.
        s.read(SimTime::ZERO, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        s.read(SimTime::ZERO, BlockId(2), FetchKind::Prefetch, ProcId(0))
            .unwrap();
        assert_eq!(
            s.read(SimTime::ZERO, BlockId(4), FetchKind::Demand, ProcId(1)),
            Err(QueueFull { depth: 1 })
        );
        // Disk 1 is unaffected by disk 0's backlog.
        assert!(s
            .read(SimTime::ZERO, BlockId(1), FetchKind::Demand, ProcId(1))
            .unwrap()
            .is_some());
        // Cancelling the queued prefetch frees the slot.
        let cancelled = s
            .cancel_queued(DiskId(0), SimTime::ZERO, |r| r.kind == FetchKind::Prefetch)
            .unwrap();
        assert_eq!(cancelled.block, BlockId(2));
        assert!(s
            .read(SimTime::ZERO, BlockId(4), FetchKind::Demand, ProcId(1))
            .unwrap()
            .is_none());
        assert_eq!(s.max_queue_depth(), 1);
    }

    #[test]
    fn paper_subsystem_shape() {
        let s = DiskSubsystem::paper(&Rng::seeded(1));
        assert_eq!(s.disk_count(), 20);
    }

    #[test]
    #[should_panic(expected = "more disks than exist")]
    fn layout_wider_than_subsystem_rejected() {
        let _ = DiskSubsystem::new(
            2,
            Service::paper(),
            Discipline::Fifo,
            FileLayout::interleaved(4),
            &Rng::seeded(1),
        );
    }

    #[test]
    fn utilization_and_busy_aggregate() {
        let mut s = subsystem(2);
        s.read(SimTime::ZERO, BlockId(0), FetchKind::Demand, ProcId(0))
            .unwrap();
        s.complete(DiskId(0), t(30));
        let now = t(60);
        // Disk 0 busy 30/60, disk 1 idle -> mean 0.25.
        assert!((s.mean_utilization(now) - 0.25).abs() < 1e-9);
        assert_eq!(s.total_busy(), SimDuration::from_millis(30));
    }
}
