//! Disk service-time models.
//!
//! The paper's testbed simulated its disks with a **fixed 30 ms access
//! time** per block ([`FixedLatency`]); we reproduce that as the default.
//! [`SeekRotate`] is an extension — a conventional seek, rotational-latency
//! and transfer model — for studying how sensitive the paper's conclusions
//! are to the flat-latency assumption (the authors list more realistic
//! device models as future work). Both plug into the same [`ServiceModel`]
//! trait.

use rt_sim::{Rng, SimDuration};

/// Computes the service time of the next request given the physical block
/// it targets. Implementations may keep per-device state (e.g. head
/// position).
pub trait ServiceModel {
    /// Service time for a request at `physical` block offset.
    fn service_time(&mut self, physical: u32, rng: &mut Rng) -> SimDuration;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's model: every access costs the same fixed latency.
#[derive(Clone, Copy, Debug)]
pub struct FixedLatency {
    /// Cost of any single-block access.
    pub latency: SimDuration,
}

impl FixedLatency {
    /// The paper's 30 ms disk.
    pub fn paper() -> Self {
        FixedLatency {
            latency: SimDuration::from_millis(30),
        }
    }
}

impl ServiceModel for FixedLatency {
    fn service_time(&mut self, _physical: u32, _rng: &mut Rng) -> SimDuration {
        self.latency
    }

    fn name(&self) -> &'static str {
        "fixed-latency"
    }
}

/// Geometry for the seek/rotate model.
#[derive(Clone, Copy, Debug)]
pub struct DiskGeometry {
    /// Number of cylinders.
    pub cylinders: u32,
    /// Blocks per track (one track per cylinder in this simplified model).
    pub blocks_per_track: u32,
    /// Full-stroke seek time; a seek over `d` cylinders costs
    /// `seek_min + (seek_full - seek_min) * d / cylinders`.
    pub seek_full: SimDuration,
    /// Single-cylinder seek time.
    pub seek_min: SimDuration,
    /// Time for one full platter rotation.
    pub rotation: SimDuration,
}

impl DiskGeometry {
    /// A geometry loosely patterned on a late-1980s Winchester drive, tuned
    /// so the *average* access is near the paper's 30 ms.
    pub fn vintage() -> Self {
        DiskGeometry {
            cylinders: 1024,
            blocks_per_track: 32,
            seek_full: SimDuration::from_millis(45),
            seek_min: SimDuration::from_millis(5),
            rotation: SimDuration::from_millis(17),
        }
    }
}

/// Seek + rotational latency + transfer model with a moving head.
#[derive(Clone, Debug)]
pub struct SeekRotate {
    geometry: DiskGeometry,
    head_cylinder: u32,
}

impl SeekRotate {
    /// A drive with the head parked at cylinder 0.
    pub fn new(geometry: DiskGeometry) -> Self {
        SeekRotate {
            geometry,
            head_cylinder: 0,
        }
    }

    /// Cylinder holding `physical`.
    fn cylinder_of(&self, physical: u32) -> u32 {
        (physical / self.geometry.blocks_per_track) % self.geometry.cylinders
    }
}

impl ServiceModel for SeekRotate {
    fn service_time(&mut self, physical: u32, rng: &mut Rng) -> SimDuration {
        let g = &self.geometry;
        let target = self.cylinder_of(physical);
        let distance = target.abs_diff(self.head_cylinder) as u64;
        let seek = if distance == 0 {
            SimDuration::ZERO
        } else {
            let span = g.seek_full.saturating_sub(g.seek_min).as_nanos();
            g.seek_min + SimDuration::from_nanos(span * distance / g.cylinders as u64)
        };
        self.head_cylinder = target;
        // Rotational latency: uniform over one rotation.
        let rot = SimDuration::from_nanos(rng.below(g.rotation.as_nanos().max(1)));
        // Transfer: one block out of blocks_per_track per rotation.
        let transfer = g.rotation / g.blocks_per_track as u64;
        seek + rot + transfer
    }

    fn name(&self) -> &'static str {
        "seek-rotate"
    }
}

/// Runtime-selectable service model (avoids generics bleeding through the
/// device layer).
#[derive(Clone, Debug)]
pub enum Service {
    /// Fixed per-access latency (the paper's model).
    Fixed(FixedLatency),
    /// Seek + rotation + transfer.
    SeekRotate(SeekRotate),
}

impl Service {
    /// The paper's 30 ms fixed-latency disk.
    pub fn paper() -> Self {
        Service::Fixed(FixedLatency::paper())
    }
}

impl ServiceModel for Service {
    fn service_time(&mut self, physical: u32, rng: &mut Rng) -> SimDuration {
        match self {
            Service::Fixed(m) => m.service_time(physical, rng),
            Service::SeekRotate(m) => m.service_time(physical, rng),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Service::Fixed(m) => m.name(),
            Service::SeekRotate(m) => m.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_constant() {
        let mut m = FixedLatency::paper();
        let mut rng = Rng::seeded(1);
        for p in [0u32, 7, 1999] {
            assert_eq!(m.service_time(p, &mut rng), SimDuration::from_millis(30));
        }
    }

    #[test]
    fn seek_rotate_zero_seek_on_same_cylinder() {
        let g = DiskGeometry::vintage();
        let mut m = SeekRotate::new(g);
        let mut rng = Rng::seeded(2);
        // Two accesses on cylinder 0: second involves no seek component,
        // so it is bounded by rotation + transfer.
        let _ = m.service_time(0, &mut rng);
        let t = m.service_time(1, &mut rng);
        assert!(t <= g.rotation + g.rotation / g.blocks_per_track as u64);
    }

    #[test]
    fn seek_rotate_longer_for_far_seeks() {
        let g = DiskGeometry::vintage();
        let mut rng = Rng::seeded(3);
        // Average over many draws to wash out rotational randomness.
        let avg = |from: u32, to: u32, rng: &mut Rng| -> f64 {
            let mut total = 0u64;
            for _ in 0..200 {
                let mut m = SeekRotate::new(g);
                let _ = m.service_time(from * g.blocks_per_track, rng);
                total += m.service_time(to * g.blocks_per_track, rng).as_nanos();
            }
            total as f64 / 200.0
        };
        let near = avg(0, 1, &mut rng);
        let far = avg(0, 1000, &mut rng);
        assert!(far > near, "far seek {far} should exceed near seek {near}");
    }

    #[test]
    fn vintage_average_near_30ms() {
        let g = DiskGeometry::vintage();
        let mut m = SeekRotate::new(g);
        let mut rng = Rng::seeded(4);
        let n = 10_000;
        let mut total = 0u64;
        for _ in 0..n {
            let p = rng.below((g.cylinders * g.blocks_per_track) as u64) as u32;
            total += m.service_time(p, &mut rng).as_nanos();
        }
        let avg_ms = total as f64 / n as f64 / 1.0e6;
        assert!(
            (15.0..45.0).contains(&avg_ms),
            "vintage average {avg_ms} ms out of expected band"
        );
    }

    #[test]
    fn service_enum_dispatches() {
        let mut rng = Rng::seeded(5);
        let mut s = Service::paper();
        assert_eq!(s.name(), "fixed-latency");
        assert_eq!(s.service_time(0, &mut rng), SimDuration::from_millis(30));
        let mut s = Service::SeekRotate(SeekRotate::new(DiskGeometry::vintage()));
        assert_eq!(s.name(), "seek-rotate");
        assert!(!s.service_time(0, &mut rng).is_zero());
    }
}
