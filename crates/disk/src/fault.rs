//! Deterministic fault injection for the disk subsystem.
//!
//! A [`FaultPlan`] is a per-device schedule of misbehavior windows —
//! stragglers (service-time multipliers), transient error rates, and hard
//! outages with optional repair times. The plan is declarative and
//! immutable; each device that appears in it gets a [`DeviceFaults`]
//! instance holding its own split random stream, so fault decisions never
//! perturb the service-time stream and an *empty* plan is byte-identical
//! to no fault layer at all.
//!
//! Faults are applied at service-start time: the device first draws its
//! normal service time, then the active windows adjust it and decide the
//! completion status. A failed request still occupies the device (briefly,
//! for outages — the controller rejects fast) and completes with an
//! `Err`, which the upper layers translate into retries, redirects, and
//! prefetch back-off.

use rt_sim::{Rng, SimDuration, SimTime};

use crate::request::DiskId;

/// Why an I/O completed unsuccessfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// A transient error: the same request may well succeed if retried.
    Transient,
    /// The device is down (hard failure window); retries against it fail
    /// until the repair time, if any.
    DeviceDown,
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFault::Transient => write!(f, "transient I/O error"),
            DiskFault::DeviceDown => write!(f, "device down"),
        }
    }
}

/// The kind of misbehavior a fault window injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Every service time in the window is multiplied by `factor`
    /// (a straggler device; `factor` may be < 1 to model a fast outlier).
    Slowdown {
        /// Service-time multiplier, must be positive.
        factor: f64,
    },
    /// The device is hard-down: every request fails fast with
    /// [`DiskFault::DeviceDown`] until the window ends (the repair time).
    Outage,
    /// Each request in the window independently fails with
    /// [`DiskFault::Transient`] at this probability (after full service —
    /// the head moved, the transfer failed).
    Flaky {
        /// Per-request failure probability in `[0, 1]`.
        probability: f64,
    },
}

/// One scheduled fault window on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFault {
    /// The device this window applies to.
    pub disk: DiskId,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `None` means the fault lasts forever
    /// (e.g. an unrepaired outage).
    pub until: Option<SimTime>,
}

impl DeviceFault {
    /// Is this window active for a request starting service at `now`?
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|end| now < end)
    }
}

/// A declarative, per-device schedule of fault windows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    entries: Vec<DeviceFault>,
}

impl FaultPlan {
    /// An empty plan: no faults, provably identical to no fault layer.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All scheduled windows.
    pub fn entries(&self) -> &[DeviceFault] {
        &self.entries
    }

    /// Add an arbitrary window.
    pub fn push(&mut self, fault: DeviceFault) {
        self.entries.push(fault);
    }

    /// Add a straggler window: `disk` serves `factor`× slower in
    /// `[from, until)`.
    pub fn straggler(
        mut self,
        disk: DiskId,
        factor: f64,
        from: SimTime,
        until: Option<SimTime>,
    ) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Slowdown { factor },
            from,
            until,
        });
        self
    }

    /// Add a hard outage starting at `from`, repaired at `until` (or
    /// never, when `None`).
    pub fn outage(mut self, disk: DiskId, from: SimTime, until: Option<SimTime>) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Outage,
            from,
            until,
        });
        self
    }

    /// Add a transient-error window with the given per-request failure
    /// probability.
    pub fn flaky(
        mut self,
        disk: DiskId,
        probability: f64,
        from: SimTime,
        until: Option<SimTime>,
    ) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Flaky { probability },
            from,
            until,
        });
        self
    }

    /// The windows that apply to one device, in schedule order.
    pub fn for_disk(&self, disk: DiskId) -> Vec<DeviceFault> {
        self.entries
            .iter()
            .filter(|e| e.disk == disk)
            .copied()
            .collect()
    }
}

/// How long a request "occupies" a hard-down device before the controller
/// reports the failure. Small but nonzero: error detection is fast but
/// not free, and a zero-length service would let one process spin through
/// unbounded retries at a single instant.
pub const OUTAGE_ERROR_LATENCY: SimDuration = SimDuration::from_millis(1);

/// The instantiated fault state attached to one device: its windows plus
/// a private random stream for transient-error draws.
///
/// The stream is consumed *only* inside active flaky windows, so devices
/// outside their windows — and every device under an empty plan — draw
/// exactly the same service-time sequence as a fault-free run.
#[derive(Clone, Debug)]
pub struct DeviceFaults {
    windows: Vec<DeviceFault>,
    rng: Rng,
}

impl DeviceFaults {
    /// Attach `windows` (already filtered to one device) with a dedicated
    /// random stream.
    pub fn new(windows: Vec<DeviceFault>, rng: Rng) -> Self {
        DeviceFaults { windows, rng }
    }

    /// Apply the schedule to a request starting service at `start` whose
    /// fault-free service time is `base`. Returns the adjusted service
    /// time and the completion status.
    pub fn apply(
        &mut self,
        start: SimTime,
        base: SimDuration,
    ) -> (SimDuration, Result<(), DiskFault>) {
        let mut factor = 1.0f64;
        let mut fail_p = 0.0f64;
        for w in &self.windows {
            if !w.active_at(start) {
                continue;
            }
            match w.kind {
                FaultKind::Outage => {
                    // Hard-down wins over everything: fail fast.
                    return (OUTAGE_ERROR_LATENCY, Err(DiskFault::DeviceDown));
                }
                FaultKind::Slowdown { factor: f } => factor *= f,
                FaultKind::Flaky { probability } => {
                    // Overlapping flaky windows fail independently.
                    fail_p = 1.0 - (1.0 - fail_p) * (1.0 - probability);
                }
            }
        }
        let service = if factor == 1.0 {
            base
        } else {
            SimDuration::from_nanos((base.as_nanos() as f64 * factor).round() as u64)
        };
        if fail_p > 0.0 && self.rng.chance(fail_p) {
            (service, Err(DiskFault::Transient))
        } else {
            (service, Ok(()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn slowdown_scales_only_inside_window() {
        let plan = FaultPlan::none().straggler(DiskId(0), 4.0, t(100), Some(t(200)));
        let mut f = DeviceFaults::new(plan.for_disk(DiskId(0)), Rng::seeded(1));
        assert_eq!(f.apply(t(0), ms(30)), (ms(30), Ok(())));
        assert_eq!(f.apply(t(100), ms(30)), (ms(120), Ok(())));
        assert_eq!(f.apply(t(199), ms(30)), (ms(120), Ok(())));
        assert_eq!(f.apply(t(200), ms(30)), (ms(30), Ok(())));
    }

    #[test]
    fn outage_fails_fast_until_repair() {
        let plan = FaultPlan::none().outage(DiskId(2), t(50), Some(t(80)));
        let mut f = DeviceFaults::new(plan.for_disk(DiskId(2)), Rng::seeded(1));
        assert_eq!(
            f.apply(t(60), ms(30)),
            (OUTAGE_ERROR_LATENCY, Err(DiskFault::DeviceDown))
        );
        assert_eq!(f.apply(t(80), ms(30)), (ms(30), Ok(())));
    }

    #[test]
    fn unrepaired_outage_never_ends() {
        let plan = FaultPlan::none().outage(DiskId(0), t(10), None);
        let mut f = DeviceFaults::new(plan.for_disk(DiskId(0)), Rng::seeded(1));
        assert!(f.apply(t(1_000_000), ms(30)).1.is_err());
    }

    #[test]
    fn flaky_fails_at_roughly_the_given_rate() {
        let plan = FaultPlan::none().flaky(DiskId(0), 0.3, SimTime::ZERO, None);
        let mut f = DeviceFaults::new(plan.for_disk(DiskId(0)), Rng::seeded(42));
        let fails = (0..10_000)
            .filter(|_| f.apply(t(0), ms(30)).1.is_err())
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed failure rate {rate}");
        // Transient failures still take full service time.
        assert_eq!(f.apply(t(0), ms(30)).0, ms(30));
    }

    #[test]
    fn plans_filter_by_device() {
        let plan = FaultPlan::none()
            .straggler(DiskId(1), 2.0, t(0), None)
            .outage(DiskId(3), t(0), None);
        assert_eq!(plan.for_disk(DiskId(1)).len(), 1);
        assert_eq!(plan.for_disk(DiskId(3)).len(), 1);
        assert!(plan.for_disk(DiskId(0)).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let plan = FaultPlan::none().flaky(DiskId(0), 0.5, SimTime::ZERO, None);
        let mut a = DeviceFaults::new(plan.for_disk(DiskId(0)), Rng::seeded(9));
        let mut b = DeviceFaults::new(plan.for_disk(DiskId(0)), Rng::seeded(9));
        for i in 0..100 {
            assert_eq!(a.apply(t(i), ms(30)), b.apply(t(i), ms(30)));
        }
    }
}
