//! Deterministic fault injection for the disk subsystem.
//!
//! A [`FaultPlan`] is a per-device schedule of misbehavior windows —
//! stragglers (service-time multipliers), transient error rates, and hard
//! outages with optional repair times. The plan is declarative and
//! immutable; each device that appears in it gets a [`DeviceFaults`]
//! instance holding its own split random stream, so fault decisions never
//! perturb the service-time stream and an *empty* plan is byte-identical
//! to no fault layer at all.
//!
//! Faults are applied at service-start time: the device first draws its
//! normal service time, then the active windows adjust it and decide the
//! completion status. A failed request still occupies the device (briefly,
//! for outages — the controller rejects fast) and completes with an
//! `Err`, which the upper layers translate into retries, redirects, and
//! prefetch back-off.

use rt_sim::{Rng, SimDuration, SimTime};

use crate::request::DiskId;

/// Why an I/O completed unsuccessfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// A transient error: the same request may well succeed if retried.
    Transient,
    /// The device is down (hard failure window); retries against it fail
    /// until the repair time, if any.
    DeviceDown,
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskFault::Transient => write!(f, "transient I/O error"),
            DiskFault::DeviceDown => write!(f, "device down"),
        }
    }
}

/// The kind of misbehavior a fault window injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Every service time in the window is multiplied by `factor`
    /// (a straggler device; `factor` may be < 1 to model a fast outlier).
    Slowdown {
        /// Service-time multiplier, must be positive.
        factor: f64,
    },
    /// The device is hard-down: every request fails fast with
    /// [`DiskFault::DeviceDown`] until the window ends (the repair time).
    Outage,
    /// Each request in the window independently fails with
    /// [`DiskFault::Transient`] at this probability (after full service —
    /// the head moved, the transfer failed).
    Flaky {
        /// Per-request failure probability in `[0, 1]`.
        probability: f64,
    },
    /// Silent corruption: each request in the window independently
    /// completes `Ok` — full service time, no error — but carries a
    /// corrupt payload at this probability. The device itself never
    /// notices; only checksum verification above the disk layer can.
    Corrupt {
        /// Per-request corruption probability in `[0, 1]`.
        probability: f64,
    },
}

/// One scheduled fault window on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFault {
    /// The device this window applies to.
    pub disk: DiskId,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); `None` means the fault lasts forever
    /// (e.g. an unrepaired outage).
    pub until: Option<SimTime>,
}

impl DeviceFault {
    /// Is this window active for a request starting service at `now`?
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|end| now < end)
    }
}

/// A declarative, per-device schedule of fault windows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    entries: Vec<DeviceFault>,
    /// Per-device index into the schedule, maintained on every push so
    /// [`FaultPlan::for_disk`] is an allocation-free slice lookup.
    per_disk: Vec<Vec<DeviceFault>>,
}

impl FaultPlan {
    /// An empty plan: no faults, provably identical to no fault layer.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All scheduled windows.
    pub fn entries(&self) -> &[DeviceFault] {
        &self.entries
    }

    /// Add an arbitrary window.
    pub fn push(&mut self, fault: DeviceFault) {
        self.entries.push(fault);
        let idx = fault.disk.index();
        if self.per_disk.len() <= idx {
            self.per_disk.resize_with(idx + 1, Vec::new);
        }
        self.per_disk[idx].push(fault);
    }

    /// Add a straggler window: `disk` serves `factor`× slower in
    /// `[from, until)`.
    pub fn straggler(
        mut self,
        disk: DiskId,
        factor: f64,
        from: SimTime,
        until: Option<SimTime>,
    ) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Slowdown { factor },
            from,
            until,
        });
        self
    }

    /// Add a hard outage starting at `from`, repaired at `until` (or
    /// never, when `None`).
    pub fn outage(mut self, disk: DiskId, from: SimTime, until: Option<SimTime>) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Outage,
            from,
            until,
        });
        self
    }

    /// Add a transient-error window with the given per-request failure
    /// probability.
    pub fn flaky(
        mut self,
        disk: DiskId,
        probability: f64,
        from: SimTime,
        until: Option<SimTime>,
    ) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Flaky { probability },
            from,
            until,
        });
        self
    }

    /// Add a silent-corruption window with the given per-request
    /// corruption probability.
    pub fn corrupt(
        mut self,
        disk: DiskId,
        probability: f64,
        from: SimTime,
        until: Option<SimTime>,
    ) -> Self {
        self.push(DeviceFault {
            disk,
            kind: FaultKind::Corrupt { probability },
            from,
            until,
        });
        self
    }

    /// Does the plan schedule any silent-corruption window? Used by the
    /// upper layers to force checksum verification on: corruption must
    /// never be injectable without a detector above it.
    pub fn has_corruption(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Corrupt { .. }))
    }

    /// The windows that apply to one device, in schedule order.
    pub fn for_disk(&self, disk: DiskId) -> &[DeviceFault] {
        self.per_disk.get(disk.index()).map_or(&[], Vec::as_slice)
    }
}

/// How long a request "occupies" a hard-down device before the controller
/// reports the failure. Small but nonzero: error detection is fast but
/// not free, and a zero-length service would let one process spin through
/// unbounded retries at a single instant.
pub const OUTAGE_ERROR_LATENCY: SimDuration = SimDuration::from_millis(1);

/// The outcome of applying a device's fault schedule to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Applied {
    /// Adjusted service time (fail-fast for outages).
    pub service: SimDuration,
    /// Completion status; `Ok` for clean *and* silently corrupted
    /// requests — corruption never surfaces as an error at this layer.
    pub status: Result<(), DiskFault>,
    /// True when the request completed `Ok` but its payload is corrupt.
    pub corrupt: bool,
}

impl Applied {
    /// A clean completion after `service`.
    pub fn clean(service: SimDuration) -> Self {
        Applied {
            service,
            status: Ok(()),
            corrupt: false,
        }
    }

    /// A failed completion after `service`.
    pub fn failed(service: SimDuration, fault: DiskFault) -> Self {
        Applied {
            service,
            status: Err(fault),
            corrupt: false,
        }
    }
}

/// The instantiated fault state attached to one device: its windows plus
/// a private random stream for transient-error draws.
///
/// The stream is consumed *only* inside active flaky or corrupt windows,
/// so devices outside their windows — and every device under an empty
/// plan — draw exactly the same service-time sequence as a fault-free
/// run.
#[derive(Clone, Debug)]
pub struct DeviceFaults {
    windows: Vec<DeviceFault>,
    rng: Rng,
}

impl DeviceFaults {
    /// Attach `windows` (already filtered to one device) with a dedicated
    /// random stream.
    pub fn new(windows: Vec<DeviceFault>, rng: Rng) -> Self {
        DeviceFaults { windows, rng }
    }

    /// Apply the schedule to a request starting service at `start` whose
    /// fault-free service time is `base`. Returns the adjusted service
    /// time, the completion status, and the silent-corruption flag.
    pub fn apply(&mut self, start: SimTime, base: SimDuration) -> Applied {
        let mut factor = 1.0f64;
        let mut fail_p = 0.0f64;
        let mut corrupt_p = 0.0f64;
        for w in &self.windows {
            if !w.active_at(start) {
                continue;
            }
            match w.kind {
                FaultKind::Outage => {
                    // Hard-down wins over everything: fail fast.
                    return Applied::failed(OUTAGE_ERROR_LATENCY, DiskFault::DeviceDown);
                }
                FaultKind::Slowdown { factor: f } => factor *= f,
                FaultKind::Flaky { probability } => {
                    // Overlapping flaky windows fail independently.
                    fail_p = 1.0 - (1.0 - fail_p) * (1.0 - probability);
                }
                FaultKind::Corrupt { probability } => {
                    corrupt_p = 1.0 - (1.0 - corrupt_p) * (1.0 - probability);
                }
            }
        }
        let service = if factor == 1.0 {
            base
        } else {
            SimDuration::from_nanos((base.as_nanos() as f64 * factor).round() as u64)
        };
        // The flaky draw comes first (and is the only draw when no corrupt
        // window is active), so pre-existing plans consume exactly the
        // random stream they always did.
        let failed = fail_p > 0.0 && self.rng.chance(fail_p);
        let corrupted = corrupt_p > 0.0 && self.rng.chance(corrupt_p);
        if failed {
            Applied::failed(service, DiskFault::Transient)
        } else {
            Applied {
                service,
                status: Ok(()),
                corrupt: corrupted,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn device(plan: &FaultPlan, disk: DiskId, seed: u64) -> DeviceFaults {
        DeviceFaults::new(plan.for_disk(disk).to_vec(), Rng::seeded(seed))
    }

    #[test]
    fn slowdown_scales_only_inside_window() {
        let plan = FaultPlan::none().straggler(DiskId(0), 4.0, t(100), Some(t(200)));
        let mut f = device(&plan, DiskId(0), 1);
        assert_eq!(f.apply(t(0), ms(30)), Applied::clean(ms(30)));
        assert_eq!(f.apply(t(100), ms(30)), Applied::clean(ms(120)));
        assert_eq!(f.apply(t(199), ms(30)), Applied::clean(ms(120)));
        assert_eq!(f.apply(t(200), ms(30)), Applied::clean(ms(30)));
    }

    #[test]
    fn outage_fails_fast_until_repair() {
        let plan = FaultPlan::none().outage(DiskId(2), t(50), Some(t(80)));
        let mut f = device(&plan, DiskId(2), 1);
        assert_eq!(
            f.apply(t(60), ms(30)),
            Applied::failed(OUTAGE_ERROR_LATENCY, DiskFault::DeviceDown)
        );
        assert_eq!(f.apply(t(80), ms(30)), Applied::clean(ms(30)));
    }

    #[test]
    fn unrepaired_outage_never_ends() {
        let plan = FaultPlan::none().outage(DiskId(0), t(10), None);
        let mut f = device(&plan, DiskId(0), 1);
        assert!(f.apply(t(1_000_000), ms(30)).status.is_err());
    }

    #[test]
    fn flaky_fails_at_roughly_the_given_rate() {
        let plan = FaultPlan::none().flaky(DiskId(0), 0.3, SimTime::ZERO, None);
        let mut f = device(&plan, DiskId(0), 42);
        let fails = (0..10_000)
            .filter(|_| f.apply(t(0), ms(30)).status.is_err())
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed failure rate {rate}");
        // Transient failures still take full service time.
        assert_eq!(f.apply(t(0), ms(30)).service, ms(30));
    }

    #[test]
    fn corrupt_completes_ok_with_flag_at_roughly_the_given_rate() {
        let plan = FaultPlan::none().corrupt(DiskId(0), 0.25, t(100), Some(t(200)));
        let mut f = device(&plan, DiskId(0), 42);
        // Outside the window: clean, no random draw consumed.
        assert_eq!(f.apply(t(0), ms(30)), Applied::clean(ms(30)));
        let corrupt = (0..10_000)
            .map(|_| f.apply(t(150), ms(30)))
            .filter(|a| {
                // Corruption is silent: status stays Ok, service is full.
                assert_eq!(a.status, Ok(()));
                assert_eq!(a.service, ms(30));
                a.corrupt
            })
            .count();
        let rate = corrupt as f64 / 10_000.0;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "observed corruption rate {rate}"
        );
        assert_eq!(f.apply(t(200), ms(30)), Applied::clean(ms(30)));
    }

    #[test]
    fn flaky_error_wins_over_corruption() {
        // Both windows always fire: the transient error surfaces and the
        // corrupt flag stays clear (a failed transfer delivers no payload).
        let plan = FaultPlan::none()
            .flaky(DiskId(0), 0.999_999, SimTime::ZERO, None)
            .corrupt(DiskId(0), 0.999_999, SimTime::ZERO, None);
        let mut f = device(&plan, DiskId(0), 7);
        let a = f.apply(t(0), ms(30));
        assert_eq!(a.status, Err(DiskFault::Transient));
        assert!(!a.corrupt);
    }

    #[test]
    fn corrupt_draws_leave_flaky_stream_unchanged() {
        // A plan with only a flaky window must see the same draw sequence
        // whether or not corrupt windows exist elsewhere in the schedule:
        // the corrupt draw happens strictly after the flaky draw.
        let flaky_only = FaultPlan::none().flaky(DiskId(0), 0.5, SimTime::ZERO, None);
        let both = FaultPlan::none()
            .flaky(DiskId(0), 0.5, SimTime::ZERO, None)
            .corrupt(DiskId(0), 0.5, t(1_000_000), None);
        let mut a = device(&flaky_only, DiskId(0), 9);
        let mut b = device(&both, DiskId(0), 9);
        for i in 0..200 {
            // Before the corrupt window opens, outcomes are identical.
            assert_eq!(a.apply(t(i), ms(30)), b.apply(t(i), ms(30)));
        }
    }

    #[test]
    fn plans_filter_by_device() {
        let plan = FaultPlan::none()
            .straggler(DiskId(1), 2.0, t(0), None)
            .outage(DiskId(3), t(0), None);
        assert_eq!(plan.for_disk(DiskId(1)).len(), 1);
        assert_eq!(plan.for_disk(DiskId(3)).len(), 1);
        assert!(plan.for_disk(DiskId(0)).is_empty());
        assert!(plan.for_disk(DiskId(9)).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn for_disk_preserves_schedule_order() {
        let plan = FaultPlan::none()
            .straggler(DiskId(2), 2.0, t(0), Some(t(10)))
            .flaky(DiskId(2), 0.1, t(10), Some(t(20)))
            .straggler(DiskId(2), 3.0, t(20), None);
        let windows = plan.for_disk(DiskId(2));
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].from, t(0));
        assert_eq!(windows[1].from, t(10));
        assert_eq!(windows[2].from, t(20));
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let plan = FaultPlan::none().flaky(DiskId(0), 0.5, SimTime::ZERO, None);
        let mut a = device(&plan, DiskId(0), 9);
        let mut b = device(&plan, DiskId(0), 9);
        for i in 0..100 {
            assert_eq!(a.apply(t(i), ms(30)), b.apply(t(i), ms(30)));
        }
    }
}
