//! The simulated testbed: processors, the file system read path, the
//! idle-time prefetching daemon, and their interactions.
//!
//! One [`World`] is one experiment run. Each processor node runs a single
//! user process (read a block, compute, synchronize — §IV-B) and a
//! file-system component that performs **prefetch actions only while the
//! local user process is idle**, releasing control only at the completion
//! of an action (§III). A process whose logical wake-up occurs while an
//! action is in flight resumes only when the action completes — the
//! **overrun** the paper identifies as a real cost of prefetching.
//!
//! All shared-structure work (lookups, buffer allocation, prefetch
//! decisions) serializes through one simulated FIFO lock, so contention for
//! the cache's internal data structures emerges the way it did on the
//! Butterfly's remote shared memory.

use std::collections::HashMap;
use std::sync::Arc;

use rt_cache::{BufState, BufferId, BufferPool, Lookup, PoolConfig};
use rt_disk::{BlockId, DiskId, FetchKind, ProcId};
use rt_fs::{FileId, FileSystem, FsError, FsStarted};
use rt_patterns::{Access, Cursor, Predictor, SyncStyle, Workload};
use rt_sim::{
    EventId, Model, Rng, Sampled, Scheduler, SimDuration, SimLock, SimTime, Tally, Timeline,
};

use crate::admission::{AdmissionState, Deny, ParkedDemand};
use crate::barrier::Barrier;
use crate::config::{ExperimentConfig, PolicyKind};
use crate::faults::RetryPolicy;
use crate::health::HealthTracker;
use crate::metrics::{CrashMetrics, FaultMetrics, OverloadMetrics};
use crate::policy::{
    select_oracle, select_oracle_avoiding, select_oracle_hinted, select_predicted, OracleView,
    ScanHint,
};
use crate::trace::{ReadOutcome, Trace, TraceEvent};
use rt_obs::{Component, EventKind as ObsKind, ReadAttribution, Track};

mod control;
mod crash;
mod daemon;
mod integrity;
mod obs;
mod readpath;
mod waiters;

use obs::{fetch_code, outcome_code, ObsState};
pub use obs::{ObsConfig, ObsData};
use waiters::WaiterTable;

/// Simulation events.
#[derive(Clone, Copy, Debug)]
pub enum Ev {
    /// A processor begins execution.
    Start(ProcId),
    /// The cache lock was granted and the lookup completed.
    LookupDone(ProcId),
    /// The miss work (buffer allocation, RU-set update, disk enqueue)
    /// completed and the demand fetch is on the disk queue.
    MissIssue(ProcId),
    /// All candidate demand buffers were pinned by in-flight copies; try
    /// the miss again.
    RetryMiss(ProcId),
    /// The in-flight request on this disk completed.
    DiskDone(DiskId),
    /// The data copy for the current read finished; the read returns.
    ReadFinished(ProcId),
    /// The simulated per-block computation finished.
    ComputeDone(ProcId),
    /// A prefetch action on this node completed.
    ActionEnd(ProcId),
    /// A failed or stuck read's backoff elapsed; resubmit the fetch.
    /// Never scheduled unless the run's fault layer is active.
    RetryIo(BlockId),
    /// A demand fetch's per-request timeout fired. Never scheduled unless
    /// the fault layer is active and a timeout is configured.
    IoTimeout(BlockId),
    /// A demand fetch's hedge delay elapsed; launch a duplicate fetch to
    /// the next replica. Never scheduled unless hedging is configured.
    Hedge(BlockId),
    /// The checksum verification of a freshly filled block finished.
    /// Never scheduled unless the integrity layer is active.
    VerifyDone(BlockId),
    /// The node crashes (fault injection). Never scheduled unless the
    /// configuration's crash plan is non-empty.
    Crash(ProcId),
    /// A crashed node restarts with a cold RU set. Never scheduled unless
    /// the crash plan schedules a rejoin.
    Rejoin(ProcId),
}

/// User-process execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PState {
    /// Issuing the next operation.
    Running,
    /// Waiting for the cache lock / lookup.
    Lookup,
    /// Blocked until the current block's I/O completes.
    WaitBlock,
    /// Copying block data out of the cache.
    Copying,
    /// Simulated computation on the block just read.
    Computing,
    /// Blocked at a barrier.
    AtBarrier,
    /// Reference string exhausted.
    Done,
    /// The node crashed; it holds nothing and handles no events until
    /// (and unless) its rejoin fires.
    Crashed,
}

/// Per-processor state.
#[derive(Clone)]
struct Proc {
    id: ProcId,
    state: PState,
    /// Cursor over this process's own string (local patterns only).
    cursor: Cursor,
    rng: Rng,
    /// Completed reads.
    reads_done: u32,
    /// The access currently being read.
    cur_access: Option<Access>,
    /// When the current read was requested.
    read_start: SimTime,
    /// When the current wait began (idle-period start).
    idle_since: Option<SimTime>,
    /// Set when the logical wake-up condition has fired.
    logical_wake: Option<SimTime>,
    /// Known wake time for I/O waits (None for barrier waits).
    expected_wake: Option<SimTime>,
    /// When the current block wait was classified (for hit-wait times).
    wait_since: SimTime,
    /// Whether the current block wait is an unready *hit* (vs a miss).
    wait_is_hit: bool,
    /// A prefetch action is in flight on this node.
    action_busy: bool,
    /// When the in-flight action started.
    action_started: SimTime,
    /// The previous action in this idle period found no candidate.
    last_action_empty: bool,
    /// Read count at the last per-proc barrier (BlocksPerProc dedup).
    synced_at_reads: u32,
    /// Barriers passed under the BlocksTotal style.
    boundaries_passed: u64,
    /// Portion this process is currently reading (EachPortion gating,
    /// local patterns).
    cur_portion: Option<u32>,
    /// Outcome of the current read's classification (for tracing).
    cur_outcome: Option<ReadOutcome>,
    /// Buffer this process is currently copying from (pinned).
    copying_buf: Option<rt_cache::BufferId>,
    /// The open cache-lock critical section charged to this node (its end
    /// instant and hold length): the lookup section while in `Lookup`, the
    /// daemon-action section while `action_busy`. Lets a crash reclaim the
    /// unexpired tail of the victim's lease.
    lock_cs: Option<(SimTime, SimDuration)>,
    /// The one in-flight event addressed to this user process (lookup,
    /// miss issue, alloc retry, copy completion, compute completion), so
    /// a crash can cancel it. `None` while the process waits on a wake.
    pending_ev: Option<EventId>,
    /// The in-flight `ActionEnd` of this node's daemon, cancellable on
    /// crash (concurrent with `pending_ev` — the daemon runs during
    /// the user process's waits).
    action_ev: Option<EventId>,
    finished_at: Option<SimTime>,
    /// Latency attribution of the current read: nanoseconds per component,
    /// accumulated by closing contiguous intervals at lifecycle
    /// transitions (see `world/obs.rs`). Sums exactly to the read time.
    attr: ReadAttribution,
    /// Start of the open attribution interval.
    attr_mark: SimTime,
    /// Component the open attribution interval accrues to.
    attr_cur: Component,
}

impl Proc {
    fn new(id: ProcId, rng: Rng) -> Self {
        Proc {
            id,
            state: PState::Running,
            cursor: Cursor::new(),
            rng,
            reads_done: 0,
            cur_access: None,
            read_start: SimTime::ZERO,
            idle_since: None,
            logical_wake: None,
            expected_wake: None,
            wait_since: SimTime::ZERO,
            wait_is_hit: false,
            action_busy: false,
            action_started: SimTime::ZERO,
            last_action_empty: false,
            synced_at_reads: 0,
            boundaries_passed: 0,
            cur_portion: None,
            cur_outcome: None,
            copying_buf: None,
            lock_cs: None,
            pending_ev: None,
            action_ev: None,
            finished_at: None,
            attr: ReadAttribution::default(),
            attr_mark: SimTime::ZERO,
            attr_cur: Component::Overhead,
        }
    }
}

/// Why a process is about to block at the barrier (for tracing/tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SyncReason {
    PerProcCount,
    TotalCount,
    PortionBoundary,
}

/// Raw measurement accumulators for one run.
#[derive(Clone, Default)]
pub(crate) struct Recorder {
    pub reads: Tally,
    /// Full read-time sample reservoir (for p50/p95/p99 quantiles; the
    /// `reads` tally stays the mean/extremes source the goldens pin).
    pub read_times: Sampled,
    /// Disk response times (submission → completion) across all fetch
    /// kinds, sampled for quantiles.
    pub disk_responses: Sampled,
    pub hit_wait: Sampled,
    /// Per-process read-time tallies (benefit-distribution analysis).
    pub proc_reads: Vec<Tally>,
    /// Hits (ready + unready) received per process.
    pub proc_hits: Vec<u64>,
    /// Prefetch I/Os issued per node.
    pub proc_prefetches: Vec<u64>,
    /// Prefetched-but-unused blocks held, over time.
    pub tl_prefetched: Timeline,
    /// Processes blocked at the barrier, over time.
    pub tl_barrier: Timeline,
    /// Disk requests in flight (queued or in service), over time.
    pub tl_outstanding_io: Timeline,
    pub action_time: Tally,
    pub overrun: Tally,
    pub idle_necessary: Tally,
    pub idle_actual: Tally,
    pub empty_actions: u64,
    pub blocked_actions: u64,
    pub alloc_retries: u64,
    /// Fault-path counters (all zero unless faults are injected).
    pub io_errors: u64,
    pub retries: u64,
    pub retries_exhausted: u64,
    pub timeouts: u64,
    pub redirects: u64,
    pub aborted_prefetches: u64,
    pub degraded_skips: u64,
    pub stale_completions: u64,
    /// Tail-tolerance counters (all zero unless hedging, retry budgets,
    /// or breakers are configured).
    pub hedges_launched: u64,
    pub hedge_wins: u64,
    pub hedge_wasted: u64,
    pub hedge_cancels: u64,
    pub retries_denied: u64,
    pub budget_spent: u64,
    /// Read times of reads that waited on at least one hedged fetch.
    pub hedged_read_times: Sampled,
    /// A waiter woken by a block delivery it was not waiting for — the
    /// exactly-once tripwire the hedge path must keep at zero.
    /// [`World::check_soak_invariants`] rejects any run where it is not.
    pub duplicate_deliveries: u64,
    /// Overload counters (all zero unless queues are bounded or
    /// admission is enabled).
    pub prefetches_shed: u64,
    pub prefetches_throttled: u64,
    pub demand_parked: u64,
    pub demand_behind_prefetch: u64,
    pub cache_high_water_hits: u64,
    /// Corrupt payloads delivered to a reader as if clean. The integrity
    /// subsystem exists to keep this at zero; [`World::check_soak_invariants`]
    /// rejects any run where it is not. Lives in the always-present
    /// recorder (not the optional integrity state) so the tripwire also
    /// catches corruption reaching a run whose integrity layer failed to
    /// activate.
    pub corrupt_delivered: u64,
}

/// In-flight fault bookkeeping for one block's demand fetch.
#[derive(Clone)]
pub(crate) struct PendingIo {
    /// Resubmissions so far (selects the replica and the backoff).
    pub attempts: u32,
    /// The armed timeout event, cancelled on completion.
    pub timeout: Option<EventId>,
    /// The node the fetch is charged to, for resubmission.
    pub initiator: ProcId,
    /// The armed hedge-delay event, cancelled on completion.
    pub hedge: Option<EventId>,
    /// `Some(replica)` once a hedge duplicate is in flight to `replica`;
    /// resolved (win or waste) by the first completion.
    pub hedged: Option<u16>,
    /// The replica the primary in-flight fetch targets (so the hedge can
    /// pick a different one).
    pub replica: u16,
}

impl Default for PendingIo {
    fn default() -> Self {
        PendingIo {
            attempts: 0,
            timeout: None,
            initiator: ProcId(0),
            hedge: None,
            hedged: None,
            replica: 0,
        }
    }
}

/// Node-crash layer state of one run; allocated only when the
/// configuration's crash plan is non-empty, so crash-free runs schedule
/// no crash events and their event stream is untouched. Liveness itself
/// lives in each process's state ([`PState::Crashed`]); this holds the
/// per-node crash instants (for dead-interval annotation) and the
/// reclamation counters.
#[derive(Clone)]
pub(crate) struct CrashState {
    /// When each node last crashed (meaningful while it is dead).
    pub crashed_at: Vec<SimTime>,
    // Counters (see [`CrashMetrics`]).
    pub crashes: u64,
    pub rejoins: u64,
    pub orphaned_ios: u64,
    pub reclaimed_locks: u64,
    pub reclaimed_pins: u64,
    pub reclaimed_waiters: u64,
    pub redistributed_prefetches: u64,
    pub lost_reads: u64,
}

impl CrashState {
    fn new(procs: u16) -> Self {
        CrashState {
            crashed_at: vec![SimTime::ZERO; procs as usize],
            crashes: 0,
            rejoins: 0,
            orphaned_ios: 0,
            reclaimed_locks: 0,
            reclaimed_pins: 0,
            reclaimed_waiters: 0,
            redistributed_prefetches: 0,
            lost_reads: 0,
        }
    }
}

/// Fault-layer state of one run; allocated only when the configuration's
/// fault scenario is active, so fault-free runs pay nothing on the read
/// path beyond an `Option` check.
#[derive(Clone)]
pub(crate) struct FaultState {
    /// Per-disk error/latency EWMAs driving prefetch degradation.
    pub health: HealthTracker,
    pub retry: RetryPolicy,
    /// Per-block retry/timeout state for fetches the fault layer touched.
    pub pending: HashMap<BlockId, PendingIo>,
    /// Retry-budget token bucket: fractional tokens, refilled per
    /// successful completion, spent (one whole token) per timeout-retry
    /// or hedge. Unlimited when no budget is configured.
    pub budget_tokens: f64,
}

/// One in-flight checksum verification (or replica re-fetch) of a cache
/// fill. Keyed by block in [`IntegrityState::verifying`].
#[derive(Clone)]
pub(crate) struct VerifyState {
    /// `Some(corrupt)` while a checksum check is scheduled — the flag the
    /// pending [`Ev::VerifyDone`] will read. `None` while a replica
    /// re-fetch is in flight.
    pub checking: Option<bool>,
    /// The replica the payload under check (or in flight) came from.
    pub replica: u16,
    /// Copies checked so far in this episode; at `copies` the block is
    /// poisoned.
    pub tried: u16,
    /// Replicas that returned corrupt payloads, rewritten once a clean
    /// copy is found.
    pub corrupt_replicas: Vec<u16>,
    /// The original fetch kind (a corrupt prefetch nobody waits on is
    /// dropped rather than repaired).
    pub kind: FetchKind,
    /// The node re-fetches and repairs are charged to.
    pub who: ProcId,
}

/// One in-flight scrub check: a verify-only read chain hunting for a
/// clean copy of a block the scrubber found corrupt.
#[derive(Clone)]
pub(crate) struct ScrubCheck {
    /// The replica the outstanding scrub read targets.
    pub replica: u16,
    /// Copies checked so far in this episode.
    pub tried: u16,
    /// Replicas that returned corrupt payloads.
    pub corrupt_replicas: Vec<u16>,
}

/// Per-node scrub daemon state: a strided cursor over the file.
#[derive(Clone)]
pub(crate) struct ScrubProc {
    /// Next block this node will consider (node-strided: node `p` scans
    /// `p, p + procs, p + 2·procs, …`, wrapping per pass).
    pub cursor: u32,
    /// The copy being scrubbed this pass; rotates at each wrap so every
    /// replica is covered over `copies` passes.
    pub replica: u16,
    /// A scrub chain is outstanding on this node (one at a time).
    pub inflight: bool,
    /// When this node last issued a scrub read (rate limiting).
    pub last_issued: SimTime,
}

/// Integrity-layer state of one run; allocated only when the
/// configuration schedules corrupt windows, forces verification, or runs
/// the scrubber — default runs pay nothing beyond an `Option` check and
/// their event stream is untouched.
#[derive(Clone)]
pub(crate) struct IntegrityState {
    pub cfg: crate::integrity::IntegrityConfig,
    /// Verify fills at all: forced on whenever the fault plan schedules a
    /// corrupt window, so corruption can never be injected undetected.
    pub verify: bool,
    /// Blocks with no clean copy anywhere: every replica returned a
    /// corrupt payload. Reads fail fast with a typed error.
    pub poisoned: std::collections::HashSet<BlockId>,
    /// In-flight fill verifications and read-repairs, by block.
    pub verifying: HashMap<BlockId, VerifyState>,
    /// In-flight scrub repair chains, by block.
    pub scrub_checks: HashMap<BlockId, ScrubCheck>,
    /// Per-node scrub cursors.
    pub scrub: Vec<ScrubProc>,
    /// Typed error awaiting each node's current read, consumed at resume.
    pub read_errors: Vec<Option<crate::integrity::IntegrityError>>,
    // Counters (see `IntegrityMetrics`).
    pub corruptions: u64,
    pub detections: u64,
    pub repairs: u64,
    pub rewrites: u64,
    pub scrubbed: u64,
    pub scrub_detections: u64,
    pub failed_reads: u64,
}

impl IntegrityState {
    fn new(cfg: &ExperimentConfig) -> Self {
        IntegrityState {
            cfg: cfg.integrity,
            verify: cfg.integrity.verify || cfg.faults.plan.has_corruption(),
            poisoned: std::collections::HashSet::new(),
            verifying: HashMap::new(),
            scrub_checks: HashMap::new(),
            scrub: (0..cfg.procs)
                .map(|p| ScrubProc {
                    cursor: p as u32,
                    replica: 0,
                    inflight: false,
                    last_issued: SimTime::ZERO,
                })
                .collect(),
            read_errors: vec![None; cfg.procs as usize],
            corruptions: 0,
            detections: 0,
            repairs: 0,
            rewrites: 0,
            scrubbed: 0,
            scrub_detections: 0,
            failed_reads: 0,
        }
    }
}

/// One experiment run: the whole machine plus its workload.
///
/// `Clone` snapshots the entire machine mid-run — cache, file system,
/// disks, processes, predictors, waiters, and statistics. Pair and sweep
/// runners use it to warm one world up to a fork point and then branch
/// independent continuations from the shared prefix (clone the paired
/// [`rt_sim::Scheduler`] alongside; see `experiment::RunHandle`). The
/// workload is shared by `Arc`, not copied.
#[derive(Clone)]
pub struct World {
    cfg: ExperimentConfig,
    pool: BufferPool,
    fs: FileSystem,
    file: FileId,
    lock: SimLock,
    /// Shared with the other half of a base/prefetch pair — the reference
    /// string is identical, so pairs generate it once (see
    /// [`generate_workload`]).
    workload: Arc<Workload>,
    /// True when no block appears twice across the whole workload — the
    /// soundness condition for the oracle scan memo (see [`ScanHint`]).
    /// With sharing, a block ahead of one frontier may be cached as
    /// another process's evictable demand buffer, which the memo's
    /// eviction epoch does not observe.
    oracle_hint_sound: bool,
    /// Oracle scan memos: one per process for local workloads, entry 0
    /// for the global cursor. Unused unless `oracle_hint_sound`.
    oracle_hints: Vec<ScanHint>,
    global_cursor: Cursor,
    /// Highest globally opened portion (EachPortion + global patterns).
    global_portion_open: u32,
    procs: Vec<Proc>,
    /// Per-block lists of processes blocked on an in-flight I/O.
    waiters: WaiterTable,
    /// Reusable buffer for draining a waiter list ([`World::block_ready`]);
    /// keeps the wake path allocation-free.
    wake_scratch: Vec<ProcId>,
    barrier: Barrier,
    total_reads_done: u64,
    finished: u16,
    predictors: Vec<Option<Box<dyn Predictor>>>,
    trace: Option<Trace>,
    /// Disk requests submitted but not yet completed.
    outstanding_io: u32,
    /// Fault-layer state; `None` when the run injects nothing, keeping
    /// the hot path identical to a fault-free build.
    pub(crate) faults: Option<FaultState>,
    /// Node-crash layer state; `None` unless the crash plan is non-empty
    /// (same inert-by-default discipline as `faults`).
    pub(crate) crash: Option<CrashState>,
    /// Admission/backpressure state; `None` unless the configuration
    /// bounds queues or enables admission (same discipline as `faults`).
    pub(crate) admission: Option<AdmissionState>,
    /// Integrity state (verify, read-repair, scrub, poison); `None`
    /// unless corrupt windows are scheduled, verification is forced, or
    /// the scrubber is on (same discipline as `faults`).
    pub(crate) integrity: Option<IntegrityState>,
    /// Observability recording state; `None` unless [`World::enable_obs`]
    /// was called (same inert-by-default discipline as `faults`).
    pub(crate) obs: Option<ObsState>,
    pub(crate) rec: Recorder,
}

/// Generate the reference string `cfg` describes — exactly what
/// [`World::new`] would build internally. Pair and sweep runners that run
/// several experiments over the same string (e.g. base vs prefetch)
/// generate it once and share it via [`World::with_workload`].
pub fn generate_workload(cfg: &ExperimentConfig) -> Workload {
    let root = Rng::seeded(cfg.seed);
    let mut wl_rng = root.split(0x776f726b);
    Workload::generate(cfg.pattern, &cfg.workload, &mut wl_rng)
}

impl World {
    /// Build the machine and workload described by `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let workload = Arc::new(generate_workload(&cfg));
        Self::with_workload(cfg, workload)
    }

    /// Build the machine described by `cfg` around an already-generated
    /// workload. `workload` must equal [`generate_workload`]`(&cfg)` —
    /// the point is to share one generation across the runs of a pair.
    pub fn with_workload(cfg: ExperimentConfig, workload: Arc<Workload>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid experiment config: {e}");
        }
        let root = Rng::seeded(cfg.seed);

        let file_blocks = cfg.workload.file_blocks;
        if let Some(max) = workload.max_block() {
            assert!(max.0 < file_blocks, "workload exceeds the file");
        }
        debug_assert_eq!(
            rt_patterns::validate(cfg.pattern, &workload),
            Vec::new(),
            "generated workload violates its pattern's taxonomy"
        );

        let pool_cfg = if cfg.prefetch.enabled {
            PoolConfig {
                procs: cfg.procs,
                demand_per_proc: cfg.ru_set_size,
                prefetch_per_proc: cfg.prefetch.buffers_per_proc,
                global_prefetch_cap: cfg.prefetch.global_cap_per_proc as u32 * cfg.procs as u32,
                replacement: cfg.replacement,
                evict_unused_prefetch: cfg.prefetch.evict_unused,
            }
        } else {
            PoolConfig {
                procs: cfg.procs,
                demand_per_proc: cfg.ru_set_size,
                prefetch_per_proc: 0,
                global_prefetch_cap: 0,
                replacement: cfg.replacement,
                evict_unused_prefetch: false,
            }
        };

        // Enabling admission is an explicit opt into demand QoS: queued
        // prefetches are downgraded behind demand fetches at dispatch.
        let discipline = if cfg.admission.enabled {
            rt_disk::Discipline::DemandPriority
        } else {
            cfg.discipline
        };
        let mut fs = FileSystem::new(
            cfg.disks,
            cfg.service.clone(),
            discipline,
            &root.split(0x6469736b),
        );
        let file = fs
            .create_replicated("workload", file_blocks, cfg.striping, cfg.faults.replicas)
            .expect("fresh file system");
        if !cfg.faults.plan.is_empty() {
            fs.set_fault_plan(&cfg.faults.plan, &root.split(0x6661_756c));
        }
        // The quarantine lifecycle rides on the health tracker, so the
        // fault layer is also allocated when only the integrity layer is
        // active (its retry/timeout machinery then just never fires).
        let integrity_active = cfg.integrity.active_with(&cfg.faults.plan);
        let faults = (cfg.faults.is_active() || integrity_active).then(|| FaultState {
            health: HealthTracker::new(cfg.disks, cfg.faults.degrade)
                .with_quarantine(cfg.integrity.quarantine)
                .with_breaker(cfg.faults.breaker),
            retry: cfg.faults.retry,
            pending: HashMap::new(),
            budget_tokens: cfg.faults.budget.capacity.map_or(f64::INFINITY, f64::from),
        });
        let integrity = integrity_active.then(|| IntegrityState::new(&cfg));
        if let Some(depth) = cfg.queue_depth {
            fs.set_queue_limit(Some(depth as usize));
        }
        let admission = (cfg.queue_depth.is_some() || cfg.admission.enabled)
            .then(|| AdmissionState::new(cfg.admission, cfg.disks));
        let crash = (!cfg.faults.crashes.is_empty()).then(|| CrashState::new(cfg.procs));

        let procs: Vec<Proc> = (0..cfg.procs)
            .map(|p| Proc::new(ProcId(p), root.split(0x0070_726f_6300 + p as u64)))
            .collect();

        let predictors: Vec<Option<Box<dyn Predictor>>> = (0..cfg.procs)
            .map(|_| match cfg.prefetch.policy {
                PolicyKind::Oracle => None,
                PolicyKind::Obl { depth } => {
                    Some(Box::new(rt_patterns::Obl::new(depth, file_blocks)) as Box<dyn Predictor>)
                }
                PolicyKind::PortionLearner { confidence } => Some(Box::new(
                    rt_patterns::PortionLearner::new(confidence as usize, file_blocks),
                )
                    as Box<dyn Predictor>),
            })
            .collect();

        let oracle_hint_sound = {
            let mut seen = vec![false; file_blocks as usize];
            let mut mark = |s: &rt_patterns::RefString| {
                s.accesses()
                    .iter()
                    .all(|a| !std::mem::replace(&mut seen[a.block.index()], true))
            };
            match &*workload {
                Workload::Global(s) => mark(s),
                Workload::Local(strings) => strings.iter().all(&mut mark),
            }
        };

        let barrier = Barrier::new(cfg.procs);
        World {
            pool: BufferPool::new(pool_cfg),
            fs,
            file,
            lock: SimLock::new(),
            workload,
            oracle_hint_sound,
            oracle_hints: vec![ScanHint::default(); cfg.procs as usize],
            global_cursor: Cursor::new(),
            global_portion_open: 0,
            procs,
            waiters: WaiterTable::new(file_blocks),
            wake_scratch: Vec::new(),
            barrier,
            total_reads_done: 0,
            finished: 0,
            predictors,
            trace: None,
            outstanding_io: 0,
            faults,
            crash,
            admission,
            integrity,
            obs: None,
            rec: Recorder {
                proc_reads: vec![Tally::new(); cfg.procs as usize],
                proc_hits: vec![0; cfg.procs as usize],
                proc_prefetches: vec![0; cfg.procs as usize],
                ..Recorder::default()
            },
            cfg,
        }
    }

    /// Record the exact access pattern for off-line analysis (§IV-C).
    /// Call before the run starts.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// The recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Schedule the initial events: every processor starts at time zero,
    /// and the crash plan's injections (if any) at their instants.
    pub fn bootstrap(&self, sched: &mut Scheduler<Ev>) {
        for p in 0..self.cfg.procs {
            sched.schedule_at(SimTime::ZERO, Ev::Start(ProcId(p)));
        }
        for spec in self.cfg.faults.crashes.entries() {
            sched.schedule_at(spec.at, Ev::Crash(ProcId(spec.node)));
            if let Some(t) = spec.rejoin {
                sched.schedule_at(t, Ev::Rejoin(ProcId(spec.node)));
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors used by the experiment runner to assemble metrics.
    // ------------------------------------------------------------------

    /// The configuration this world was built from.
    pub fn cfg(&self) -> &ExperimentConfig {
        &self.cfg
    }

    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    pub(crate) fn disks(&self) -> &rt_disk::DiskSubsystem {
        self.fs.disks()
    }

    /// The file system underlying this run.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    pub(crate) fn lock(&self) -> &SimLock {
        &self.lock
    }

    pub(crate) fn barrier(&self) -> &Barrier {
        &self.barrier
    }

    pub(crate) fn finish_times(&self) -> Vec<SimTime> {
        self.procs
            .iter()
            .map(|p| p.finished_at.expect("run not complete"))
            .collect()
    }

    /// True once every process has exhausted its reference string.
    pub fn complete(&self) -> bool {
        self.finished == self.cfg.procs
    }

    /// Total reads completed so far.
    pub fn reads_done(&self) -> u64 {
        self.total_reads_done
    }

    /// Fault-path counters of this run, with degraded-interval accounting
    /// closed off at `end`. All zero for fault-free runs.
    pub fn fault_metrics(&self, end: SimTime) -> FaultMetrics {
        let (intervals, time) = match &self.faults {
            Some(f) => (f.health.degraded_intervals(), f.health.degraded_time(end)),
            None => (0, SimDuration::ZERO),
        };
        FaultMetrics {
            io_errors: self.rec.io_errors,
            retries: self.rec.retries,
            retries_exhausted: self.rec.retries_exhausted,
            timeouts: self.rec.timeouts,
            redirects: self.rec.redirects,
            aborted_prefetches: self.rec.aborted_prefetches,
            degraded_skips: self.rec.degraded_skips,
            stale_completions: self.rec.stale_completions,
            degraded_intervals: intervals,
            degraded_time: time,
        }
    }

    /// Integrity counters of this run, with quarantine-interval
    /// accounting closed off at `end`. All default for runs without an
    /// active integrity layer.
    pub fn integrity_metrics(&self, end: SimTime) -> crate::metrics::IntegrityMetrics {
        let Some(ig) = &self.integrity else {
            return crate::metrics::IntegrityMetrics::default();
        };
        let (quarantines, quarantined_time) = match &self.faults {
            Some(f) => (
                f.health.quarantine_episodes(),
                f.health.quarantined_time(end),
            ),
            None => (0, SimDuration::ZERO),
        };
        crate::metrics::IntegrityMetrics {
            corruptions: ig.corruptions,
            detections: ig.detections,
            repairs: ig.repairs,
            rewrites: ig.rewrites,
            scrubbed: ig.scrubbed,
            scrub_detections: ig.scrub_detections,
            poisoned_blocks: ig.poisoned.len() as u64,
            failed_reads: ig.failed_reads,
            corrupt_delivered: self.rec.corrupt_delivered,
            quarantines,
            quarantined_time,
        }
    }

    /// Node-crash counters of this run. All zero for runs without a crash
    /// plan.
    pub fn crash_metrics(&self) -> CrashMetrics {
        match &self.crash {
            Some(c) => CrashMetrics {
                crashes: c.crashes,
                rejoins: c.rejoins,
                orphaned_ios: c.orphaned_ios,
                reclaimed_locks: c.reclaimed_locks,
                reclaimed_pins: c.reclaimed_pins,
                reclaimed_waiters: c.reclaimed_waiters,
                redistributed_prefetches: c.redistributed_prefetches,
                lost_reads: c.lost_reads,
            },
            None => CrashMetrics::default(),
        }
    }

    /// Tail-tolerance counters of this run. All zero for runs without
    /// hedging, retry budgets, or breakers configured.
    pub fn tail_metrics(&self) -> crate::metrics::TailMetrics {
        let (breaker_opens, probe_successes) = match &self.faults {
            Some(f) => (f.health.breaker_opens(), f.health.probe_successes()),
            None => (0, 0),
        };
        crate::metrics::TailMetrics {
            hedges_launched: self.rec.hedges_launched,
            hedge_wins: self.rec.hedge_wins,
            hedge_wasted: self.rec.hedge_wasted,
            hedge_cancels: self.rec.hedge_cancels,
            retries_denied: self.rec.retries_denied,
            budget_spent: self.rec.budget_spent,
            breaker_opens,
            probe_successes,
            duplicate_deliveries: self.rec.duplicate_deliveries,
        }
    }

    /// Overload/backpressure counters of this run. All zero for runs with
    /// unbounded queues and admission disabled (except `max_queue_depth`,
    /// which is always observed).
    pub fn overload_metrics(&self) -> OverloadMetrics {
        OverloadMetrics {
            prefetches_shed: self.rec.prefetches_shed,
            prefetches_throttled: self.rec.prefetches_throttled,
            demand_parked: self.rec.demand_parked,
            demand_behind_prefetch: self.rec.demand_behind_prefetch,
            cache_high_water_hits: self.rec.cache_high_water_hits,
            max_queue_depth: self.disks().max_queue_depth() as u64,
        }
    }

    /// Structural invariants the chaos soak harness checks after every
    /// event: bounded queues never exceed their bound, the in-flight
    /// counter matches the devices' queued + busy totals, the credit pool
    /// never overflows, and demand reads only park under a queue bound.
    /// Cheap — O(disks) — so it can run per event.
    pub fn check_soak_invariants(&self) -> Result<(), String> {
        let mut in_flight = 0usize;
        for (i, d) in self.disks().disks().iter().enumerate() {
            let queued = d.queued();
            if let Some(limit) = self.cfg.queue_depth {
                if queued > limit as usize {
                    return Err(format!(
                        "disk {i}: queue depth {queued} exceeds bound {limit}"
                    ));
                }
            }
            in_flight += queued + d.busy_now() as usize;
        }
        if in_flight != self.outstanding_io as usize {
            return Err(format!(
                "conservation: outstanding_io {} != queued+busy {in_flight}",
                self.outstanding_io
            ));
        }
        if self.rec.corrupt_delivered > 0 {
            return Err(format!(
                "integrity: {} corrupt block(s) delivered to readers as clean",
                self.rec.corrupt_delivered
            ));
        }
        if self.rec.duplicate_deliveries > 0 {
            return Err(format!(
                "exactly-once: {} waiter(s) woken by a delivery they were not waiting for",
                self.rec.duplicate_deliveries
            ));
        }
        if let Some(adm) = &self.admission {
            if adm.credits > adm.cfg.prefetch_credits {
                return Err(format!(
                    "credit pool overflow: {} > {}",
                    adm.credits, adm.cfg.prefetch_credits
                ));
            }
            if self.cfg.queue_depth.is_none() && adm.parked_total() != 0 {
                return Err(format!(
                    "{} demand reads parked with unbounded queues",
                    adm.parked_total()
                ));
            }
        }
        if self.crash.is_some() {
            // A dead node owns nothing: no pinned buffer, no daemon
            // action, no open lock critical section, and no parked work
            // charged to it.
            for (p, proc) in self.procs.iter().enumerate() {
                if proc.state != PState::Crashed {
                    continue;
                }
                if proc.copying_buf.is_some() {
                    return Err(format!("dead node {p} still pins a copy buffer"));
                }
                if proc.action_busy {
                    return Err(format!("dead node {p} still runs a daemon action"));
                }
                if proc.lock_cs.is_some() {
                    return Err(format!("dead node {p} still holds a lock lease"));
                }
            }
            if let Some(adm) = &self.admission {
                for q in &adm.parked {
                    for e in q {
                        if self.procs[e.who.index()].state == PState::Crashed {
                            return Err(format!(
                                "parked demand for block {} charged to dead node {}",
                                e.block.index(),
                                e.who.index()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Leak checks that only hold once the event queue has drained:
    /// every node parked in a terminal state (`Done`, or `Crashed` with
    /// no rejoin), every buffer unpinned with no fill still pending, no
    /// waiter registration left behind, the cache-lock lease expired,
    /// and no demand read still parked. The crashes sweep runs this
    /// after each scenario — a victim's unreclaimed pin, lease, or
    /// waiter entry shows up here even when the survivors finished.
    pub fn check_terminal_invariants(&self, now: SimTime) -> Result<(), String> {
        self.check_soak_invariants()?;
        for (p, proc) in self.procs.iter().enumerate() {
            if proc.state != PState::Done && proc.state != PState::Crashed {
                return Err(format!("node {p} drained in state {:?}", proc.state));
            }
            if proc.copying_buf.is_some() {
                return Err(format!("node {p} drained still pinning a copy buffer"));
            }
            if proc.action_busy {
                return Err(format!("node {p} drained inside a daemon action"));
            }
            if proc.lock_cs.is_some() {
                return Err(format!("node {p} drained holding a lock lease"));
            }
        }
        for i in 0..self.pool.config().total_buffers() {
            let b = self.pool.buffer(BufferId(i));
            if b.pins != 0 {
                return Err(format!("buffer {i} drained with {} pin(s) held", b.pins));
            }
            if matches!(b.state, BufState::Pending { .. }) {
                return Err(format!("buffer {i} drained with its fill still pending"));
            }
        }
        let leftover = self.waiters.total();
        if leftover != 0 {
            return Err(format!("{leftover} waiter registration(s) leaked"));
        }
        if self.lock.free_at() > now {
            return Err(format!(
                "cache lock still leased until {:?} at drain time {now:?}",
                self.lock.free_at()
            ));
        }
        if let Some(adm) = &self.admission {
            let parked = adm.parked_total();
            if parked != 0 {
                return Err(format!("{parked} demand read(s) still parked"));
            }
        }
        Ok(())
    }
}

impl Model for World {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        // Passive gauge sampling: piggybacks on the event already firing,
        // never schedules anything (no-op unless observation is enabled).
        self.obs_sample(sched.now());
        // No event is ever addressed to a crashed node: `crash_node`
        // cancels the victim's pending process and daemon events outright,
        // so a rejoined node can never receive a stale pre-crash event.
        match event {
            Ev::Start(p) => self.proceed_next(p.index(), sched),
            Ev::LookupDone(p) => self.lookup_done(p.index(), sched),
            Ev::MissIssue(p) => self.miss_issue(p.index(), sched),
            Ev::RetryMiss(p) => self.retry_miss(p.index(), sched),
            Ev::DiskDone(d) => self.disk_done(d, sched),
            Ev::ReadFinished(p) => self.read_finished(p.index(), sched),
            Ev::ComputeDone(p) => {
                self.procs[p.index()].pending_ev = None;
                self.procs[p.index()].state = PState::Running;
                self.proceed_next(p.index(), sched);
            }
            Ev::ActionEnd(p) => self.action_end(p.index(), sched),
            Ev::RetryIo(b) => self.retry_io(b, sched),
            Ev::IoTimeout(b) => self.io_timeout(b, sched),
            Ev::Hedge(b) => self.hedge_fire(b, sched),
            Ev::VerifyDone(b) => self.verify_done(b, sched),
            Ev::Crash(p) => self.crash_node(p.index(), sched),
            Ev::Rejoin(p) => self.rejoin_node(p.index(), sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchConfig;
    use rt_patterns::{AccessPattern, WorkloadParams};
    use rt_sim::run;

    /// A small machine for fast unit runs.
    fn small_cfg(pattern: AccessPattern, sync: SyncStyle, prefetch: bool) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(pattern, sync);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            fixed_portion_len: 5,
            global_fixed_portion_len: 20,
            rand_portion_min: 1,
            rand_portion_max: 10,
            global_rand_portion_min: 5,
            global_rand_portion_max: 20,
        };
        cfg.compute_mean = SimDuration::from_millis(5);
        if prefetch {
            cfg.prefetch = PrefetchConfig::paper();
        }
        cfg
    }

    fn run_world(cfg: ExperimentConfig) -> (World, SimTime) {
        let mut world = World::new(cfg);
        let mut sched = Scheduler::new();
        world.bootstrap(&mut sched);
        let out = run(&mut world, &mut sched, 20_000_000);
        assert!(!out.budget_exhausted, "runaway simulation");
        assert!(world.complete(), "processes did not all finish");
        (world, out.end_time)
    }

    #[test]
    fn gw_without_prefetch_completes_all_reads() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            false,
        ));
        assert_eq!(w.reads_done(), 200);
        assert_eq!(w.rec.reads.count(), 200);
        // Sequential disjoint reads: no hits at all.
        assert_eq!(w.pool().stats().misses, 200);
        assert_eq!(w.pool().stats().demand_fetches, 200);
        assert_eq!(w.disks().total_ops(), 200);
        w.pool().assert_invariants();
    }

    #[test]
    fn gw_with_prefetch_improves_read_time_and_hit_ratio() {
        let (base, t_base) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            false,
        ));
        let (pf, t_pf) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        assert_eq!(pf.reads_done(), 200);
        let base_hit = base.pool().stats().hit_ratio.value();
        let pf_hit = pf.pool().stats().hit_ratio.value();
        assert!(pf_hit > 0.5, "prefetch hit ratio too low: {pf_hit}");
        assert!(
            base_hit < 0.05,
            "base hit ratio unexpectedly high: {base_hit}"
        );
        assert!(
            pf.rec.reads.mean() < base.rec.reads.mean(),
            "prefetching should lower the mean read time ({} vs {})",
            pf.rec.reads.mean_millis(),
            base.rec.reads.mean_millis()
        );
        assert!(t_pf < t_base, "prefetching should shorten this run");
        assert!(pf.pool().stats().prefetches > 0);
        pf.pool().assert_invariants();
    }

    #[test]
    fn every_fetched_block_is_needed() {
        // The oracle never fetches a block that is not in the reference
        // string: disk ops equal unique block demand = 200.
        let (pf, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        let s = pf.pool().stats();
        assert_eq!(s.demand_fetches + s.prefetches, pf.disks().total_ops());
        assert_eq!(s.wasted_prefetches, 0);
        assert_eq!(
            pf.disks().total_ops(),
            200,
            "each block fetched exactly once"
        );
    }

    #[test]
    fn lw_shares_blocks_across_processes() {
        let (base, _) = run_world(small_cfg(
            AccessPattern::LocalWholeFile,
            SyncStyle::None,
            false,
        ));
        // 4 procs read the same 50 blocks: only ~50 misses, rest hits.
        assert_eq!(base.reads_done(), 200);
        let s = base.pool().stats();
        assert!(
            s.misses <= 60,
            "lw should fetch each block about once, got {} misses",
            s.misses
        );
        assert!(s.hit_ratio.value() > 0.6);
    }

    #[test]
    fn per_proc_sync_produces_barrier_episodes() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
            false,
        ));
        // 50 reads per proc, barrier every 10 reads, final one skipped
        // (string exhausted): 4 episodes.
        assert_eq!(w.barrier().episodes(), 4);
        assert!(w.barrier().sync_wait().count() > 0);
    }

    #[test]
    fn total_sync_produces_barrier_episodes() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksTotal(50),
            false,
        ));
        // 200 reads, boundary every 50: 3 boundaries hit before the end.
        assert!(
            w.barrier().episodes() >= 3,
            "episodes: {}",
            w.barrier().episodes()
        );
    }

    #[test]
    fn portion_sync_gates_global_portions() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalFixedPortions,
            SyncStyle::EachPortion,
            false,
        ));
        // 200 reads in portions of 20 -> 10 portions -> 9 transitions.
        assert_eq!(w.barrier().episodes(), 9);
    }

    #[test]
    fn portion_sync_gates_local_portions() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::LocalFixedPortions,
            SyncStyle::EachPortion,
            false,
        ));
        // 50 reads per proc in portions of 5 -> 10 portions -> 9 gates.
        assert_eq!(w.barrier().episodes(), 9);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_cfg(
            AccessPattern::GlobalRandomPortions,
            SyncStyle::BlocksPerProc(10),
            true,
        );
        let (a, ta) = run_world(cfg.clone());
        let (b, tb) = run_world(cfg);
        assert_eq!(ta, tb);
        assert_eq!(a.rec.reads.count(), b.rec.reads.count());
        assert_eq!(a.rec.reads.mean(), b.rec.reads.mean());
        assert_eq!(
            a.pool().stats().hit_ratio.value(),
            b.pool().stats().hit_ratio.value()
        );
        assert_eq!(a.disks().total_ops(), b.disks().total_ops());
    }

    #[test]
    fn prefetch_actions_and_overrun_are_recorded() {
        let (pf, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
            true,
        ));
        assert!(pf.rec.action_time.count() > 0, "daemon never ran");
        // Overrun may be zero in tiny runs but the accounting fields exist;
        // idle accounting must cover every wait.
        assert!(pf.rec.idle_actual.count() >= pf.rec.overrun.count());
        assert!(pf.rec.idle_actual.count() > 0);
    }

    #[test]
    fn all_six_patterns_complete_with_and_without_prefetch() {
        for pattern in AccessPattern::ALL {
            for &prefetch in &[false, true] {
                let cfg = small_cfg(pattern, SyncStyle::BlocksPerProc(10), prefetch);
                let (w, _) = run_world(cfg);
                assert_eq!(w.reads_done(), 200, "pattern {pattern} lost reads");
                w.pool().assert_invariants();
            }
        }
    }

    #[test]
    fn obl_policy_runs_and_prefetches_on_local_pattern() {
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, true);
        cfg.prefetch.policy = PolicyKind::Obl { depth: 3 };
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        // OBL tracks a locally sequential stream well enough to prefetch.
        assert!(w.pool().stats().prefetches > 0);
    }

    #[test]
    fn lw_io_bound_exercises_pinning_without_imbalance() {
        // Zero compute maximizes copy/eviction races in lw; the pinning
        // protocol must keep the accounting exact.
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, true);
        cfg.compute_mean = SimDuration::ZERO;
        let (w, _) = run_world(cfg);
        let s = w.pool().stats();
        assert_eq!(s.ready_hits + s.unready_hits + s.misses, 200);
        assert!(s.demand_fetches <= s.misses);
        assert_eq!(
            s.misses - s.demand_fetches,
            s.misses - s.demand_fetches.min(s.misses),
        );
        assert!(w.rec.alloc_retries >= s.misses - s.demand_fetches);
        w.pool().assert_invariants();
    }

    #[test]
    fn demand_priority_discipline_runs_clean() {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, true);
        cfg.discipline = rt_disk::Discipline::DemandPriority;
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        w.pool().assert_invariants();
    }

    #[test]
    fn global_lru_replacement_runs_clean() {
        let mut cfg = small_cfg(
            AccessPattern::LocalWholeFile,
            SyncStyle::BlocksPerProc(10),
            true,
        );
        cfg.replacement = rt_cache::Replacement::GlobalLru;
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        w.pool().assert_invariants();
    }

    #[test]
    fn portion_learner_policy_prefetches_on_lfp() {
        let mut cfg = small_cfg(AccessPattern::LocalFixedPortions, SyncStyle::None, true);
        cfg.prefetch =
            crate::config::PrefetchConfig::online(PolicyKind::PortionLearner { confidence: 2 });
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        assert!(
            w.pool().stats().prefetches > 0,
            "the learner should detect the regular portions and prefetch"
        );
    }

    #[test]
    fn tracing_records_every_read_in_world() {
        let cfg = small_cfg(
            AccessPattern::GlobalFixedPortions,
            SyncStyle::BlocksPerProc(10),
            true,
        );
        let mut world = World::new(cfg);
        world.enable_tracing();
        let mut sched = Scheduler::new();
        world.bootstrap(&mut sched);
        let out = run(&mut world, &mut sched, 20_000_000);
        assert!(!out.budget_exhausted);
        let trace = world.take_trace().expect("tracing enabled");
        assert_eq!(trace.len(), 200);
        // Completion order is time-sorted by construction.
        assert!(trace
            .events()
            .windows(2)
            .all(|w| w[0].completed <= w[1].completed));
    }

    #[test]
    fn barrier_departures_release_stragglers_under_portion_sync() {
        // lrp portions differ per process, so some processes exhaust their
        // strings while others still gate on portion barriers; dynamic
        // membership must prevent deadlock.
        let (w, _) = run_world(small_cfg(
            AccessPattern::LocalRandomPortions,
            SyncStyle::EachPortion,
            true,
        ));
        assert_eq!(w.reads_done(), 200);
        assert_eq!(w.barrier().departed(), 4);
    }

    #[test]
    fn min_lead_reduces_unready_hits_for_gw() {
        let mut near = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, true);
        near.prefetch.min_lead = 0;
        let mut led = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, true);
        led.prefetch.min_lead = 12;
        let (w_near, _) = run_world(near);
        let (w_led, _) = run_world(led);
        let hw_near = w_near.rec.hit_wait.mean();
        let hw_led = w_led.rec.hit_wait.mean();
        assert!(
            hw_led <= hw_near,
            "lead should not lengthen hit-wait ({} vs {})",
            hw_led.as_millis_f64(),
            hw_near.as_millis_f64()
        );
        // And the miss ratio rises, as in Fig. 14.
        assert!(w_led.pool().stats().hit_ratio.value() <= w_near.pool().stats().hit_ratio.value());
    }

    /// A config that actually stresses device queues: four processes
    /// hammering two disks with little compute between reads.
    fn overload_cfg(prefetch: bool) -> ExperimentConfig {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, prefetch);
        cfg.disks = 2;
        cfg.compute_mean = SimDuration::from_micros(500);
        cfg
    }

    #[test]
    fn defaults_leave_overload_layer_inert() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        assert!(w.admission.is_none(), "no admission state by default");
        let m = w.overload_metrics();
        assert_eq!(m.prefetches_shed, 0);
        assert_eq!(m.prefetches_throttled, 0);
        assert_eq!(m.demand_parked, 0);
        assert_eq!(m.demand_behind_prefetch, 0);
        assert_eq!(m.cache_high_water_hits, 0);
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn bounded_queue_respects_depth_and_still_finishes() {
        let mut cfg = overload_cfg(true);
        cfg.queue_depth = Some(1);
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        assert!(w.overload_metrics().max_queue_depth <= 1);
        // Contention on two disks with a depth-1 queue must have pushed
        // back somewhere: a shed prefetch or a parked demand read.
        let m = w.overload_metrics();
        assert!(
            m.prefetches_shed + m.demand_parked > 0,
            "expected backpressure under a depth-1 bound: {m:?}"
        );
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn admission_throttles_prefetch_and_finishes() {
        let mut cfg = overload_cfg(true);
        cfg.queue_depth = Some(2);
        cfg.admission = crate::admission::AdmissionConfig::on(2);
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let m = w.overload_metrics();
        assert!(
            m.prefetches_throttled > 0,
            "a 2-credit pool over 2 hot disks should throttle: {m:?}"
        );
        let adm = w.admission.as_ref().unwrap();
        assert!(adm.credits <= 2, "credit pool overflowed: {}", adm.credits);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    /// A corrupt window of probability `prob` on every disk, for the
    /// whole run, with `replicas` extra copies of the file.
    fn corrupt_cfg(prob: f64, replicas: u16, prefetch: bool) -> ExperimentConfig {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, prefetch);
        cfg.faults.replicas = replicas;
        for d in 0..cfg.disks {
            cfg.faults.plan.push(rt_disk::DeviceFault {
                disk: DiskId(d),
                kind: rt_disk::FaultKind::Corrupt { probability: prob },
                from: SimTime::ZERO,
                until: None,
            });
        }
        cfg
    }

    #[test]
    fn defaults_leave_integrity_layer_inert() {
        let (w, end) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        assert!(w.integrity.is_none(), "no integrity state by default");
        assert!(w.faults.is_none(), "no fault state by default");
        assert_eq!(
            w.integrity_metrics(end),
            crate::metrics::IntegrityMetrics::default()
        );
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn corruption_is_detected_and_repaired_never_delivered() {
        let (w, end) = run_world(corrupt_cfg(0.25, 1, true));
        assert_eq!(w.reads_done(), 200);
        let m = w.integrity_metrics(end);
        assert!(m.corruptions > 0, "{m:?}");
        assert!(m.detections > 0, "{m:?}");
        assert!(m.repairs > 0, "no read-repair happened: {m:?}");
        assert_eq!(m.corrupt_delivered, 0, "{m:?}");
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn unrepairable_corruption_poisons_with_typed_errors() {
        // No replicas: a corrupt primary is unrepairable, so nearly every
        // block poisons. Reads must fail with the typed error — recorded,
        // never delivered corrupt, never panicking — and the run still
        // terminates with every access consumed.
        let (w, end) = run_world(corrupt_cfg(0.95, 0, false));
        assert_eq!(w.reads_done(), 200);
        assert_eq!(w.rec.reads.count(), 200, "failed reads must be recorded");
        let m = w.integrity_metrics(end);
        assert!(m.poisoned_blocks > 0, "{m:?}");
        assert!(m.failed_reads > 0, "{m:?}");
        assert_eq!(m.corrupt_delivered, 0, "{m:?}");
        assert_eq!(m.repairs, 0, "no replicas to repair from");
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn scrubber_runs_in_idle_time_and_detects_corruption() {
        let mut cfg = corrupt_cfg(0.3, 1, false);
        cfg.integrity.scrub = true;
        cfg.integrity.scrub_interval = SimDuration::from_micros(100);
        let (w, end) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let m = w.integrity_metrics(end);
        assert!(m.scrubbed > 0, "scrubber never ran: {m:?}");
        assert!(m.scrub_detections > 0, "{m:?}");
        assert_eq!(m.corrupt_delivered, 0, "{m:?}");
        // Scrub actions are daemon actions: they were accounted.
        assert!(w.rec.action_time.count() > 0);
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn scrub_on_defaults_changes_nothing_without_corruption() {
        // Scrubbing a clean file costs I/O but must not change what the
        // readers observe: same reads, no detections, nothing poisoned.
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        cfg.integrity.scrub = true;
        let (w, end) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let m = w.integrity_metrics(end);
        assert!(m.scrubbed > 0);
        assert_eq!(m.detections, 0);
        assert_eq!(m.scrub_detections, 0);
        assert_eq!(m.poisoned_blocks, 0);
        assert_eq!(m.corrupt_delivered, 0);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn corrupt_device_is_quarantined_and_run_survives() {
        // One sick device among four, with a replica to steer to: the
        // corruption EWMA must quarantine it and the run must finish with
        // clean deliveries only.
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        cfg.faults.replicas = 1;
        cfg.faults.plan.push(rt_disk::DeviceFault {
            disk: DiskId(0),
            kind: rt_disk::FaultKind::Corrupt { probability: 0.95 },
            from: SimTime::ZERO,
            until: None,
        });
        let (w, end) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let m = w.integrity_metrics(end);
        assert!(m.quarantines >= 1, "{m:?}");
        assert!(m.quarantined_time > SimDuration::ZERO, "{m:?}");
        assert!(m.repairs > 0, "{m:?}");
        assert_eq!(m.corrupt_delivered, 0, "{m:?}");
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn verify_only_runs_pay_the_checksum_cost_but_stay_clean() {
        // Forced verification without any corruption: every fill pays
        // verify_cost, nothing is detected, and the run is slower than
        // the unverified baseline but otherwise equivalent.
        let base = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        let mut verified = base.clone();
        verified.integrity.verify = true;
        let (w_base, t_base) = run_world(base);
        let (w_ver, t_ver) = run_world(verified);
        assert_eq!(w_ver.reads_done(), w_base.reads_done());
        let m = w_ver.integrity_metrics(t_ver);
        assert_eq!(m.detections, 0);
        assert_eq!(m.corrupt_delivered, 0);
        assert!(
            t_ver > t_base,
            "checksum verification must cost simulated time ({t_ver:?} vs {t_base:?})"
        );
    }

    #[test]
    fn bounded_base_run_parks_without_admission_state_confusion() {
        // queue_depth alone (admission disabled) must still complete and
        // never issue credits-path accounting.
        let mut cfg = overload_cfg(false);
        cfg.queue_depth = Some(1);
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let m = w.overload_metrics();
        assert_eq!(m.prefetches_shed, 0, "no prefetches exist to shed");
        assert_eq!(m.prefetches_throttled, 0);
        w.check_soak_invariants().unwrap();
    }

    // ------------------------------------------------------------------
    // Node crashes.
    // ------------------------------------------------------------------

    fn crash_spec(node: u16, at_ms: u64, rejoin_ms: Option<u64>) -> crate::faults::CrashSpec {
        crate::faults::CrashSpec {
            node,
            at: SimTime::from_nanos(at_ms * 1_000_000),
            rejoin: rejoin_ms.map(|ms| SimTime::from_nanos(ms * 1_000_000)),
        }
    }

    #[test]
    fn defaults_leave_crash_layer_inert() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        assert!(w.crash.is_none(), "no crash state by default");
        assert_eq!(w.crash_metrics(), crate::metrics::CrashMetrics::default());
    }

    #[test]
    fn crash_without_rejoin_survivors_finish_the_file() {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        cfg.faults.crashes.push(crash_spec(1, 50, None));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.rejoins, 0);
        assert!(m.lost_reads <= 1, "{m:?}");
        // Global string: the survivors drain the shared cursor, so only
        // the victim's in-flight read (if any) is lost.
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert_eq!(w.procs[1].state, PState::Crashed);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn crash_and_rejoin_resumes_the_local_portion() {
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, false);
        cfg.faults.crashes.push(crash_spec(1, 30, Some(120)));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.rejoins, 1);
        assert!(m.lost_reads <= 1, "{m:?}");
        // Local strings: the rejoiner picks its cursor back up, so every
        // access except the one lost in flight completes.
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert!(w.procs.iter().all(|p| p.state == PState::Done));
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn cascading_crashes_still_terminate() {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, true);
        cfg.faults.crashes.push(crash_spec(1, 40, None));
        cfg.faults.crashes.push(crash_spec(2, 60, None));
        cfg.faults.crashes.push(crash_spec(3, 80, None));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 3);
        assert!(m.lost_reads <= 3, "{m:?}");
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert_eq!(w.procs[0].state, PState::Done);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn crash_in_miss_critical_section_resubmits_for_waiting_survivors() {
        // LocalWholeFile: every node reads block 0 first, so the lock
        // serializes the lookups (300us each) and node 0 — first to miss —
        // reserves the demand buffer and sits in its miss critical section
        // over (1200us, 2200us) while nodes 1..3 queue behind the Pending
        // buffer as unready hits. Crashing node 0 at 2ms therefore kills
        // it after the reservation but before the fetch reaches a disk
        // queue: the orphaned fetch must be submitted on behalf of a
        // survivor, or nodes 1..3 wait on a buffer that never fills.
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, false);
        cfg.faults.crashes.push(crash_spec(0, 2, None));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.orphaned_ios, 1, "{m:?}");
        assert_eq!(m.lost_reads, 1, "{m:?}");
        assert!(
            w.procs.iter().skip(1).all(|p| p.state == PState::Done),
            "survivors must finish despite the orphaned reservation"
        );
        assert_eq!(w.reads_done() + m.lost_reads + w.abandoned_reads(), 200);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn crash_shrinks_barrier_membership_so_survivors_never_deadlock() {
        // Without membership reclamation the first barrier after the
        // crash would wait for the dead node forever.
        let mut cfg = small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
            false,
        );
        cfg.faults.crashes.push(crash_spec(2, 100, None));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert!(w.barrier().episodes() > 0);
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn rejoiner_fast_forwards_sync_gates() {
        // A node that slept through barrier boundaries must not try to
        // retroactively synchronize; the run completes with the rejoiner
        // back in the rotation.
        let mut cfg = small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksTotal(50),
            false,
        );
        cfg.faults.crashes.push(crash_spec(3, 60, Some(400)));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.rejoins, 1);
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert!(w.procs.iter().all(|p| p.state == PState::Done));
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn crash_reclaims_what_the_victim_held() {
        // Many staggered crash/rejoin cycles across a prefetching run:
        // whatever mix of states the victims die in, nothing leaks —
        // the soak invariants hold and the pool's pin accounting closes.
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, true);
        cfg.faults.crashes.push(crash_spec(0, 25, Some(200)));
        cfg.faults.crashes.push(crash_spec(1, 50, Some(250)));
        cfg.faults.crashes.push(crash_spec(2, 75, Some(300)));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 3);
        assert_eq!(m.rejoins, 3);
        assert_eq!(w.reads_done() + m.lost_reads, 200);
        assert!(w.procs.iter().all(|p| p.state == PState::Done));
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn crash_under_corruption_never_delivers_corrupt_data() {
        let mut cfg = corrupt_cfg(0.25, 1, true);
        cfg.faults.crashes.push(crash_spec(1, 50, Some(150)));
        let (w, end) = run_world(cfg);
        let cm = w.crash_metrics();
        assert_eq!(cm.crashes, 1);
        assert_eq!(cm.rejoins, 1);
        let m = w.integrity_metrics(end);
        assert!(m.detections > 0, "{m:?}");
        assert_eq!(m.corrupt_delivered, 0, "{m:?}");
        assert_eq!(w.reads_done() + cm.lost_reads, 200);
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn crash_after_done_and_double_entries_are_noops() {
        // The victim finishes its 50-block portion long before 1.9s; the
        // crash then finds a Done process and must change nothing, and
        // its rejoin finds nothing dead.
        let mut cfg = small_cfg(AccessPattern::LocalWholeFile, SyncStyle::None, true);
        cfg.faults.crashes.push(crash_spec(1, 1_900, Some(1_950)));
        let (w, _) = run_world(cfg);
        let m = w.crash_metrics();
        assert_eq!(m.crashes, 0);
        assert_eq!(m.rejoins, 0);
        assert_eq!(m.lost_reads, 0);
        assert_eq!(w.reads_done(), 200);
    }

    // ------------------------------------------------------------------
    // Tail tolerance: hedged reads, retry budgets, circuit breakers.
    // ------------------------------------------------------------------

    /// A straggled disk 0 (x8 for the whole run) with one replica and a
    /// demand-read timeout — the canonical tail scenario.
    fn straggler_cfg(prefetch: bool) -> ExperimentConfig {
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, prefetch);
        cfg.faults.replicas = 1;
        cfg.faults.retry.timeout = Some(SimDuration::from_millis(150));
        cfg.faults.plan.push(rt_disk::DeviceFault {
            disk: DiskId(0),
            kind: rt_disk::FaultKind::Slowdown { factor: 8.0 },
            from: SimTime::ZERO,
            until: None,
        });
        cfg
    }

    #[test]
    fn defaults_leave_tail_layer_inert() {
        let (w, _) = run_world(small_cfg(
            AccessPattern::GlobalWholeFile,
            SyncStyle::None,
            true,
        ));
        let t = w.tail_metrics();
        assert_eq!(t, crate::metrics::TailMetrics::default());
        assert_eq!(w.rec.hedged_read_times.count(), 0);
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn hedge_beats_the_timeout_on_a_straggled_fetch() {
        // The straggled primary holds a fetch for ~240 ms; the timeout
        // would redirect at 150 ms, but a 40 ms hedge delay launches the
        // duplicate first, and the duplicate (a 30 ms disk) wins the
        // race. The loser is cancelled or absorbed — never delivered
        // twice — and the tail of the read distribution shrinks.
        let timeout_only = straggler_cfg(false);
        let mut hedged = straggler_cfg(false);
        hedged.faults.hedge.delay = Some(SimDuration::from_millis(40));
        let (w_base, _) = run_world(timeout_only);
        let (w, _) = run_world(hedged);
        assert_eq!(w.reads_done(), 200);
        let t = w.tail_metrics();
        assert!(t.hedges_launched > 0, "{t:?}");
        assert!(
            t.hedge_wins > 0,
            "straggled fetches lose to their hedges: {t:?}"
        );
        assert_eq!(t.duplicate_deliveries, 0, "{t:?}");
        assert_eq!(
            t.hedge_wins + t.hedge_wasted,
            t.hedges_launched,
            "every hedge resolves exactly once: {t:?}"
        );
        assert!(
            w.rec.hedged_read_times.count() > 0,
            "hedged reads are sampled separately"
        );
        // Winning at ~70 ms instead of redirecting at 150 ms must cut
        // the straggler-bound tail and the timeout count.
        assert!(
            w.rec.timeouts < w_base.rec.timeouts,
            "hedges resolve fetches before their timeouts ({} vs {})",
            w.rec.timeouts,
            w_base.rec.timeouts
        );
        let p99 = |rec: &rt_sim::Sampled| {
            rec.quantile(0.99)
                .unwrap_or(SimDuration::ZERO)
                .as_millis_f64()
        };
        assert!(
            p99(&w.rec.read_times) <= p99(&w_base.rec.read_times),
            "hedged p99 {:.2} ms must not exceed timeout-only p99 {:.2} ms",
            p99(&w.rec.read_times),
            p99(&w_base.rec.read_times)
        );
        w.check_soak_invariants().unwrap();
        w.pool().assert_invariants();
    }

    #[test]
    fn exhausted_retry_budget_denies_hedges_and_waits_patiently() {
        let mut cfg = straggler_cfg(false);
        cfg.faults.hedge.delay = Some(SimDuration::from_millis(40));
        cfg.faults.budget.capacity = Some(1);
        cfg.faults.budget.refill = 0.001;
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200, "patience still finishes the run");
        let t = w.tail_metrics();
        assert!(t.retries_denied > 0, "a 1-token bucket must deny: {t:?}");
        assert_eq!(t.duplicate_deliveries, 0);
        // The spend bound: initial capacity plus what completions could
        // have refilled.
        let bound = 1.0 + 0.001 * w.disks().total_ops() as f64;
        assert!(
            (t.budget_spent as f64) <= bound,
            "budget_spent {} exceeds bound {bound:.2}",
            t.budget_spent
        );
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn breaker_opens_on_an_outage_and_probes_readmit() {
        // Disk 0 errors every request in [20 ms, 400 ms). Two errors
        // open its breaker (threshold 0.5); once open, demand selection
        // routes to the replica without waiting to fail. After the hold,
        // half-open probes re-admit the device once it answers again.
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        cfg.faults.replicas = 1;
        cfg.faults.retry.timeout = Some(SimDuration::from_millis(150));
        cfg.faults.breaker.enabled = true;
        cfg.faults.breaker.error_threshold = 0.5;
        cfg.faults.plan.push(rt_disk::DeviceFault {
            disk: DiskId(0),
            kind: rt_disk::FaultKind::Outage,
            from: SimTime::from_nanos(20 * 1_000_000),
            until: Some(SimTime::from_nanos(400 * 1_000_000)),
        });
        let (w, _) = run_world(cfg);
        assert_eq!(w.reads_done(), 200);
        let t = w.tail_metrics();
        assert!(t.breaker_opens > 0, "{t:?}");
        assert!(
            t.probe_successes > 0,
            "the repaired disk is re-admitted: {t:?}"
        );
        w.check_soak_invariants().unwrap();
    }

    #[test]
    fn demand_retry_daemon_and_scrubber_share_replica_avoidance() {
        // Satellite regression: every replica selector consults the one
        // `healthy_replica` / `HealthTracker::avoid` predicate, so an
        // open breaker steers the demand path, the retry rotation, and
        // the prefetch daemon identically.
        let mut cfg = small_cfg(AccessPattern::GlobalWholeFile, SyncStyle::None, false);
        cfg.faults.replicas = 1;
        cfg.faults.breaker.enabled = true;
        cfg.faults.breaker.error_threshold = 0.5;
        let mut w = World::new(cfg);
        let mut sched = Scheduler::new();
        w.bootstrap(&mut sched);
        let now = SimTime::from_nanos(1_000_000);
        // Closed breaker: block 0's primary (disk 0) is used everywhere.
        assert_eq!(w.pick_demand_replica(BlockId(0), now), 0);
        assert!(!w.prefetch_target_degraded(BlockId(0), now));
        // Two timeouts push disk 0's error EWMA over the threshold.
        let f = w.faults.as_mut().expect("breaker config activates faults");
        f.health.observe_timeout(DiskId(0), now);
        f.health.observe_timeout(DiskId(0), now);
        assert!(f.health.avoid(DiskId(0), now));
        // Open breaker: demand picks the replica, retry rotation lands
        // on it too, and the daemon refuses to prefetch into disk 0.
        assert_eq!(w.pick_demand_replica(BlockId(0), now), 1);
        assert_eq!(w.healthy_replica(BlockId(0), 0, now), 1);
        assert!(w.prefetch_target_degraded(BlockId(0), now));
        // Blocks whose primary is healthy are untouched.
        assert_eq!(w.pick_demand_replica(BlockId(1), now), 0);
        assert!(!w.prefetch_target_degraded(BlockId(1), now));
    }
}
