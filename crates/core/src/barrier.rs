//! The computation-wide barrier used by the synchronization styles.
//!
//! Membership is dynamic: a process that has exhausted its reference string
//! departs the computation and no longer participates (necessary for styles
//! whose barrier points do not divide every process's read count evenly,
//! e.g. random portions). The barrier records, per arrival, the paper's
//! *synchronization time*: "the time between arrival of a process at a
//! synchronization point and the moment all processes achieve synchrony".

use rt_disk::ProcId;
use rt_sim::{SimTime, Tally};

/// Result of an arrival or departure that completed a barrier episode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierOpen {
    /// The processes that were blocked and must now be released (excludes
    /// a process whose own arrival completed the episode — it never waits).
    pub released: Vec<ProcId>,
}

/// A reusable barrier over the computation's processes.
#[derive(Clone, Debug)]
pub struct Barrier {
    members: u16,
    departed: u16,
    crashed: u16,
    waiting: Vec<(ProcId, SimTime)>,
    episodes: u64,
    sync_wait: Tally,
}

impl Barrier {
    /// A barrier over `members` processes.
    pub fn new(members: u16) -> Self {
        assert!(members > 0);
        Barrier {
            members,
            departed: 0,
            crashed: 0,
            waiting: Vec::with_capacity(members as usize),
            episodes: 0,
            sync_wait: Tally::new(),
        }
    }

    /// Process `proc` arrives at `now`. If this completes the episode, all
    /// waiting processes are released and their synchronization waits
    /// recorded (the arriving process records a zero wait).
    pub fn arrive(&mut self, proc: ProcId, now: SimTime) -> Option<BarrierOpen> {
        debug_assert!(
            !self.waiting.iter().any(|&(p, _)| p == proc),
            "process arrived at the same barrier twice"
        );
        self.waiting.push((proc, now));
        self.try_open(now, Some(proc))
    }

    /// Process `proc` leaves the computation for good; it will not arrive
    /// at this or any future episode. May complete the current episode.
    pub fn depart(&mut self, _proc: ProcId, now: SimTime) -> Option<BarrierOpen> {
        self.departed += 1;
        debug_assert!(self.departed + self.crashed <= self.members);
        self.try_open(now, None)
    }

    /// Process `proc` crashed: it stops participating until (and unless)
    /// [`rejoin`](Barrier::rejoin) is called. If it was blocked at the
    /// barrier its arrival is forgotten — no synchronization wait is
    /// recorded for a wait that never resolved. Unlike [`depart`], a crash
    /// is reversible. May complete the current episode for the survivors;
    /// when the victim was the *last* waiter the episode simply dissolves
    /// (nobody is blocked, so nothing can hang).
    pub fn crash(&mut self, proc: ProcId, now: SimTime) -> Option<BarrierOpen> {
        if let Some(pos) = self.waiting.iter().position(|&(p, _)| p == proc) {
            self.waiting.remove(pos);
        }
        self.crashed += 1;
        debug_assert!(self.departed + self.crashed <= self.members);
        self.try_open(now, None)
    }

    /// A crashed process re-enters the computation: membership re-grows.
    /// The rejoiner participates from the *next* episode; it cannot
    /// retroactively block one already forming (callers re-run the open
    /// check themselves if the rejoiner immediately arrives).
    pub fn rejoin(&mut self, _proc: ProcId) {
        debug_assert!(self.crashed > 0, "rejoin without a prior crash");
        self.crashed -= 1;
    }

    fn try_open(&mut self, now: SimTime, completer: Option<ProcId>) -> Option<BarrierOpen> {
        // The `is_empty` guard doubles as the membership-collapse backstop:
        // when every effective member is gone (departed + crashed ==
        // members) with nobody blocked, there is no episode to open and
        // nobody to hang.
        if self.waiting.is_empty()
            || (self.waiting.len() as u16) + self.departed + self.crashed < self.members
        {
            return None;
        }
        let mut released = Vec::with_capacity(self.waiting.len());
        for (p, arrived) in self.waiting.drain(..) {
            self.sync_wait.record(now.saturating_since(arrived));
            if Some(p) != completer {
                released.push(p);
            }
        }
        self.episodes += 1;
        Some(BarrierOpen { released })
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Distribution of per-arrival synchronization waits.
    pub fn sync_wait(&self) -> &Tally {
        &self.sync_wait
    }

    /// Number of processes currently blocked.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Number of processes that left the computation.
    pub fn departed(&self) -> u16 {
        self.departed
    }

    /// Number of processes currently crashed (not departed, not waiting).
    pub fn crashed(&self) -> u16 {
        self.crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sim::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn opens_when_all_arrive() {
        let mut b = Barrier::new(3);
        assert_eq!(b.arrive(ProcId(0), at(0)), None);
        assert_eq!(b.arrive(ProcId(1), at(5)), None);
        let open = b.arrive(ProcId(2), at(9)).expect("barrier should open");
        // The completer is not in the released list.
        assert_eq!(open.released, vec![ProcId(0), ProcId(1)]);
        assert_eq!(b.episodes(), 1);
        // Waits: 9, 4, 0 ms.
        assert!((b.sync_wait().mean_millis() - 13.0 / 3.0).abs() < 1e-9);
        assert_eq!(b.waiting(), 0);
    }

    #[test]
    fn reusable_across_episodes() {
        let mut b = Barrier::new(2);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        assert!(b.arrive(ProcId(1), at(1)).is_some());
        assert!(b.arrive(ProcId(1), at(10)).is_none());
        let open = b.arrive(ProcId(0), at(12)).unwrap();
        assert_eq!(open.released, vec![ProcId(1)]);
        assert_eq!(b.episodes(), 2);
    }

    #[test]
    fn departure_shrinks_membership() {
        let mut b = Barrier::new(3);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        assert!(b.depart(ProcId(2), at(1)).is_none());
        // Now only 2 effective members; proc 1's arrival opens it.
        let open = b.arrive(ProcId(1), at(2)).unwrap();
        assert_eq!(open.released, vec![ProcId(0)]);
    }

    #[test]
    fn departure_of_last_straggler_opens() {
        let mut b = Barrier::new(2);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        let open = b.depart(ProcId(1), at(3)).unwrap();
        assert_eq!(open.released, vec![ProcId(0)]);
        assert_eq!(b.departed(), 1);
    }

    #[test]
    fn depart_with_empty_waitlist_is_silent() {
        let mut b = Barrier::new(2);
        assert_eq!(b.depart(ProcId(0), at(0)), None);
        // Remaining single member forms future episodes alone.
        let open = b.arrive(ProcId(1), at(1)).unwrap();
        assert!(open.released.is_empty());
    }

    #[test]
    fn crash_of_absent_member_releases_stragglers() {
        let mut b = Barrier::new(3);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        assert!(b.arrive(ProcId(1), at(2)).is_none());
        // Proc 2 crashes before arriving: survivors must not hang.
        let open = b.crash(ProcId(2), at(5)).expect("survivors released");
        assert_eq!(open.released, vec![ProcId(0), ProcId(1)]);
        assert_eq!(b.crashed(), 1);
        // Subsequent episodes form over the two survivors.
        assert!(b.arrive(ProcId(0), at(6)).is_none());
        assert!(b.arrive(ProcId(1), at(7)).is_some());
    }

    #[test]
    fn crash_of_waiting_member_forgets_its_arrival() {
        let mut b = Barrier::new(3);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        assert!(b.arrive(ProcId(1), at(1)).is_none());
        let waits_before = b.sync_wait().count();
        // Proc 1 crashes while blocked: its unresolved wait is not
        // recorded and the episode keeps waiting for proc 2.
        assert!(b.crash(ProcId(1), at(4)).is_none());
        assert_eq!(b.waiting(), 1);
        assert_eq!(b.sync_wait().count(), waits_before);
        let open = b.arrive(ProcId(2), at(9)).unwrap();
        assert_eq!(open.released, vec![ProcId(0)]);
    }

    #[test]
    fn crash_of_last_waiter_dissolves_the_episode() {
        // Membership collapses to zero mid-wait: the sole blocked member
        // crashes. Nothing is released, nothing hangs, and the barrier
        // stays usable after a rejoin.
        let mut b = Barrier::new(2);
        assert!(b.arrive(ProcId(0), at(0)).is_none());
        assert!(b.crash(ProcId(1), at(1)).is_some(), "survivor released");
        assert!(b.crash(ProcId(0), at(2)).is_none(), "nobody left to wake");
        assert_eq!(b.waiting(), 0);

        let mut b = Barrier::new(1);
        assert!(b.crash(ProcId(0), at(1)).is_none());
        assert_eq!(b.waiting(), 0);
        b.rejoin(ProcId(0));
        let open = b.arrive(ProcId(0), at(2)).unwrap();
        assert!(open.released.is_empty());
    }

    #[test]
    fn rejoin_regrows_membership() {
        let mut b = Barrier::new(3);
        assert!(b.crash(ProcId(2), at(0)).is_none());
        assert!(b.arrive(ProcId(0), at(1)).is_none());
        // With proc 2 crashed, proc 1 completes the episode.
        assert!(b.arrive(ProcId(1), at(2)).is_some());
        // Proc 2 rejoins: episodes need all three again.
        b.rejoin(ProcId(2));
        assert_eq!(b.crashed(), 0);
        assert!(b.arrive(ProcId(0), at(3)).is_none());
        assert!(b.arrive(ProcId(1), at(4)).is_none());
        let open = b.arrive(ProcId(2), at(5)).unwrap();
        assert_eq!(open.released, vec![ProcId(0), ProcId(1)]);
    }

    #[test]
    fn single_member_barrier_is_transparent() {
        let mut b = Barrier::new(1);
        let open = b.arrive(ProcId(0), at(5)).unwrap();
        assert!(open.released.is_empty());
        assert_eq!(b.sync_wait().max(), Some(SimDuration::ZERO));
    }
}
