//! Prefetch block selection.
//!
//! The paper's policies are *optimistic oracles*: each pattern's prefetch
//! algorithm is handed the reference string in advance and "always chooses a
//! block that will be needed in the near future and never makes mistakes",
//! tempered by feasibility limits — the random-portion patterns never
//! prefetch past the end of the currently established portion, because an
//! on-the-fly predictor could not know where the next portion starts
//! (§IV-B). The §V-E *minimum prefetch lead* variant additionally refuses
//! blocks closer than `lead` string positions to the demand frontier,
//! relaxed near the end of the string.

use rt_cache::BufferPool;
use rt_disk::BlockId;
use rt_patterns::RefString;

/// Inputs to one oracle selection.
#[derive(Clone, Copy, Debug)]
pub struct OracleView<'a> {
    /// The reference string to prefetch from (the issuing process's own
    /// string for local patterns; the shared string for global patterns).
    pub string: &'a RefString,
    /// Index of the next access to be demanded (the demand frontier).
    pub frontier: usize,
    /// May the policy select blocks beyond the current portion? False for
    /// the random-portion patterns.
    pub cross_portions: bool,
    /// Minimum prefetch lead in string positions (0 = none).
    pub min_lead: u32,
}

/// Choose the next block to prefetch under the paper's oracle rules, or
/// `None` when no feasible uncached block exists.
///
/// Scans the reference string forward from the frontier (offset by the
/// lead), skipping blocks already cached or in flight. Near the end of the
/// string the lead restriction is relaxed, exactly as in §V-E.
pub fn select_oracle(view: &OracleView<'_>, pool: &BufferPool) -> Option<BlockId> {
    let start = scan_start(view)?;
    match scan(view, pool, start, established(view)) {
        ScanStop::Uncached(_, block) => Some(block),
        ScanStop::Fence(_) | ScanStop::End => None,
    }
}

/// Memo for repeated oracle scans over a single reference string: the span
/// `base..pos` was verified all-cached when the pool's unused-eviction
/// count was `epoch`. While that count is unchanged, no block cached ahead
/// of the demand frontier can have become uncached, so a later scan
/// starting inside the span may resume at `pos` instead of re-checking it.
///
/// Soundness requires that every block appear **at most once** in the
/// string (otherwise a copy *behind* the frontier could be evicted while
/// the hinted span silently relied on it) and that the same string and
/// pool are used for every call. Callers gate on that — see
/// `World::select_block`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanHint {
    base: usize,
    pos: usize,
    epoch: u64,
}

/// [`select_oracle`] with a scan memo: identical selections, but repeat
/// scans over a still-cached prefix are skipped. This is the hot path for
/// the sequential global patterns, where each prefetch action would
/// otherwise re-walk the whole cached span ahead of the frontier.
pub fn select_oracle_hinted(
    view: &OracleView<'_>,
    pool: &BufferPool,
    hint: &mut ScanHint,
) -> Option<BlockId> {
    let start = scan_start(view)?;
    let epoch = pool.unused_evictions();
    let from = if hint.epoch == epoch && start >= hint.base && start <= hint.pos {
        hint.pos
    } else {
        // Stale epoch or a start outside the verified span: rebuild.
        hint.base = start;
        hint.epoch = epoch;
        start
    };
    debug_assert!(
        view.string.accesses()[start..from]
            .iter()
            .all(|a| pool.contains(a.block)),
        "scan hint skipped an uncached entry"
    );
    let (pos, selected) = match scan(view, pool, from, established(view)) {
        ScanStop::Uncached(i, block) => (i, Some(block)),
        ScanStop::Fence(i) => (i, None),
        ScanStop::End => (view.string.len(), None),
    };
    hint.pos = pos;
    selected
}

/// Where a forward scan stopped.
enum ScanStop {
    /// The first feasible uncached entry, at this string index.
    Uncached(usize, BlockId),
    /// An unestablished portion begins at this index (random patterns).
    Fence(usize),
    /// Every remaining entry was cached.
    End,
}

/// The first string index a scan may select from, or `None` when the
/// string is exhausted. Near the end of the string the lead restriction is
/// relaxed, exactly as in §V-E.
#[inline]
fn scan_start(view: &OracleView<'_>) -> Option<usize> {
    let len = view.string.len();
    if view.frontier >= len {
        return None;
    }
    let lead_start = view.frontier + view.min_lead as usize;
    Some(if lead_start < len {
        lead_start
    } else {
        // End-of-string relaxation: fewer than `lead` accesses remain.
        view.frontier
    })
}

/// The portion the demand stream has most recently established: that of
/// the last taken access (or the first access before any are taken).
#[inline]
fn established(view: &OracleView<'_>) -> u32 {
    view.string
        .get(view.frontier.saturating_sub(1))
        .map(|a| a.portion)
        .unwrap_or(0)
}

fn scan(view: &OracleView<'_>, pool: &BufferPool, start: usize, established: u32) -> ScanStop {
    // Slice iteration: this scan runs once per prefetch action — tens of
    // thousands of times per run, walking the cached span ahead of the
    // frontier — so it must not pay a bounds check and Option per entry.
    for (off, access) in view.string.accesses()[start..].iter().enumerate() {
        if !view.cross_portions && access.portion > established {
            // Random portions: never predict into an unestablished portion.
            return ScanStop::Fence(start + off);
        }
        if !pool.contains(access.block) {
            return ScanStop::Uncached(start + off, access.block);
        }
    }
    ScanStop::End
}

/// [`select_oracle`] with an exclusion predicate: uncached blocks for
/// which `avoid` returns true are passed over (left to demand traffic)
/// and the scan continues behind them. Used by the fault layer to keep
/// prefetching ahead on healthy devices while a degraded one recovers;
/// portion fences and the lead restriction apply unchanged.
pub fn select_oracle_avoiding(
    view: &OracleView<'_>,
    pool: &BufferPool,
    avoid: impl Fn(BlockId) -> bool,
) -> Option<BlockId> {
    let start = scan_start(view)?;
    let established = established(view);
    for access in &view.string.accesses()[start..] {
        if !view.cross_portions && access.portion > established {
            return None;
        }
        if !pool.contains(access.block) && !avoid(access.block) {
            return Some(access.block);
        }
    }
    None
}

/// Choose a block from an on-line predictor's candidate list: the first
/// prediction not already cached or in flight.
pub fn select_predicted(candidates: &[BlockId], pool: &BufferPool) -> Option<BlockId> {
    candidates.iter().copied().find(|&b| !pool.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_cache::PoolConfig;
    use rt_disk::ProcId;
    use rt_sim::SimTime;

    fn pool_with(blocks: &[u32]) -> BufferPool {
        // A roomy pool so reservations never fail in these tests.
        let mut p = BufferPool::new(PoolConfig {
            procs: 1,
            demand_per_proc: 1,
            prefetch_per_proc: 64,
            global_prefetch_cap: 64,
            replacement: rt_cache::Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        for &b in blocks {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(b)).unwrap();
            p.commit_prefetch(buf, BlockId(b), SimTime::ZERO);
        }
        p
    }

    fn whole_file(n: u32) -> RefString {
        RefString::from_portions(&[(0, n)])
    }

    #[test]
    fn oracle_picks_first_uncached_after_frontier() {
        let s = whole_file(100);
        let pool = pool_with(&[3, 4]);
        let view = OracleView {
            string: &s,
            frontier: 3,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(5)));
    }

    #[test]
    fn oracle_exhausted_string_yields_none() {
        let s = whole_file(10);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 10,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), None);
    }

    #[test]
    fn oracle_respects_lead() {
        let s = whole_file(100);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 10,
            cross_portions: true,
            min_lead: 20,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(30)));
    }

    #[test]
    fn oracle_relaxes_lead_near_end() {
        let s = whole_file(100);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 95,
            cross_portions: true,
            min_lead: 20,
        };
        // Frontier + lead is past the end: relaxed, selects from frontier.
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(95)));
    }

    #[test]
    fn oracle_stops_at_unestablished_portion() {
        // Two portions: 0..5 and 50..55.
        let s = RefString::from_portions(&[(0, 5), (50, 5)]);
        let pool = pool_with(&[2, 3, 4]);
        // Frontier at index 2 (portion 0 established).
        let view = OracleView {
            string: &s,
            frontier: 2,
            cross_portions: false,
            min_lead: 0,
        };
        // Blocks 2-4 cached; block 50 is portion 1 — not established yet.
        assert_eq!(select_oracle(&view, &pool), None);
        // Once the frontier enters portion 1, selection proceeds there.
        let view = OracleView {
            string: &s,
            frontier: 6,
            cross_portions: false,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(51)));
    }

    #[test]
    fn oracle_crosses_portions_when_allowed() {
        let s = RefString::from_portions(&[(0, 5), (50, 5)]);
        let pool = pool_with(&[2, 3, 4]);
        let view = OracleView {
            string: &s,
            frontier: 2,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(50)));
    }

    #[test]
    fn oracle_skips_duplicate_appearances() {
        // A string with a repeated block (overlapping random portions).
        let s = RefString::from_portions(&[(0, 3), (1, 3)]);
        let pool = pool_with(&[1, 2]);
        let view = OracleView {
            string: &s,
            frontier: 1,
            cross_portions: true,
            min_lead: 0,
        };
        // Index 1,2 cached; index 3 is block 1 again (cached); index 4 is
        // block 2 (cached); index 5 is block 3.
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(3)));
    }

    #[test]
    fn hinted_oracle_matches_plain_selection() {
        // A duplicate-free sequential string (the gw shape). Drive both
        // selectors in lockstep while the cached span grows and the
        // frontier advances; they must agree at every step.
        let s = whole_file(64);
        let mut pool = pool_with(&[]);
        let mut hint = ScanHint::default();
        let mut frontier = 0usize;
        for step in 0..200 {
            let view = OracleView {
                string: &s,
                frontier,
                cross_portions: true,
                min_lead: 0,
            };
            let plain = select_oracle(&view, &pool);
            let hinted = select_oracle_hinted(&view, &pool, &mut hint);
            assert_eq!(plain, hinted, "selectors diverged at step {step}");
            if let Some(block) = hinted {
                let buf = pool.try_reserve_prefetch(ProcId(0), block).unwrap();
                pool.commit_prefetch(buf, block, SimTime::ZERO);
            }
            if step % 3 == 0 && frontier < s.len() {
                frontier += 1;
            }
        }
    }

    #[test]
    fn hinted_oracle_resets_after_unused_prefetch_eviction() {
        // With the unused-prefetch relaxation, a block inside the verified
        // span can be pushed out; the eviction epoch must force a rescan.
        let mut pool = BufferPool::new(PoolConfig {
            procs: 1,
            demand_per_proc: 1,
            prefetch_per_proc: 4,
            global_prefetch_cap: 64,
            replacement: rt_cache::Replacement::RuSet,
            evict_unused_prefetch: true,
        });
        let s = whole_file(32);
        for b in 0..4u32 {
            let buf = pool.try_reserve_prefetch(ProcId(0), BlockId(b)).unwrap();
            pool.commit_prefetch(buf, BlockId(b), SimTime::ZERO);
            pool.complete_io(buf, SimTime::ZERO);
        }
        let view = OracleView {
            string: &s,
            frontier: 0,
            cross_portions: true,
            min_lead: 0,
        };
        let mut hint = ScanHint::default();
        // First scan verifies 0..=3 cached and selects block 4.
        assert_eq!(
            select_oracle_hinted(&view, &pool, &mut hint),
            Some(BlockId(4))
        );
        // The partition is full, so committing block 4 evicts one of the
        // unused prefetches inside the verified span.
        let buf = pool.try_reserve_prefetch(ProcId(0), BlockId(4)).unwrap();
        pool.commit_prefetch(buf, BlockId(4), SimTime::ZERO);
        assert_eq!(pool.unused_evictions(), 1, "eviction must bump the epoch");
        let evicted = (0..4u32)
            .map(BlockId)
            .find(|&b| !pool.contains(b))
            .expect("one early block was pushed out");
        // The hint is stale; both selectors must re-find the evicted block.
        assert_eq!(select_oracle(&view, &pool), Some(evicted));
        assert_eq!(select_oracle_hinted(&view, &pool, &mut hint), Some(evicted));
    }

    #[test]
    fn avoiding_oracle_scans_past_excluded_blocks() {
        let s = whole_file(100);
        let pool = pool_with(&[3]);
        let view = OracleView {
            string: &s,
            frontier: 3,
            cross_portions: true,
            min_lead: 0,
        };
        // Plain selection picks block 4; with 4 and 5 excluded the scan
        // continues to 6 instead of stalling.
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(4)));
        assert_eq!(
            select_oracle_avoiding(&view, &pool, |b| b.0 == 4 || b.0 == 5),
            Some(BlockId(6))
        );
        // Nothing avoided: identical to plain selection.
        assert_eq!(
            select_oracle_avoiding(&view, &pool, |_| false),
            Some(BlockId(4))
        );
        // Everything avoided: no candidate.
        assert_eq!(select_oracle_avoiding(&view, &pool, |_| true), None);
    }

    #[test]
    fn avoiding_oracle_still_respects_portion_fence() {
        let s = RefString::from_portions(&[(0, 5), (50, 5)]);
        let pool = pool_with(&[2, 3]);
        let view = OracleView {
            string: &s,
            frontier: 2,
            cross_portions: false,
            min_lead: 0,
        };
        // Block 4 is the only feasible candidate; avoiding it must not
        // leak the scan into the unestablished portion at 50.
        assert_eq!(select_oracle_avoiding(&view, &pool, |b| b.0 == 4), None);
    }

    #[test]
    fn predicted_selection_filters_cached() {
        let pool = pool_with(&[7]);
        assert_eq!(
            select_predicted(&[BlockId(7), BlockId(8)], &pool),
            Some(BlockId(8))
        );
        assert_eq!(select_predicted(&[BlockId(7)], &pool), None);
        assert_eq!(select_predicted(&[], &pool), None);
    }
}
