//! Prefetch block selection.
//!
//! The paper's policies are *optimistic oracles*: each pattern's prefetch
//! algorithm is handed the reference string in advance and "always chooses a
//! block that will be needed in the near future and never makes mistakes",
//! tempered by feasibility limits — the random-portion patterns never
//! prefetch past the end of the currently established portion, because an
//! on-the-fly predictor could not know where the next portion starts
//! (§IV-B). The §V-E *minimum prefetch lead* variant additionally refuses
//! blocks closer than `lead` string positions to the demand frontier,
//! relaxed near the end of the string.

use rt_cache::BufferPool;
use rt_disk::BlockId;
use rt_patterns::RefString;

/// Inputs to one oracle selection.
#[derive(Clone, Copy, Debug)]
pub struct OracleView<'a> {
    /// The reference string to prefetch from (the issuing process's own
    /// string for local patterns; the shared string for global patterns).
    pub string: &'a RefString,
    /// Index of the next access to be demanded (the demand frontier).
    pub frontier: usize,
    /// May the policy select blocks beyond the current portion? False for
    /// the random-portion patterns.
    pub cross_portions: bool,
    /// Minimum prefetch lead in string positions (0 = none).
    pub min_lead: u32,
}

/// Choose the next block to prefetch under the paper's oracle rules, or
/// `None` when no feasible uncached block exists.
///
/// Scans the reference string forward from the frontier (offset by the
/// lead), skipping blocks already cached or in flight. Near the end of the
/// string the lead restriction is relaxed, exactly as in §V-E.
pub fn select_oracle(view: &OracleView<'_>, pool: &BufferPool) -> Option<BlockId> {
    let len = view.string.len();
    if view.frontier >= len {
        return None;
    }
    // The portion the demand stream has most recently established: that of
    // the last taken access (or the first access before any are taken).
    let established = view
        .string
        .get(view.frontier.saturating_sub(1))
        .map(|a| a.portion)
        .unwrap_or(0);

    let lead_start = view.frontier + view.min_lead as usize;
    let start = if lead_start < len {
        lead_start
    } else {
        // End-of-string relaxation: fewer than `lead` accesses remain.
        view.frontier
    };
    scan(view, pool, start, established)
        // If the lead window found nothing but the tail was never examined
        // (all candidates cached), there is nothing more to do; but when
        // the relaxation kicked in we already scanned from the frontier.
}

fn scan(
    view: &OracleView<'_>,
    pool: &BufferPool,
    start: usize,
    established: u32,
) -> Option<BlockId> {
    for i in start..view.string.len() {
        let access = view.string.get(i).expect("index in range");
        if !view.cross_portions && access.portion > established {
            // Random portions: never predict into an unestablished portion.
            return None;
        }
        if !pool.contains(access.block) {
            return Some(access.block);
        }
    }
    None
}

/// Choose a block from an on-line predictor's candidate list: the first
/// prediction not already cached or in flight.
pub fn select_predicted(candidates: &[BlockId], pool: &BufferPool) -> Option<BlockId> {
    candidates.iter().copied().find(|&b| !pool.contains(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_cache::PoolConfig;
    use rt_disk::ProcId;
    use rt_sim::SimTime;

    fn pool_with(blocks: &[u32]) -> BufferPool {
        // A roomy pool so reservations never fail in these tests.
        let mut p = BufferPool::new(PoolConfig {
            procs: 1,
            demand_per_proc: 1,
            prefetch_per_proc: 64,
            global_prefetch_cap: 64,
            replacement: rt_cache::Replacement::RuSet,
            evict_unused_prefetch: false,
        });
        for &b in blocks {
            let buf = p.try_reserve_prefetch(ProcId(0), BlockId(b)).unwrap();
            p.commit_prefetch(buf, BlockId(b), SimTime::ZERO);
        }
        p
    }

    fn whole_file(n: u32) -> RefString {
        RefString::from_portions(&[(0, n)])
    }

    #[test]
    fn oracle_picks_first_uncached_after_frontier() {
        let s = whole_file(100);
        let pool = pool_with(&[3, 4]);
        let view = OracleView {
            string: &s,
            frontier: 3,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(5)));
    }

    #[test]
    fn oracle_exhausted_string_yields_none() {
        let s = whole_file(10);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 10,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), None);
    }

    #[test]
    fn oracle_respects_lead() {
        let s = whole_file(100);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 10,
            cross_portions: true,
            min_lead: 20,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(30)));
    }

    #[test]
    fn oracle_relaxes_lead_near_end() {
        let s = whole_file(100);
        let pool = pool_with(&[]);
        let view = OracleView {
            string: &s,
            frontier: 95,
            cross_portions: true,
            min_lead: 20,
        };
        // Frontier + lead is past the end: relaxed, selects from frontier.
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(95)));
    }

    #[test]
    fn oracle_stops_at_unestablished_portion() {
        // Two portions: 0..5 and 50..55.
        let s = RefString::from_portions(&[(0, 5), (50, 5)]);
        let pool = pool_with(&[2, 3, 4]);
        // Frontier at index 2 (portion 0 established).
        let view = OracleView {
            string: &s,
            frontier: 2,
            cross_portions: false,
            min_lead: 0,
        };
        // Blocks 2-4 cached; block 50 is portion 1 — not established yet.
        assert_eq!(select_oracle(&view, &pool), None);
        // Once the frontier enters portion 1, selection proceeds there.
        let view = OracleView {
            string: &s,
            frontier: 6,
            cross_portions: false,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(51)));
    }

    #[test]
    fn oracle_crosses_portions_when_allowed() {
        let s = RefString::from_portions(&[(0, 5), (50, 5)]);
        let pool = pool_with(&[2, 3, 4]);
        let view = OracleView {
            string: &s,
            frontier: 2,
            cross_portions: true,
            min_lead: 0,
        };
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(50)));
    }

    #[test]
    fn oracle_skips_duplicate_appearances() {
        // A string with a repeated block (overlapping random portions).
        let s = RefString::from_portions(&[(0, 3), (1, 3)]);
        let pool = pool_with(&[1, 2]);
        let view = OracleView {
            string: &s,
            frontier: 1,
            cross_portions: true,
            min_lead: 0,
        };
        // Index 1,2 cached; index 3 is block 1 again (cached); index 4 is
        // block 2 (cached); index 5 is block 3.
        assert_eq!(select_oracle(&view, &pool), Some(BlockId(3)));
    }

    #[test]
    fn predicted_selection_filters_cached() {
        let pool = pool_with(&[7]);
        assert_eq!(
            select_predicted(&[BlockId(7), BlockId(8)], &pool),
            Some(BlockId(8))
        );
        assert_eq!(select_predicted(&[BlockId(7)], &pool), None);
        assert_eq!(select_predicted(&[], &pool), None);
    }
}
