//! End-to-end data-integrity configuration and error types.
//!
//! The device layer can inject *silent* corruption
//! ([`rt_disk::FaultKind::Corrupt`]): requests complete `Ok`, on time,
//! but the payload is bad. This module configures the defenses layered
//! on top:
//!
//! * **Checksum verification at cache fill** — every fill is verified
//!   (costing [`IntegrityConfig::verify_cost`] of simulated time) before
//!   the block becomes readable; a corrupt payload is detected, never
//!   delivered.
//! * **Read-repair** — a detected-corrupt fill is re-fetched from the
//!   next rotated replica; a clean copy is delivered to the waiters and
//!   written back over the bad copy. When *every* copy is corrupt the
//!   block is **poisoned**: waiters get a typed [`IntegrityError`], never
//!   a corrupt block.
//! * **Idle-time scrubbing** — an optional daemon action, scheduled
//!   exactly like prefetches (idle-time only, overrun-charged), that
//!   walks the file verifying blocks ahead of demand and repairing what
//!   it finds.
//! * **Quarantine** ([`QuarantineConfig`]) — a device whose corruption
//!   EWMA crosses threshold is quarantined: demand reads steer to
//!   replicas and prefetch/scrub skip it. After a hold period it enters
//!   *probation*, where traffic is re-admitted; a corrupt read during
//!   probation re-quarantines it, a clean probation window ends with the
//!   device healthy again.
//!
//! Defaults are inert: no corrupt windows scheduled, scrubber off — the
//! world allocates no integrity state and the event stream is untouched.

use rt_disk::BlockId;
use rt_sim::SimDuration;
use std::fmt;

/// Quarantine lifecycle for devices that return corrupt payloads.
///
/// Each detected-corrupt (or clean) read feeds a per-device corruption
/// EWMA. Crossing [`QuarantineConfig::threshold`] quarantines the device
/// for [`QuarantineConfig::hold`]; then a [`QuarantineConfig::probation`]
/// window re-admits traffic while watching for recurrence. A corrupt
/// read during probation re-quarantines immediately; surviving probation
/// clean restores the device to full health.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuarantineConfig {
    /// Master switch: when false, corruption is still tracked but no
    /// device is ever quarantined.
    pub enabled: bool,
    /// Corruption-EWMA smoothing factor in (0, 1]. The EWMA starts at 0
    /// and always blends (no first-sample jump), so a single corrupt
    /// read moves it to `alpha`, not to 1.
    pub alpha: f64,
    /// Corruption EWMA above this quarantines the device.
    pub threshold: f64,
    /// How long a quarantined device is held out of service entirely.
    pub hold: SimDuration,
    /// Probation window after the hold: traffic flows again, but one
    /// corrupt read restarts the quarantine.
    pub probation: SimDuration,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            enabled: true,
            alpha: 0.3,
            threshold: 0.5,
            hold: SimDuration::from_millis(500),
            probation: SimDuration::from_millis(500),
        }
    }
}

/// Integrity behaviour of one experiment. [`IntegrityConfig::default`]
/// is inert — combined with a fault plan that schedules no corrupt
/// windows, runs are event-for-event identical to a build without the
/// integrity subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntegrityConfig {
    /// Verify checksums at cache fill even when no corrupt windows are
    /// scheduled. (Verification is forced on whenever the fault plan
    /// contains a corrupt window, so this flag only matters for
    /// measuring the verify overhead on clean runs.)
    pub verify: bool,
    /// Simulated time to checksum one block at fill; the block becomes
    /// readable only after this has elapsed.
    pub verify_cost: SimDuration,
    /// Run the idle-time scrubber daemon.
    pub scrub: bool,
    /// Minimum spacing between scrub reads issued by one node's daemon,
    /// so an idle machine scrubs steadily instead of saturating its
    /// disks the moment it goes idle.
    pub scrub_interval: SimDuration,
    /// Device quarantine lifecycle.
    pub quarantine: QuarantineConfig,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            verify: false,
            verify_cost: SimDuration::from_micros(200),
            scrub: false,
            scrub_interval: SimDuration::from_millis(10),
            quarantine: QuarantineConfig::default(),
        }
    }
}

impl IntegrityConfig {
    /// Does this config, combined with `plan`, require the world's
    /// integrity machinery? When false, no integrity state is allocated
    /// and fills complete exactly as they always did.
    pub fn active_with(&self, plan: &rt_disk::FaultPlan) -> bool {
        self.verify || self.scrub || plan.has_corruption()
    }
}

/// A user read failed for integrity reasons: the block is poisoned —
/// every replica returned a corrupt payload, so no clean copy exists.
/// Waiters receive this typed error instead of corrupt data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrityError {
    /// The poisoned block.
    pub block: BlockId,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} is poisoned: every replica returned a corrupt payload",
            self.block.0
        )
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_disk::{DiskId, FaultPlan};
    use rt_sim::SimTime;

    #[test]
    fn default_is_inert_without_corrupt_windows() {
        let cfg = IntegrityConfig::default();
        let mut plan = FaultPlan::none();
        assert!(!cfg.active_with(&plan));
        // Non-corrupt faults do not activate integrity.
        plan.push(rt_disk::DeviceFault {
            disk: DiskId(0),
            kind: rt_disk::FaultKind::Outage,
            from: SimTime::ZERO,
            until: None,
        });
        assert!(!cfg.active_with(&plan));
    }

    #[test]
    fn corrupt_window_or_switches_activate() {
        let mut plan = FaultPlan::none();
        plan.push(rt_disk::DeviceFault {
            disk: DiskId(0),
            kind: rt_disk::FaultKind::Corrupt { probability: 0.1 },
            from: SimTime::ZERO,
            until: None,
        });
        assert!(IntegrityConfig::default().active_with(&plan));
        let scrub_only = IntegrityConfig {
            scrub: true,
            ..IntegrityConfig::default()
        };
        assert!(scrub_only.active_with(&FaultPlan::none()));
        let verify_only = IntegrityConfig {
            verify: true,
            ..IntegrityConfig::default()
        };
        assert!(verify_only.active_with(&FaultPlan::none()));
    }

    #[test]
    fn error_display_names_the_block() {
        let e = IntegrityError { block: BlockId(42) };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("poisoned"));
    }
}
