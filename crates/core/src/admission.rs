//! Admission control for overload robustness: demand reads keep strict
//! priority while the prefetch daemon is throttled by a token/credit
//! scheme fed by per-disk queue depth and cache pressure.
//!
//! The paper's testbed lets the daemon race demand traffic onto unbounded
//! FCFS disk queues — a deliberate property for studying contention
//! (Fig. 7), but a liability under overload: a burst of prefetches can
//! bury every demand fetch behind speculative work. This module is the
//! opt-in backpressure layer:
//!
//! * **Credits** — at most [`AdmissionConfig::prefetch_credits`] prefetch
//!   I/Os may be in flight (queued or in service) at once. A credit is
//!   consumed when the daemon submits a prefetch and refunded exactly once
//!   when that prefetch completes at the disk or is shed from a queue.
//! * **Queue high water** — the daemon never submits a prefetch to a
//!   device whose queue already holds
//!   [`AdmissionConfig::queue_high_water`] waiting requests.
//! * **Cache high water** — the daemon stops reserving prefetch buffers
//!   while the prefetch partition's occupancy (pending + unused-ready
//!   fraction) is at or above [`AdmissionConfig::cache_high_water`].
//! * **Demand QoS** — with admission enabled the disk queues dispatch
//!   demand fetches first ([`rt_disk::Discipline::DemandPriority`]), and
//!   when a *bounded* queue rejects a demand read, a queued prefetch
//!   nobody waits on is cancelled to make room; only if none exists does
//!   the demand park until the device drains.
//!
//! Everything here is off by default ([`AdmissionConfig::off`]): a run
//! with admission disabled and no queue bound is event-for-event identical
//! to a build without this module.

use std::collections::VecDeque;

use rt_disk::{BlockId, ProcId};

/// Tuning for the prefetch admission controller. Disabled by default;
/// see [`AdmissionConfig::off`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch. When off, the daemon submits prefetches exactly as
    /// the paper's testbed does and none of the other fields are read.
    pub enabled: bool,
    /// Maximum prefetch I/Os in flight at once (the credit pool size).
    pub prefetch_credits: u32,
    /// Deny prefetch to a device whose queue already holds this many
    /// waiting requests.
    pub queue_high_water: u32,
    /// Deny prefetch-buffer reservation while the prefetch partition's
    /// occupancy is at or above this fraction (see
    /// [`rt_cache::PoolPressure::occupancy`]).
    pub cache_high_water: f64,
}

impl AdmissionConfig {
    /// Admission control disabled — the default for every stock
    /// configuration, preserving the paper's unthrottled daemon.
    pub fn off() -> Self {
        AdmissionConfig {
            enabled: false,
            prefetch_credits: 0,
            queue_high_water: 0,
            cache_high_water: 1.0,
        }
    }

    /// Admission control enabled with `prefetch_credits` credits and
    /// default watermarks: queue high water 2, cache high water 0.9.
    pub fn on(prefetch_credits: u32) -> Self {
        AdmissionConfig {
            enabled: true,
            prefetch_credits,
            queue_high_water: 2,
            cache_high_water: 0.9,
        }
    }
}

/// A demand fetch a bounded device queue rejected, waiting for the
/// device to drain. Replayed FIFO by the device's completion handler.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ParkedDemand {
    /// The file-level block the demand read wants.
    pub block: BlockId,
    /// The process charged with the fetch.
    pub who: ProcId,
    /// Which copy the rejected submission targeted (0 = primary).
    pub replica: u16,
}

/// Mutable admission/backpressure state of one run. Allocated only when
/// the configuration bounds queues or enables admission, so default runs
/// pay nothing beyond an `Option` check (the same discipline as the
/// fault layer's `FaultState`).
#[derive(Clone)]
pub(crate) struct AdmissionState {
    pub cfg: AdmissionConfig,
    /// Prefetch credits currently available (`cfg.prefetch_credits` at
    /// rest; one consumed per in-flight prefetch).
    pub credits: u32,
    /// Per-device FIFO of demand fetches a full queue turned away.
    pub parked: Vec<VecDeque<ParkedDemand>>,
}

impl AdmissionState {
    pub fn new(cfg: AdmissionConfig, disks: u16) -> Self {
        AdmissionState {
            credits: cfg.prefetch_credits,
            parked: vec![VecDeque::new(); disks as usize],
            cfg,
        }
    }

    /// Demand fetches currently parked across all devices.
    pub fn parked_total(&self) -> usize {
        self.parked.iter().map(VecDeque::len).sum()
    }
}

/// Why the admission controller denied a prefetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Deny {
    /// No prefetch credits left.
    Credits,
    /// The target device's queue is at or past the high-water mark.
    QueueDepth,
    /// The prefetch partition is at or past the cache high-water mark.
    CachePressure,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_reads_as_disabled() {
        let c = AdmissionConfig::off();
        assert!(!c.enabled);
        assert_eq!(c.prefetch_credits, 0);
    }

    #[test]
    fn on_config_carries_credits_and_watermarks() {
        let c = AdmissionConfig::on(8);
        assert!(c.enabled);
        assert_eq!(c.prefetch_credits, 8);
        assert!(c.queue_high_water > 0);
        assert!(c.cache_high_water > 0.0 && c.cache_high_water <= 1.0);
    }

    #[test]
    fn state_starts_full_and_empty() {
        let s = AdmissionState::new(AdmissionConfig::on(4), 3);
        assert_eq!(s.credits, 4);
        assert_eq!(s.parked.len(), 3);
        assert_eq!(s.parked_total(), 0);
    }
}
