//! Run metrics — every measure the paper's §IV-C enumerates.

use rt_sim::{Sampled, SimDuration, SimTime, Tally, Timeline};

/// Per-process measurements — the paper's Fig. 1(b) concern made
/// quantitative: when prefetching benefits distribute unevenly, fast
/// processes wait at barriers for slow ones and the average read time
/// stops predicting total time.
#[derive(Clone, Debug)]
pub struct ProcMetrics {
    /// This process's block read times.
    pub reads: Tally,
    /// Hits (ready + unready) this process received.
    pub hits: u64,
    /// Prefetch I/Os this node's daemon issued.
    pub prefetches_issued: u64,
    /// When this process finished its reference string.
    pub finish: SimTime,
}

/// All measurements from one experiment run.
///
/// Quantities map one-to-one onto §IV-C of the paper: overall completion
/// time, average block read time, average effective disk access time
/// (contention), blocks prefetched vs demand-fetched (hit ratio), the three
/// idle-time accounts, prefetch action lengths, and overrun.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Completion time of the whole computation (the last process's finish).
    pub total_time: SimDuration,
    /// Per-process finish times.
    pub proc_finish: Vec<SimTime>,
    /// Block read times (request to data-copied), over all reads.
    pub reads: Tally,
    /// Read-time sample reservoir for quantiles (p50/p95/p99); same
    /// population as `reads`.
    pub read_times: Sampled,
    /// Disk response-time samples (submission to completion, all fetch
    /// kinds) for quantiles; same population as `disk_response`.
    pub disk_response_times: Sampled,
    /// Cache hit ratio (ready + unready hits over all reads).
    pub hit_ratio: f64,
    /// Reads satisfied from a ready buffer.
    pub ready_hits: u64,
    /// Reads that found a pending buffer (hit-wait > 0 possible).
    pub unready_hits: u64,
    /// Reads that missed.
    pub misses: u64,
    /// Hit-wait times (zero for ready hits, positive for unready hits).
    pub hit_wait: Sampled,
    /// Disk response times (queue entry to completion), all requests.
    pub disk_response: Tally,
    /// Total disk operations.
    pub disk_ops: u64,
    /// Mean disk utilization over the run.
    pub disk_utilization: f64,
    /// Blocks fetched on demand.
    pub demand_fetches: u64,
    /// Blocks prefetched.
    pub prefetches: u64,
    /// Per-arrival synchronization waits (arrival to barrier-open).
    pub sync_wait: Tally,
    /// Number of barrier episodes completed.
    pub barriers: u64,
    /// Durations of prefetch actions (lock wait + work; no I/O wait).
    pub action_time: Tally,
    /// Prefetch actions that found no candidate or no buffer.
    pub failed_actions: u64,
    /// Overrun: prefetch activity extending past the moment the user
    /// process was logically able to resume.
    pub overrun: Tally,
    /// Logically necessary idle periods (wait begin to logical wake).
    pub idle_necessary: Tally,
    /// Actual idle periods (wait begin to actual resumption).
    pub idle_actual: Tally,
    /// Cache-lock waiting times (shared-structure contention).
    pub lock_wait: Tally,
    /// Demand allocations that had to spin because every candidate buffer
    /// was pinned by an in-flight copy. A retried miss can be satisfied by
    /// another process's fetch, so `misses - demand_fetches` is bounded by
    /// this count.
    pub alloc_retries: u64,
    /// Per-process breakdowns (benefit distribution).
    pub per_proc: Vec<ProcMetrics>,
    /// Prefetched-but-unused blocks held, over time.
    pub tl_prefetched: Timeline,
    /// Processes blocked at the barrier, over time.
    pub tl_barrier: Timeline,
    /// Disk requests in flight, over time.
    pub tl_outstanding_io: Timeline,
    /// Fault-injection counters; all zero when the run injected nothing.
    pub faults: FaultMetrics,
    /// Overload/backpressure counters; all zero (except the always-
    /// observed `max_queue_depth`) when queues are unbounded and
    /// admission is disabled.
    pub overload: OverloadMetrics,
    /// Data-integrity counters; all zero when no corruption is injected
    /// and the scrubber is off.
    pub integrity: IntegrityMetrics,
    /// Node-crash counters; all zero when no crashes are scheduled.
    pub crash: CrashMetrics,
    /// Tail-tolerance counters (hedges, retry budget, breakers); all
    /// zero when none of the tail layer is configured.
    pub tail: TailMetrics,
    /// Read-time samples of reads that waited on a hedge (their
    /// attribution carries a nonzero `hedge_wait`), for the hedged-read
    /// quantiles. Empty unless hedging fired.
    pub hedged_read_times: Sampled,
}

/// Counters from the tail-tolerance subsystem: hedged reads, the retry
/// token budget, and per-device circuit breakers. All zero when the
/// layer is unconfigured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TailMetrics {
    /// Duplicate fetches launched because the original was outstanding
    /// longer than the hedge delay.
    pub hedges_launched: u64,
    /// Hedges whose duplicate delivered the block first.
    pub hedge_wins: u64,
    /// Hedges whose original delivered first (the duplicate was wasted —
    /// cancelled while queued, or absorbed as a plain cache fill).
    pub hedge_wasted: u64,
    /// Hedge losers cancelled while still queued on their device (the
    /// rest of the losers complete and are absorbed as stale fills).
    pub hedge_cancels: u64,
    /// Timeout-retries and hedges denied by an exhausted retry budget
    /// (the read fell back to patient single-copy waiting).
    pub retries_denied: u64,
    /// Tokens the budget actually granted to retries and hedges; bounded
    /// by `capacity + refill * successful completions` by construction.
    pub budget_spent: u64,
    /// Closed→open breaker transitions across all devices (half-open
    /// strikes count as new episodes).
    pub breaker_opens: u64,
    /// Successful half-open probes across all devices.
    pub probe_successes: u64,
    /// Waiter deliveries that would have been duplicates (a waiter woken
    /// twice for one read). The hedging layer asserts exactly-once
    /// delivery; the bench validator rejects any run where this is not
    /// zero.
    pub duplicate_deliveries: u64,
}

/// Counters from the fault-injection subsystem: what went wrong and how
/// the read path and prefetch daemon coped. All zero in fault-free runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Disk completions that carried an error.
    pub io_errors: u64,
    /// Resubmissions of failed or stuck reads.
    pub retries: u64,
    /// Retry rounds past the policy's `max_retries` bound (the read kept
    /// retrying at the capped backoff; a persistently non-zero count
    /// means a device never came back and no replica could absorb it).
    pub retries_exhausted: u64,
    /// Demand reads whose per-request timeout fired.
    pub timeouts: u64,
    /// Resubmissions that targeted a replica instead of the primary.
    pub redirects: u64,
    /// Failed prefetches that were dropped rather than retried (nobody
    /// was waiting for the block).
    pub aborted_prefetches: u64,
    /// Prefetch actions skipped because the target device was degraded.
    pub degraded_skips: u64,
    /// Completions (or retry timers) that arrived after the block was
    /// already delivered by a redirected duplicate.
    pub stale_completions: u64,
    /// Healthy→degraded transitions across all devices.
    pub degraded_intervals: u64,
    /// Total simulated time devices spent classified as degraded.
    pub degraded_time: SimDuration,
}

/// Counters from the overload/backpressure subsystem: how bounded device
/// queues and the prefetch admission controller shaped traffic. All zero
/// (except `max_queue_depth`) for runs with unbounded queues and
/// admission disabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverloadMetrics {
    /// Queued prefetches cancelled to make room for demand reads, plus
    /// prefetch submissions a full queue rejected outright.
    pub prefetches_shed: u64,
    /// Prefetches the admission controller refused to issue (no credits,
    /// queue high water, or cache pressure).
    pub prefetches_throttled: u64,
    /// Demand reads a full queue turned away that had to wait for the
    /// device to drain (no queued prefetch could be shed for them).
    pub demand_parked: u64,
    /// Demand reads that queued behind at least one prefetch (priority
    /// inversion; only counted while the overload layer is active).
    pub demand_behind_prefetch: u64,
    /// Prefetch denials due specifically to the cache high-water mark.
    pub cache_high_water_hits: u64,
    /// Deepest any device queue ever got (waiting requests only).
    pub max_queue_depth: u64,
}

/// Counters from the end-to-end data-integrity subsystem: silent
/// corruption injected below, checksum verification and read-repair in
/// the middle, the idle-time scrubber and device quarantine on top. All
/// zero when no corrupt windows are scheduled and the scrubber is off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntegrityMetrics {
    /// `Ok` completions that carried a corrupt payload (as injected by
    /// the device layer — includes scrub reads).
    pub corruptions: u64,
    /// Corrupt fills caught by checksum verification at cache fill.
    pub detections: u64,
    /// Read-repairs: corrupt fills re-fetched from a healthy replica and
    /// delivered clean.
    pub repairs: u64,
    /// Repair rewrites (clean payload written back over a corrupt copy)
    /// that completed.
    pub rewrites: u64,
    /// Scrub reads completed by the idle-time scrubber.
    pub scrubbed: u64,
    /// Corrupt payloads the scrubber caught ahead of demand.
    pub scrub_detections: u64,
    /// Blocks poisoned: every copy was corrupt, so no clean payload
    /// exists to deliver or rewrite.
    pub poisoned_blocks: u64,
    /// User reads completed with a typed integrity error (poisoned
    /// block) instead of data.
    pub failed_reads: u64,
    /// Corrupt blocks delivered to a waiter as if clean. The whole
    /// subsystem exists to keep this at zero; the bench validator and
    /// the soak invariant both reject any run where it is not.
    pub corrupt_delivered: u64,
    /// Healthy→quarantined transitions across all devices.
    pub quarantines: u64,
    /// Total simulated time devices spent quarantined or on probation.
    pub quarantined_time: SimDuration,
}

/// Counters from the node-crash fault model: what the machine lost to
/// crashed processors and what the survivors reclaimed or took over. All
/// zero when the run schedules no crashes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashMetrics {
    /// Node crashes injected.
    pub crashes: u64,
    /// Crashed nodes that rejoined the computation.
    pub rejoins: u64,
    /// In-flight disk completions whose initiating node was dead on
    /// arrival; absorbed as cache fills instead of read deliveries.
    pub orphaned_ios: u64,
    /// Cache-lock critical sections reclaimed from crashed holders
    /// (whether by pulling back the lock's tail or by letting the lease
    /// lapse).
    pub reclaimed_locks: u64,
    /// Buffer pins released on behalf of crashed processes.
    pub reclaimed_pins: u64,
    /// Waiter-table entries removed because the waiting process crashed.
    pub reclaimed_waiters: u64,
    /// Prefetch actions a surviving daemon performed on behalf of a dead
    /// node's reference string.
    pub redistributed_prefetches: u64,
    /// Reads a crash cut short: consumed from the reference string but
    /// never completed (the survivors' reads all complete; these are the
    /// victims' own in-progress reads).
    pub lost_reads: u64,
}

impl RunMetrics {
    /// Miss ratio (`1 - hit_ratio`).
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.hit_ratio
    }

    /// Total reads performed.
    pub fn total_reads(&self) -> u64 {
        self.reads.count()
    }

    /// Mean block read time in milliseconds.
    pub fn mean_read_ms(&self) -> f64 {
        self.reads.mean_millis()
    }

    /// Mean disk response time in milliseconds.
    pub fn mean_disk_response_ms(&self) -> f64 {
        self.disk_response.mean_millis()
    }

    /// Mean hit-wait in milliseconds, over all hits.
    pub fn mean_hit_wait_ms(&self) -> f64 {
        self.hit_wait.tally().mean_millis()
    }

    /// Read-time quantile in milliseconds (`q` in `[0, 1]`); 0.0 when no
    /// reads were recorded.
    pub fn read_quantile_ms(&self, q: f64) -> f64 {
        self.read_times
            .quantile(q)
            .map_or(0.0, |d| d.as_millis_f64())
    }

    /// Hit-wait quantile in milliseconds; 0.0 when no hits were recorded.
    pub fn hit_wait_quantile_ms(&self, q: f64) -> f64 {
        self.hit_wait.quantile(q).map_or(0.0, |d| d.as_millis_f64())
    }

    /// Disk response-time quantile in milliseconds; 0.0 when the run did
    /// no disk I/O.
    pub fn disk_response_quantile_ms(&self, q: f64) -> f64 {
        self.disk_response_times
            .quantile(q)
            .map_or(0.0, |d| d.as_millis_f64())
    }

    /// Hedged-read-time quantile in milliseconds; 0.0 when no read ever
    /// waited on a hedge.
    pub fn hedged_read_quantile_ms(&self, q: f64) -> f64 {
        self.hedged_read_times
            .quantile(q)
            .map_or(0.0, |d| d.as_millis_f64())
    }

    /// Fraction of all reads served by *ready* hits.
    pub fn ready_fraction(&self) -> f64 {
        if self.total_reads() == 0 {
            0.0
        } else {
            self.ready_hits as f64 / self.total_reads() as f64
        }
    }

    /// Fraction of all reads served by *unready* hits.
    pub fn unready_fraction(&self) -> f64 {
        if self.total_reads() == 0 {
            0.0
        } else {
            self.unready_hits as f64 / self.total_reads() as f64
        }
    }

    /// Completion-time skew across processes: latest minus earliest finish.
    /// Large skew indicates unevenly distributed prefetching benefit —
    /// the paper's explanation for the `lfp` slowdowns.
    pub fn finish_skew(&self) -> SimDuration {
        match (self.proc_finish.iter().min(), self.proc_finish.iter().max()) {
            (Some(&min), Some(&max)) => max - min,
            _ => SimDuration::ZERO,
        }
    }

    /// Coefficient of variation (σ/μ) of the per-process *mean read
    /// times*: 0 when prefetching's benefit is evenly distributed, larger
    /// as some processes enjoy fast reads while others pay full price —
    /// the quantity behind Fig. 1(b).
    pub fn read_time_imbalance(&self) -> f64 {
        let means: Vec<f64> = self
            .per_proc
            .iter()
            .filter(|p| p.reads.count() > 0)
            .map(|p| p.reads.mean_millis())
            .collect();
        coefficient_of_variation(&means)
    }

    /// Coefficient of variation of the per-process hit counts.
    pub fn hit_imbalance(&self) -> f64 {
        let hits: Vec<f64> = self.per_proc.iter().map(|p| p.hits as f64).collect();
        coefficient_of_variation(&hits)
    }
}

/// σ/μ of a sample; 0 for empty or zero-mean samples.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Relative improvement of `with` over `base` for a scalar metric:
/// `(base - with) / base`, positive when `with` is better (smaller).
pub fn improvement(base: f64, with: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - with) / base
    }
}

/// Convenience pair of a base (no-prefetch) and prefetch run over the same
/// configuration, with the comparative quantities the paper plots.
#[derive(Clone, Debug)]
pub struct RunPair {
    /// Short label (pattern/sync/compute).
    pub label: String,
    /// The run without prefetching.
    pub base: RunMetrics,
    /// The run with prefetching.
    pub prefetch: RunMetrics,
}

impl RunPair {
    /// Fractional reduction in mean block read time (Fig. 3 / Fig. 10 axis).
    pub fn read_time_improvement(&self) -> f64 {
        improvement(self.base.mean_read_ms(), self.prefetch.mean_read_ms())
    }

    /// Fractional reduction in total execution time (Fig. 8 / Fig. 10).
    pub fn total_time_improvement(&self) -> f64 {
        improvement(
            self.base.total_time.as_millis_f64(),
            self.prefetch.total_time.as_millis_f64(),
        )
    }

    /// Change in mean disk response time (negative = worsened; Fig. 7).
    pub fn disk_response_improvement(&self) -> f64 {
        improvement(
            self.base.mean_disk_response_ms(),
            self.prefetch.mean_disk_response_ms(),
        )
    }

    /// Change in mean synchronization wait (negative = lengthened; Fig. 9).
    pub fn sync_wait_improvement(&self) -> f64 {
        improvement(
            self.base.sync_wait.mean_millis(),
            self.prefetch.sync_wait.mean_millis(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_metrics(read_ms: f64, total_ms: u64) -> RunMetrics {
        let mut reads = Tally::new();
        reads.record(SimDuration::from_millis_f64(read_ms));
        RunMetrics {
            total_time: SimDuration::from_millis(total_ms),
            proc_finish: vec![
                SimTime::ZERO + SimDuration::from_millis(total_ms - 5),
                SimTime::ZERO + SimDuration::from_millis(total_ms),
            ],
            reads,
            read_times: Sampled::new(),
            disk_response_times: Sampled::new(),
            hit_ratio: 0.8,
            ready_hits: 6,
            unready_hits: 2,
            misses: 2,
            hit_wait: Sampled::new(),
            disk_response: Tally::new(),
            disk_ops: 10,
            disk_utilization: 0.5,
            demand_fetches: 2,
            prefetches: 8,
            sync_wait: Tally::new(),
            barriers: 4,
            action_time: Tally::new(),
            failed_actions: 1,
            overrun: Tally::new(),
            idle_necessary: Tally::new(),
            idle_actual: Tally::new(),
            lock_wait: Tally::new(),
            alloc_retries: 0,
            per_proc: Vec::new(),
            tl_prefetched: Timeline::new(),
            tl_barrier: Timeline::new(),
            tl_outstanding_io: Timeline::new(),
            faults: FaultMetrics::default(),
            overload: OverloadMetrics::default(),
            integrity: IntegrityMetrics::default(),
            crash: CrashMetrics::default(),
            tail: TailMetrics::default(),
            hedged_read_times: Sampled::new(),
        }
    }

    #[test]
    fn ratios_and_fractions() {
        let mut m = dummy_metrics(10.0, 100);
        m.reads = Tally::new();
        for _ in 0..10 {
            m.reads.record(SimDuration::from_millis(10));
        }
        assert!((m.miss_ratio() - 0.2).abs() < 1e-9);
        assert!((m.ready_fraction() - 0.6).abs() < 1e-9);
        assert!((m.unready_fraction() - 0.2).abs() < 1e-9);
        assert_eq!(m.total_reads(), 10);
    }

    #[test]
    fn finish_skew() {
        let m = dummy_metrics(10.0, 100);
        assert_eq!(m.finish_skew(), SimDuration::from_millis(5));
    }

    #[test]
    fn imbalance_measures() {
        let mut m = dummy_metrics(10.0, 100);
        let mk = |ms: u64, hits: u64| {
            let mut reads = Tally::new();
            reads.record(SimDuration::from_millis(ms));
            ProcMetrics {
                reads,
                hits,
                prefetches_issued: 0,
                finish: SimTime::ZERO,
            }
        };
        m.per_proc = vec![mk(10, 5), mk(10, 5)];
        assert!(m.read_time_imbalance() < 1e-9, "equal procs, no imbalance");
        assert!(m.hit_imbalance() < 1e-9);
        m.per_proc = vec![mk(5, 9), mk(15, 1)];
        assert!(m.read_time_imbalance() > 0.4);
        assert!(m.hit_imbalance() > 0.7);
    }

    #[test]
    fn cv_edge_cases() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        assert!((coefficient_of_variation(&[1.0, 1.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement(100.0, 50.0) - 0.5).abs() < 1e-9);
        assert!(improvement(100.0, 150.0) < 0.0);
        assert_eq!(improvement(0.0, 10.0), 0.0);
    }

    #[test]
    fn pair_improvements() {
        let pair = RunPair {
            label: "gw".into(),
            base: dummy_metrics(30.0, 200),
            prefetch: dummy_metrics(15.0, 150),
        };
        assert!((pair.read_time_improvement() - 0.5).abs() < 1e-9);
        assert!((pair.total_time_improvement() - 0.25).abs() < 1e-9);
    }
}
