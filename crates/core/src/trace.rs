//! Access-trace recording and off-line analysis.
//!
//! §IV-C: "the performance of the system is measured both with and without
//! prefetching and **the exact access pattern is recorded for off-line
//! analysis of prefetching strategies**". This module is that facility: a
//! [`Trace`] records every read in request order with its outcome, and the
//! analyses answer the questions the paper asks of such traces — how
//! sequential the merged (global) reference string really is, how
//! sequential each process's own stream is, how much interprocess sharing
//! a pattern has, and what hit ratio a candidate on-line strategy *would*
//! have achieved on this exact run ([`replay_obl`]).

use std::collections::HashMap;

use rt_disk::{BlockId, ProcId};
use rt_obs::ReadAttribution;
use rt_sim::{SimDuration, SimTime};

/// How a recorded read was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Data was present and ready.
    ReadyHit,
    /// A buffer existed but its I/O was still in flight.
    UnreadyHit,
    /// The block had to be demand-fetched.
    Miss,
    /// The read returned a typed integrity error (poisoned block); no
    /// data was delivered. Never recorded unless the run injects
    /// corruption.
    Failed,
}

/// One read, as recorded when it completed.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// When the read was *requested* (defines the reference-string order).
    pub requested: SimTime,
    /// When the read returned.
    pub completed: SimTime,
    /// The requesting process.
    pub proc: ProcId,
    /// The block read.
    pub block: BlockId,
    /// How the cache served it.
    pub outcome: ReadOutcome,
    /// Where the read's latency went, by component. The components sum
    /// exactly to [`TraceEvent::read_time`] (enforced at record time).
    pub attr: ReadAttribution,
}

impl TraceEvent {
    /// The block read time of this event.
    pub fn read_time(&self) -> SimDuration {
        self.completed.saturating_since(self.requested)
    }
}

/// The full access trace of one run, in completion order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append one completed read.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, in completion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded reads.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The merged reference string: blocks ordered by *request* time (ties
    /// broken by completion order, which is deterministic).
    pub fn merged_reference_string(&self) -> Vec<BlockId> {
        let mut order: Vec<&TraceEvent> = self.events.iter().collect();
        order.sort_by_key(|e| e.requested);
        order.iter().map(|e| e.block).collect()
    }

    /// Per-process reference strings, ordered by request time.
    pub fn per_process_strings(&self) -> HashMap<ProcId, Vec<BlockId>> {
        let mut order: Vec<&TraceEvent> = self.events.iter().collect();
        order.sort_by_key(|e| e.requested);
        let mut map: HashMap<ProcId, Vec<BlockId>> = HashMap::new();
        for e in order {
            map.entry(e.proc).or_default().push(e.block);
        }
        map
    }

    /// Fraction of successive accesses in `string` that are exactly the
    /// successor block of their predecessor — the paper's notion of a
    /// (roughly) sequential pattern.
    pub fn sequentiality(string: &[BlockId]) -> f64 {
        if string.len() < 2 {
            return 1.0;
        }
        let seq = string
            .windows(2)
            .filter(|w| w[1].0 == w[0].0.wrapping_add(1))
            .count();
        seq as f64 / (string.len() - 1) as f64
    }

    /// Sequentiality of the merged (global) reference string.
    pub fn global_sequentiality(&self) -> f64 {
        Self::sequentiality(&self.merged_reference_string())
    }

    /// Mean sequentiality across the per-process strings.
    pub fn mean_local_sequentiality(&self) -> f64 {
        let strings = self.per_process_strings();
        if strings.is_empty() {
            return 1.0;
        }
        strings
            .values()
            .map(|s| Self::sequentiality(s))
            .sum::<f64>()
            / strings.len() as f64
    }

    /// Lengths of maximal sequential runs in `string` (the paper's
    /// "portions", as observable from the outside).
    pub fn run_lengths(string: &[BlockId]) -> Vec<u32> {
        let mut runs = Vec::new();
        let mut current = 0u32;
        for (i, b) in string.iter().enumerate() {
            if i == 0 || b.0 != string[i - 1].0.wrapping_add(1) {
                if current > 0 {
                    runs.push(current);
                }
                current = 1;
            } else {
                current += 1;
            }
        }
        if current > 0 {
            runs.push(current);
        }
        runs
    }

    /// Fraction of distinct blocks read by more than one process —
    /// the interprocess overlap that distinguishes `lw` from the disjoint
    /// patterns.
    pub fn overlap_fraction(&self) -> f64 {
        // Count per distinct (block, proc) pair rather than raw reads.
        let mut per_block: HashMap<BlockId, std::collections::HashSet<ProcId>> = HashMap::new();
        for e in &self.events {
            per_block.entry(e.block).or_default().insert(e.proc);
        }
        if per_block.is_empty() {
            return 0.0;
        }
        let shared = per_block.values().filter(|s| s.len() > 1).count();
        shared as f64 / per_block.len() as f64
    }

    /// Hit ratio by outcome, as actually observed.
    pub fn observed_hit_ratio(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let hits = self
            .events
            .iter()
            .filter(|e| matches!(e.outcome, ReadOutcome::ReadyHit | ReadOutcome::UnreadyHit))
            .count();
        hits as f64 / self.events.len() as f64
    }
}

/// Off-line replay: what hit ratio would a one-block-lookahead prefetcher
/// with `bufs` prefetch buffers per process have achieved on this trace?
///
/// The replay walks the merged reference string; after each access by a
/// process, its OBL predictor marks the successor block as prefetched
/// (bounded by a per-process FIFO window of `bufs` outstanding
/// predictions). An access hits if its block is currently predicted — by
/// any process when `shared` is true (prefetches land in the shared
/// cache), by the accessing process alone otherwise — or was one of the
/// `window` most recent accesses (the residual demand cache).
///
/// Note the shared replay is *timeless*: on a global pattern the successor
/// block is demanded almost immediately by a neighbouring process, so a
/// real system would see an unready hit at best. The gap between
/// `replay_obl(.., shared = true)` and the measured read times is
/// precisely the paper's warning that hit ratios are an optimistic
/// measure.
pub fn replay_obl(trace: &Trace, bufs: usize, window: usize, shared: bool) -> f64 {
    let mut order: Vec<&TraceEvent> = trace.events.iter().collect();
    order.sort_by_key(|e| e.requested);
    if order.is_empty() {
        return 0.0;
    }

    let mut predicted: HashMap<ProcId, std::collections::VecDeque<BlockId>> = HashMap::new();
    let mut recent: std::collections::VecDeque<BlockId> = std::collections::VecDeque::new();
    let mut hits = 0usize;

    for e in &order {
        let is_predicted = if shared {
            predicted.values().any(|q| q.contains(&e.block))
        } else {
            predicted.get(&e.proc).is_some_and(|q| q.contains(&e.block))
        };
        let is_recent = recent.contains(&e.block);
        if is_predicted || is_recent {
            hits += 1;
        }
        // The process's OBL now predicts the successor.
        let q = predicted.entry(e.proc).or_default();
        q.push_back(BlockId(e.block.0 + 1));
        while q.len() > bufs {
            q.pop_front();
        }
        recent.push_back(e.block);
        while recent.len() > window {
            recent.pop_front();
        }
    }
    hits as f64 / order.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(req_ns: u64, proc: u16, block: u32, outcome: ReadOutcome) -> TraceEvent {
        TraceEvent {
            requested: SimTime::from_nanos(req_ns),
            completed: SimTime::from_nanos(req_ns + 100),
            proc: ProcId(proc),
            block: BlockId(block),
            outcome,
            attr: ReadAttribution::default(),
        }
    }

    #[test]
    fn merged_string_orders_by_request_time() {
        let mut t = Trace::new();
        t.record(ev(30, 0, 3, ReadOutcome::Miss));
        t.record(ev(10, 1, 1, ReadOutcome::Miss));
        t.record(ev(20, 0, 2, ReadOutcome::Miss));
        assert_eq!(
            t.merged_reference_string(),
            vec![BlockId(1), BlockId(2), BlockId(3)]
        );
    }

    #[test]
    fn sequentiality_measures() {
        assert_eq!(
            Trace::sequentiality(&[BlockId(0), BlockId(1), BlockId(2)]),
            1.0
        );
        assert_eq!(
            Trace::sequentiality(&[BlockId(0), BlockId(5), BlockId(6)]),
            0.5
        );
        assert_eq!(Trace::sequentiality(&[BlockId(9)]), 1.0);
    }

    #[test]
    fn gw_style_trace_is_globally_but_not_locally_sequential() {
        let mut t = Trace::new();
        // Two procs alternate consecutive blocks.
        for i in 0..10u32 {
            t.record(ev(i as u64 * 10, (i % 2) as u16, i, ReadOutcome::Miss));
        }
        assert_eq!(t.global_sequentiality(), 1.0);
        // Locally each proc strides by 2: zero sequentiality.
        assert_eq!(t.mean_local_sequentiality(), 0.0);
        assert_eq!(t.overlap_fraction(), 0.0);
    }

    #[test]
    fn lw_style_trace_overlaps_fully() {
        let mut t = Trace::new();
        for p in 0..2u16 {
            for i in 0..5u32 {
                t.record(ev((p as u64) + i as u64 * 10, p, i, ReadOutcome::ReadyHit));
            }
        }
        assert_eq!(t.overlap_fraction(), 1.0);
        assert!(t.mean_local_sequentiality() > 0.99);
    }

    #[test]
    fn run_lengths_split_at_jumps() {
        let s = [
            BlockId(0),
            BlockId(1),
            BlockId(5),
            BlockId(6),
            BlockId(7),
            BlockId(20),
        ];
        assert_eq!(Trace::run_lengths(&s), vec![2, 3, 1]);
        assert_eq!(Trace::run_lengths(&[]), Vec::<u32>::new());
    }

    #[test]
    fn observed_hit_ratio_counts_unready() {
        let mut t = Trace::new();
        t.record(ev(0, 0, 0, ReadOutcome::Miss));
        t.record(ev(1, 0, 1, ReadOutcome::UnreadyHit));
        t.record(ev(2, 0, 2, ReadOutcome::ReadyHit));
        t.record(ev(3, 0, 3, ReadOutcome::ReadyHit));
        assert!((t.observed_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn replay_obl_tracks_local_sequential_stream() {
        let mut t = Trace::new();
        // One proc reads 0..20 sequentially: OBL predicts all but block 0.
        for i in 0..20u32 {
            t.record(ev(i as u64 * 10, 0, i, ReadOutcome::Miss));
        }
        let hit = replay_obl(&t, 3, 0, false);
        assert!((hit - 19.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn replay_obl_unshared_fails_on_global_stream() {
        let mut t = Trace::new();
        // Twenty procs round-robin consecutive blocks: each proc's local
        // stride is 20, so its own OBL predictions never serve it.
        for i in 0..100u32 {
            t.record(ev(i as u64 * 10, (i % 20) as u16, i, ReadOutcome::Miss));
        }
        assert_eq!(replay_obl(&t, 3, 0, false), 0.0);
        // The *shared* replay looks excellent on the same trace — the
        // timeless optimism the paper warns about (the successor would be
        // demanded before its prefetch completes).
        assert!(replay_obl(&t, 3, 0, true) > 0.9);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.observed_hit_ratio(), 0.0);
        assert_eq!(t.overlap_fraction(), 0.0);
        assert_eq!(replay_obl(&t, 3, 0, true), 0.0);
    }
}
