//! Report formatting: the tables and summary statistics the benchmark
//! harness prints for each reproduced figure.

use crate::metrics::{RunMetrics, RunPair};

/// Median of a sample (by value); 0 when empty.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Fraction of values at or above `threshold`.
pub fn fraction_at_least(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v >= threshold).count() as f64 / values.len() as f64
}

/// A plain-text table with aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// The per-pair scatter row used by Figs. 3, 7, 8, 9: label, base value,
/// prefetch value, improvement.
pub fn scatter_table(
    pairs: &[RunPair],
    metric_name: &str,
    base_of: impl Fn(&RunPair) -> f64,
    with_of: impl Fn(&RunPair) -> f64,
) -> Table {
    let mut t = Table::new(&[
        "experiment",
        &format!("{metric_name} (no prefetch)"),
        &format!("{metric_name} (prefetch)"),
        "improvement %",
    ]);
    for p in pairs {
        let base = base_of(p);
        let with = with_of(p);
        let imp = if base != 0.0 {
            (base - with) / base * 100.0
        } else {
            0.0
        };
        t.row(&[
            p.label.clone(),
            format!("{base:.2}"),
            format!("{with:.2}"),
            format!("{imp:+.1}"),
        ]);
    }
    t
}

/// A `p50/p95/p99` cell from one of [`RunMetrics`]' quantile accessors,
/// in milliseconds.
pub fn quantile_cell(m: &RunMetrics, q: fn(&RunMetrics, f64) -> f64) -> String {
    format!("{:.2}/{:.2}/{:.2}", q(m, 0.50), q(m, 0.95), q(m, 0.99))
}

/// Tail-latency table: one row per labeled run, showing p50/p95/p99 of
/// block read time, hit-wait, and disk response time. Means hide the
/// paper's Fig. 1(b) concern — a few slow reads stall everyone at the
/// next barrier — so reports pair every mean with its tail.
pub fn quantile_table(rows: &[(&str, &RunMetrics)]) -> Table {
    let mut t = Table::new(&[
        "run",
        "read p50/p95/p99 (ms)",
        "hit-wait p50/p95/p99 (ms)",
        "disk resp p50/p95/p99 (ms)",
        "hedged p50/p95/p99 (ms)",
    ]);
    for (label, m) in rows {
        t.row(&[
            label.to_string(),
            quantile_cell(m, RunMetrics::read_quantile_ms),
            quantile_cell(m, RunMetrics::hit_wait_quantile_ms),
            quantile_cell(m, RunMetrics::disk_response_quantile_ms),
            quantile_cell(m, RunMetrics::hedged_read_quantile_ms),
        ]);
    }
    t
}

/// Tail-tolerance table: one row per labeled run, showing the hedging,
/// retry-budget, and circuit-breaker counters — hedges launched and how
/// they resolved (win, wasted, cancelled), retries the budget denied and
/// tokens it spent, and breaker open/probe transitions.
pub fn tail_table(rows: &[(&str, &RunMetrics)]) -> Table {
    let mut t = Table::new(&[
        "run", "hedges", "wins", "wasted", "cancels", "denied", "spent", "opens", "probes",
    ]);
    for (label, m) in rows {
        let c = &m.tail;
        t.row(&[
            label.to_string(),
            c.hedges_launched.to_string(),
            c.hedge_wins.to_string(),
            c.hedge_wasted.to_string(),
            c.hedge_cancels.to_string(),
            c.retries_denied.to_string(),
            c.budget_spent.to_string(),
            c.breaker_opens.to_string(),
            c.probe_successes.to_string(),
        ]);
    }
    t
}

/// Crash-fault table: one row per labeled run, showing the node-crash
/// counters — injections, rejoins, lost reads, what was reclaimed from
/// the victims (locks, pins, waiter slots), orphaned I/Os absorbed as
/// fills, and prefetches survivors issued on a dead node's behalf.
pub fn crash_table(rows: &[(&str, &RunMetrics)]) -> Table {
    let mut t = Table::new(&[
        "run",
        "crashes",
        "rejoins",
        "lost reads",
        "locks",
        "pins",
        "waiters",
        "orphaned io",
        "failover pf",
    ]);
    for (label, m) in rows {
        let c = &m.crash;
        t.row(&[
            label.to_string(),
            c.crashes.to_string(),
            c.rejoins.to_string(),
            c.lost_reads.to_string(),
            c.reclaimed_locks.to_string(),
            c.reclaimed_pins.to_string(),
            c.reclaimed_waiters.to_string(),
            c.orphaned_ios.to_string(),
            c.redistributed_prefetches.to_string(),
        ]);
    }
    t
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn fraction_threshold() {
        let v = [0.1, 0.4, 0.5, 0.9];
        assert!((fraction_at_least(&v, 0.4) - 0.75).abs() < 1e-9);
        assert_eq!(fraction_at_least(&[], 0.1), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.4821), "48.2%");
    }

    #[test]
    fn crash_table_from_run() {
        use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
        use rt_sim::SimTime;
        let mut cfg =
            crate::ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 100,
            total_reads: 100,
            ..WorkloadParams::paper()
        };
        cfg.faults.crashes.push(crate::faults::CrashSpec {
            node: 1,
            at: SimTime::from_nanos(20_000_000),
            rejoin: None,
        });
        let m = crate::experiment::run_experiment(&cfg);
        assert_eq!(m.crash.crashes, 1);
        let s = crash_table(&[("one-crash", &m)]).render();
        assert!(s.contains("crashes"));
        assert!(s.contains("failover pf"));
        let data = s.lines().nth(2).unwrap();
        assert!(data.starts_with(" one-crash") || data.contains("one-crash"));
        assert!(data.contains('1'), "{data}");
    }

    #[test]
    fn tail_table_from_run() {
        use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
        use rt_sim::SimDuration;
        let mut cfg =
            crate::ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 100,
            total_reads: 100,
            ..WorkloadParams::paper()
        };
        cfg.faults.replicas = 1;
        cfg.faults.retry.timeout = Some(SimDuration::from_millis(150));
        cfg.faults.hedge.delay = Some(SimDuration::from_millis(40));
        crate::faults::parse_fault_spec(&mut cfg.faults.plan, "straggler:0:x8").unwrap();
        let m = crate::experiment::run_experiment(&cfg);
        assert!(m.tail.hedges_launched > 0);
        let s = tail_table(&[("straggled", &m)]).render();
        assert!(s.contains("hedges"));
        assert!(s.contains("straggled"));
        let data = s.lines().nth(2).unwrap();
        assert!(data.contains(&m.tail.hedges_launched.to_string()), "{data}");
    }

    #[test]
    fn quantile_table_from_run() {
        use rt_patterns::{AccessPattern, SyncStyle, WorkloadParams};
        let mut cfg =
            crate::ExperimentConfig::paper_default(AccessPattern::GlobalWholeFile, SyncStyle::None);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 100,
            total_reads: 100,
            ..WorkloadParams::paper()
        };
        let m = crate::experiment::run_experiment(&cfg);
        let s = quantile_table(&[("gw", &m)]).render();
        assert!(s.contains("read p50/p95/p99"));
        assert!(s.contains("gw"));
        // Quantiles come from a real reservoir: positive and monotone.
        assert!(m.read_quantile_ms(0.99) > 0.0);
        assert!(m.read_quantile_ms(0.50) <= m.read_quantile_ms(0.99));
        assert!(m.disk_response_quantile_ms(0.50) <= m.disk_response_quantile_ms(0.99));
    }
}
