//! Fault-injection configuration for experiments.
//!
//! The disk layer ([`rt_disk::fault`]) knows how to corrupt individual
//! device service: slow it down, fail it transiently, or take it offline.
//! This module holds the *experiment-level* view: which faults a run
//! injects ([`FaultConfig::plan`]), how the read path reacts
//! ([`RetryPolicy`]), when the prefetch daemon backs off a sick device
//! ([`DegradeConfig`]), the node-crash schedule ([`FaultConfig::crashes`]
//! — crashes kill a *processor*, not a device, and are injected by the
//! world), and the `--faults` CLI grammar that describes scenarios
//! compactly (`straggler:7:x4`, `fail:3@5s`, `crash:3@5s:rejoin@12s`).
//!
//! Everything here is deterministic: fault decisions draw from dedicated
//! RNG streams split off the experiment seed, so a given `(config, seed)`
//! pair is byte-reproducible — and an *empty* plan leaves every RNG
//! stream and event untouched, producing runs identical to a build
//! without the fault layer at all.

use rt_disk::FaultPlan;
use rt_sim::{SimDuration, SimTime};
use std::fmt;

/// How the read path reacts to failed or stuck I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Resubmissions before a read is counted as exhausted. Demand reads
    /// are *never* abandoned — past this bound they keep retrying at the
    /// capped backoff, but each round increments the `retries_exhausted`
    /// counter so the report shows the pathology.
    pub max_retries: u32,
    /// Base delay before the first resubmission; doubles per attempt
    /// (capped at 64x) to model driver backoff.
    pub backoff: SimDuration,
    /// Optional per-request timeout: if a demand fetch has not completed
    /// this long after issue, the read path declares it stuck and
    /// redirects to a replica (when one exists). `None` disables timeout
    /// events entirely — no timer events are ever scheduled, keeping the
    /// no-fault event stream untouched.
    pub timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff: SimDuration::from_millis(5),
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before resubmission number `attempt` (0-based): base
    /// doubled per attempt, capped at 64x so exhausted reads keep probing
    /// at a bounded rate rather than stalling geometrically.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let shift = attempt.min(6);
        SimDuration::from_nanos(self.backoff.as_nanos().saturating_mul(1 << shift))
    }
}

/// When the prefetch daemon gives up on a device.
///
/// Per-device health is an exponentially weighted moving average of error
/// outcomes and service times (see `health`). A device whose error EWMA
/// crosses [`DegradeConfig::error_threshold`], or whose latency EWMA
/// exceeds [`DegradeConfig::latency_factor`] times the fleet mean, is
/// *degraded*: the daemon skips prefetches that would land on it, leaving
/// its queue to demand fetches only. Recovery uses a tighter bound
/// (scaled by [`DegradeConfig::recover_margin`]) for hysteresis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeConfig {
    /// Master switch: when false, health is still tracked (for the
    /// report) but the daemon never skips a device.
    pub enabled: bool,
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    /// Error-rate EWMA above this marks the device degraded.
    pub error_threshold: f64,
    /// Latency EWMA beyond this multiple of the fleet mean marks the
    /// device degraded.
    pub latency_factor: f64,
    /// Recovery hysteresis in (0, 1]: a degraded device recovers only
    /// once its error EWMA falls below `error_threshold * recover_margin`
    /// and its latency falls below the proportionally tightened latency
    /// bound.
    pub recover_margin: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: true,
            alpha: 0.3,
            error_threshold: 0.5,
            latency_factor: 2.0,
            recover_margin: 0.5,
        }
    }
}

/// Hedged-read configuration: when a demand fetch of a replicated block
/// has been outstanding longer than the hedge delay, a duplicate fetch is
/// launched against the next healthy replica and the first completion
/// wins. Inert by default — with [`HedgeConfig::delay`] unset no hedge
/// timers are ever armed and the event stream is untouched.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Fixed fallback hedge delay. `None` disables hedging entirely.
    /// When the serving device's latency EWMA has enough samples to be
    /// trusted, the *adaptive* delay `multiplier * latency_ewma` is used
    /// instead of this fixed value.
    pub delay: Option<SimDuration>,
    /// Multiplier over the primary device's service-latency EWMA for the
    /// adaptive delay. Must be > 1.0 — hedging below the typical service
    /// time would duplicate nearly every fetch.
    pub multiplier: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            delay: None,
            multiplier: 2.0,
        }
    }
}

/// Retry-budget token bucket: every timeout-redirect and every hedge
/// launch costs one token; each successful completion refills
/// [`RetryBudgetConfig::refill`] of a token (capped at the capacity). An
/// empty bucket denies the retry — the read falls back to patient
/// single-copy waiting instead of amplifying load, so the steady-state
/// retry rate is bounded by `refill` times the success rate by
/// construction. Inert by default (`capacity` unset = unlimited).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryBudgetConfig {
    /// Bucket capacity in tokens; `None` disables budgeting entirely
    /// (retries and hedges are never denied).
    pub capacity: Option<u32>,
    /// Fraction of a token refilled per successful completion, in (0, 1].
    pub refill: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            capacity: None,
            refill: 0.1,
        }
    }
}

/// Per-device circuit breaker: a closed→open→half-open lifecycle driven
/// by an error/timeout EWMA, generalizing the corruption quarantine in
/// `health.rs`. While open, the device is skipped by demand replica
/// selection, prefetch, hedges, and the scrubber; after
/// [`BreakerConfig::hold`] a half-open window re-admits traffic as
/// probes, and one failed probe re-opens the breaker on the spot. Inert
/// by default.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Master switch; when false no breaker state ever opens.
    pub enabled: bool,
    /// EWMA smoothing factor for the error/timeout signal, in (0, 1].
    pub alpha: f64,
    /// Error EWMA above this (on a failing sample) opens the breaker.
    pub error_threshold: f64,
    /// How long an opened breaker stays fully open.
    pub hold: SimDuration,
    /// Length of the half-open probation window after the hold.
    pub half_open: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: false,
            alpha: 0.3,
            error_threshold: 0.6,
            hold: SimDuration::from_millis(200),
            half_open: SimDuration::from_millis(200),
        }
    }
}

/// One scheduled node crash: processor `node` dies at `at` and, when
/// `rejoin` is set, restarts there with a cold RU set. Crashes are
/// experiment-level faults — they never reach the disk layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The processor node that crashes.
    pub node: u16,
    /// When it crashes.
    pub at: SimTime,
    /// When it rejoins, if ever (must be after `at`).
    pub rejoin: Option<SimTime>,
}

/// The deterministic node-crash schedule of one experiment. Empty by
/// default: no crash events are ever scheduled and the world allocates no
/// crash state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    entries: Vec<CrashSpec>,
}

impl CrashPlan {
    /// The empty schedule.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled crashes, in push order.
    pub fn entries(&self) -> &[CrashSpec] {
        &self.entries
    }

    /// Add one crash to the schedule.
    pub fn push(&mut self, spec: CrashSpec) {
        self.entries.push(spec);
    }
}

/// Fault scenario of one experiment: the injected plan plus the
/// mitigation knobs. [`FaultConfig::none`] (the default) injects nothing
/// and schedules nothing — runs are event-for-event identical to a build
/// without the fault subsystem.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Per-device fault schedule, applied at service time in `rt-disk`.
    pub plan: FaultPlan,
    /// Node-crash schedule, applied at the world level (a crash kills a
    /// processor, not a device). Independent of [`FaultConfig::plan`]:
    /// crash-only scenarios allocate no device-fault state.
    pub crashes: CrashPlan,
    /// Retry/backoff/timeout behaviour of the read path.
    pub retry: RetryPolicy,
    /// Prefetch-daemon degradation thresholds.
    pub degrade: DegradeConfig,
    /// Extra rotated-interleave copies of the workload file. With
    /// `replicas = r`, every block has `r` extra copies, each shifted one
    /// disk further, so retries and timeouts can redirect around a dead
    /// or slow device.
    pub replicas: u16,
    /// Hedged-read policy (tail tolerance; inert unless a delay is set).
    pub hedge: HedgeConfig,
    /// Retry/hedge token budget (inert unless a capacity is set).
    pub budget: RetryBudgetConfig,
    /// Per-device circuit breaker (inert unless enabled).
    pub breaker: BreakerConfig,
}

impl FaultConfig {
    /// No faults, no timeouts, no replicas: the identity scenario.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Does this scenario require the world's fault machinery at all?
    /// When false, the world allocates no fault state and the event
    /// stream is untouched.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
            || self.retry.timeout.is_some()
            || self.hedge.delay.is_some()
            || self.budget.capacity.is_some()
            || self.breaker.enabled
    }
}

/// A `--faults` spec that could not be parsed, with the offending spec
/// and the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The spec text as given.
    pub spec: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

fn spec_err(spec: &str, reason: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        spec: spec.to_string(),
        reason: reason.into(),
    }
}

/// Parse a duration literal: `5s`, `200ms`, or a bare number meaning
/// milliseconds.
fn parse_duration(text: &str, spec: &str) -> Result<SimDuration, FaultSpecError> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("ms") {
        (d, SimDuration::from_millis(1))
    } else if let Some(d) = text.strip_suffix('s') {
        (d, SimDuration::from_secs(1))
    } else {
        (text, SimDuration::from_millis(1))
    };
    let value: f64 = digits.parse().map_err(|_| {
        spec_err(
            spec,
            format!("`{text}` is not a duration (try 5s or 200ms)"),
        )
    })?;
    if !(value.is_finite() && value >= 0.0) {
        return Err(spec_err(spec, format!("duration `{text}` must be >= 0")));
    }
    Ok(SimDuration::from_nanos(
        (value * scale.as_nanos() as f64).round() as u64,
    ))
}

/// Parse the optional `@from[-until]` window suffix. Returns
/// `(from, until)`; a missing window means "from t=0, forever".
fn parse_window(
    window: Option<&str>,
    spec: &str,
) -> Result<(SimTime, Option<SimTime>), FaultSpecError> {
    let Some(w) = window else {
        return Ok((SimTime::ZERO, None));
    };
    let (from_text, until_text) = match w.split_once('-') {
        Some((f, u)) => (f, Some(u)),
        None => (w, None),
    };
    let from = SimTime::ZERO + parse_duration(from_text, spec)?;
    let until = match until_text {
        Some(u) => {
            let end = SimTime::ZERO + parse_duration(u, spec)?;
            if end <= from {
                return Err(spec_err(spec, "window end must be after its start"));
            }
            Some(end)
        }
        None => None,
    };
    Ok((from, until))
}

fn parse_disk(text: &str, spec: &str) -> Result<u16, FaultSpecError> {
    text.parse()
        .map_err(|_| spec_err(spec, format!("`{text}` is not a disk number")))
}

/// Parse one `--faults` spec into `plan`.
///
/// Grammar (durations are `5s`, `200ms`, or bare milliseconds):
///
/// * `straggler:<disk>:x<factor>[@<from>[-<until>]]` — multiply the
///   device's service time.
/// * `flaky:<disk>:p<prob>[@<from>[-<until>]]` — each request fails
///   transiently with probability `prob`.
/// * `fail:<disk>@<from>[-<until>]` — hard outage; requests fail
///   immediately. With `-<until>` the device repairs itself then.
/// * `corrupt:<disk>:p<prob>[@<from>[-<until>]]` — silent corruption;
///   each request completes `Ok` but carries a corrupt payload with
///   probability `prob`. Detected only when checksum verification is on
///   (it is whenever a corrupt window is scheduled).
pub fn parse_fault_spec(plan: &mut FaultPlan, spec: &str) -> Result<(), FaultSpecError> {
    use rt_disk::{DeviceFault, DiskId, FaultKind};
    if spec == "crash" || spec.starts_with("crash:") {
        return Err(spec_err(
            spec,
            "crash is a node fault, not a device fault (parse with parse_all_fault_specs)",
        ));
    }
    let (body, window) = match spec.split_once('@') {
        Some((b, w)) => (b, Some(w)),
        None => (spec, None),
    };
    let (from, until) = parse_window(window, spec)?;
    let mut parts = body.split(':');
    let kind_text = parts.next().unwrap_or("");
    let fault = match kind_text {
        "straggler" => {
            let disk = parse_disk(parts.next().unwrap_or(""), spec)?;
            let factor_text = parts
                .next()
                .and_then(|t| t.strip_prefix('x'))
                .ok_or_else(|| spec_err(spec, "expected straggler:<disk>:x<factor>"))?;
            let factor: f64 = factor_text
                .parse()
                .map_err(|_| spec_err(spec, format!("`{factor_text}` is not a factor")))?;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(spec_err(spec, "straggler factor must be > 0"));
            }
            DeviceFault {
                disk: DiskId(disk),
                kind: FaultKind::Slowdown { factor },
                from,
                until,
            }
        }
        "flaky" => {
            let disk = parse_disk(parts.next().unwrap_or(""), spec)?;
            let prob_text = parts
                .next()
                .and_then(|t| t.strip_prefix('p'))
                .ok_or_else(|| spec_err(spec, "expected flaky:<disk>:p<prob>"))?;
            let probability: f64 = prob_text
                .parse()
                .map_err(|_| spec_err(spec, format!("`{prob_text}` is not a probability")))?;
            if !(probability.is_finite() && (0.0..1.0).contains(&probability)) {
                return Err(spec_err(spec, "flaky probability must be in [0, 1)"));
            }
            DeviceFault {
                disk: DiskId(disk),
                kind: FaultKind::Flaky { probability },
                from,
                until,
            }
        }
        "fail" => {
            let disk = parse_disk(parts.next().unwrap_or(""), spec)?;
            DeviceFault {
                disk: DiskId(disk),
                kind: FaultKind::Outage,
                from,
                until,
            }
        }
        "corrupt" => {
            let disk = parse_disk(parts.next().unwrap_or(""), spec)?;
            let prob_text = parts
                .next()
                .and_then(|t| t.strip_prefix('p'))
                .ok_or_else(|| spec_err(spec, "expected corrupt:<disk>:p<prob>"))?;
            let probability: f64 = prob_text
                .parse()
                .map_err(|_| spec_err(spec, format!("`{prob_text}` is not a probability")))?;
            if !(probability.is_finite() && (0.0..1.0).contains(&probability)) {
                return Err(spec_err(spec, "corrupt probability must be in [0, 1)"));
            }
            DeviceFault {
                disk: DiskId(disk),
                kind: FaultKind::Corrupt { probability },
                from,
                until,
            }
        }
        other => {
            return Err(spec_err(
                spec,
                format!("unknown fault kind `{other}` (straggler, flaky, fail, corrupt, crash)"),
            ))
        }
    };
    if parts.next().is_some() {
        return Err(spec_err(spec, "trailing fields after fault spec"));
    }
    plan.push(fault);
    Ok(())
}

/// Parse a comma-separated list of *device* fault specs (the historical
/// `--faults` grammar) into a plan. Rejects `crash:` specs — use
/// [`parse_all_fault_specs`] for the full grammar.
pub fn parse_fault_specs(text: &str) -> Result<FaultPlan, FaultSpecError> {
    let mut plan = FaultPlan::none();
    for spec in text.split(',').filter(|s| !s.trim().is_empty()) {
        parse_fault_spec(&mut plan, spec.trim())?;
    }
    Ok(plan)
}

/// Parse one node-crash spec: `crash:<node>@<time>[:rejoin@<time>]`.
///
/// * `crash:3@5s` — node 3 dies at t=5s and never comes back.
/// * `crash:3@5s:rejoin@12s` — node 3 dies at t=5s and restarts (cold RU
///   set, fresh daemon slot) at t=12s.
pub fn parse_crash_spec(spec: &str) -> Result<CrashSpec, FaultSpecError> {
    let body = spec
        .strip_prefix("crash:")
        .ok_or_else(|| spec_err(spec, "expected crash:<node>@<time>[:rejoin@<time>]"))?;
    let (node_text, rest) = body
        .split_once('@')
        .ok_or_else(|| spec_err(spec, "expected crash:<node>@<time>[:rejoin@<time>]"))?;
    let node: u16 = node_text
        .parse()
        .map_err(|_| spec_err(spec, format!("`{node_text}` is not a node number")))?;
    let (at_text, rejoin_text) = match rest.split_once(":rejoin@") {
        Some((a, r)) => (a, Some(r)),
        None => (rest, None),
    };
    let at = SimTime::ZERO + parse_duration(at_text, spec)?;
    let rejoin = match rejoin_text {
        Some(r) => {
            let t = SimTime::ZERO + parse_duration(r, spec)?;
            if t <= at {
                return Err(spec_err(spec, "rejoin time must be after the crash time"));
            }
            Some(t)
        }
        None => None,
    };
    Ok(CrashSpec { node, at, rejoin })
}

/// Parse a comma-separated list of fault specs — the full `--faults`
/// grammar: the device kinds of [`parse_fault_spec`] plus
/// `crash:<node>@<time>[:rejoin@<time>]` node faults. Returns the device
/// plan and the crash schedule separately (they feed different layers).
pub fn parse_all_fault_specs(text: &str) -> Result<(FaultPlan, CrashPlan), FaultSpecError> {
    let mut plan = FaultPlan::none();
    let mut crashes = CrashPlan::none();
    for spec in text.split(',').filter(|s| !s.trim().is_empty()) {
        let spec = spec.trim();
        if spec == "crash" || spec.starts_with("crash:") {
            crashes.push(parse_crash_spec(spec)?);
        } else {
            parse_fault_spec(&mut plan, spec)?;
        }
    }
    Ok((plan, crashes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_disk::FaultKind;

    #[test]
    fn none_is_inactive() {
        let f = FaultConfig::none();
        assert!(!f.is_active());
        assert!(f.plan.is_empty());
        assert_eq!(f.replicas, 0);
    }

    #[test]
    fn timeout_alone_activates() {
        let f = FaultConfig {
            retry: RetryPolicy {
                timeout: Some(SimDuration::from_millis(500)),
                ..RetryPolicy::default()
            },
            ..FaultConfig::none()
        };
        assert!(f.is_active());
    }

    #[test]
    fn tail_knobs_alone_activate() {
        // Each tail-tolerance knob needs the fault state allocated (the
        // health tracker and token bucket live there), so setting any of
        // them activates the layer even with no injected faults.
        let hedge = FaultConfig {
            hedge: HedgeConfig {
                delay: Some(SimDuration::from_millis(60)),
                ..HedgeConfig::default()
            },
            ..FaultConfig::none()
        };
        assert!(hedge.is_active());
        let budget = FaultConfig {
            budget: RetryBudgetConfig {
                capacity: Some(8),
                ..RetryBudgetConfig::default()
            },
            ..FaultConfig::none()
        };
        assert!(budget.is_active());
        let breaker = FaultConfig {
            breaker: BreakerConfig {
                enabled: true,
                ..BreakerConfig::default()
            },
            ..FaultConfig::none()
        };
        assert!(breaker.is_active());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_for(0), SimDuration::from_millis(5));
        assert_eq!(r.backoff_for(1), SimDuration::from_millis(10));
        assert_eq!(r.backoff_for(3), SimDuration::from_millis(40));
        assert_eq!(r.backoff_for(6), SimDuration::from_millis(320));
        assert_eq!(r.backoff_for(60), SimDuration::from_millis(320));
    }

    #[test]
    fn parses_straggler_with_window() {
        let plan = parse_fault_specs("straggler:7:x4@1s-2500ms").unwrap();
        let entries = plan.entries();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.disk.0, 7);
        assert!(matches!(e.kind, FaultKind::Slowdown { factor } if factor == 4.0));
        assert_eq!(e.from, SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(
            e.until,
            Some(SimTime::ZERO + SimDuration::from_millis(2500))
        );
    }

    #[test]
    fn parses_fail_open_ended_and_flaky() {
        let plan = parse_fault_specs("fail:3@5s,flaky:2:p0.25").unwrap();
        let entries = plan.entries();
        assert_eq!(entries.len(), 2);
        assert!(matches!(entries[0].kind, FaultKind::Outage));
        assert_eq!(entries[0].from, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(entries[0].until, None);
        assert!(matches!(
            entries[1].kind,
            FaultKind::Flaky { probability } if probability == 0.25
        ));
        assert_eq!(entries[1].from, SimTime::ZERO);
    }

    #[test]
    fn parses_corrupt_with_window() {
        let plan = parse_fault_specs("corrupt:5:p0.1@100ms-900ms").unwrap();
        let e = &plan.entries()[0];
        assert_eq!(e.disk.0, 5);
        assert!(matches!(
            e.kind,
            FaultKind::Corrupt { probability } if probability == 0.1
        ));
        assert_eq!(e.from, SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(e.until, Some(SimTime::ZERO + SimDuration::from_millis(900)));
    }

    #[test]
    fn bare_number_is_milliseconds() {
        let plan = parse_fault_specs("fail:0@250-500").unwrap();
        let e = &plan.entries()[0];
        assert_eq!(e.from, SimTime::ZERO + SimDuration::from_millis(250));
        assert_eq!(e.until, Some(SimTime::ZERO + SimDuration::from_millis(500)));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_fault_specs("straggler:7").is_err());
        assert!(parse_fault_specs("straggler:7:4").is_err());
        assert!(parse_fault_specs("flaky:1:p1.5").is_err());
        assert!(parse_fault_specs("fail:notadisk@1s").is_err());
        assert!(parse_fault_specs("meteor:3").is_err());
        assert!(parse_fault_specs("corrupt:1:p1.0").is_err());
        assert!(parse_fault_specs("corrupt:1:0.2").is_err());
        assert!(parse_fault_specs("fail:0@2s-1s").is_err());
        let err = parse_fault_specs("straggler:7:x0").unwrap_err();
        assert!(err.to_string().contains("straggler:7:x0"));
    }

    #[test]
    fn empty_and_whitespace_specs_are_no_faults() {
        assert!(parse_fault_specs("").unwrap().is_empty());
        assert!(parse_fault_specs(" , ").unwrap().is_empty());
    }

    #[test]
    fn crash_plan_empty_does_not_activate_device_faults() {
        let f = FaultConfig {
            crashes: {
                let mut c = CrashPlan::none();
                c.push(CrashSpec {
                    node: 3,
                    at: SimTime::ZERO + SimDuration::from_secs(5),
                    rejoin: None,
                });
                c
            },
            ..FaultConfig::none()
        };
        // Crashes live in their own layer: they must not drag the
        // device-fault state (and its RNG streams) into the run.
        assert!(!f.is_active());
        assert!(!f.crashes.is_empty());
    }

    #[test]
    fn parses_crash_without_rejoin() {
        let s = parse_crash_spec("crash:3@5s").unwrap();
        assert_eq!(s.node, 3);
        assert_eq!(s.at, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(s.rejoin, None);
    }

    #[test]
    fn parses_crash_with_rejoin_and_bare_millis() {
        let s = parse_crash_spec("crash:17@250:rejoin@1200").unwrap();
        assert_eq!(s.node, 17);
        assert_eq!(s.at, SimTime::ZERO + SimDuration::from_millis(250));
        assert_eq!(
            s.rejoin,
            Some(SimTime::ZERO + SimDuration::from_millis(1200))
        );
    }

    #[test]
    fn rejects_malformed_crash_specs() {
        assert!(parse_crash_spec("crash:3").is_err());
        assert!(parse_crash_spec("crash:@5s").is_err());
        assert!(parse_crash_spec("crash:notanode@5s").is_err());
        assert!(parse_crash_spec("crash:3@5s:rejoin@5s").is_err());
        assert!(parse_crash_spec("crash:3@5s:rejoin@2s").is_err());
        // The device-only parser refuses crash specs outright.
        assert!(parse_fault_specs("crash:3@5s").is_err());
    }

    #[test]
    fn all_specs_split_device_and_node_faults() {
        let (plan, crashes) =
            parse_all_fault_specs("fail:3@5s, crash:2@1s:rejoin@4s, flaky:1:p0.1, crash:9@2s")
                .unwrap();
        assert_eq!(plan.entries().len(), 2);
        assert_eq!(crashes.entries().len(), 2);
        assert_eq!(crashes.entries()[0].node, 2);
        assert_eq!(
            crashes.entries()[0].rejoin,
            Some(SimTime::ZERO + SimDuration::from_secs(4))
        );
        assert_eq!(crashes.entries()[1].node, 9);
        assert_eq!(crashes.entries()[1].rejoin, None);
        let (plan, crashes) = parse_all_fault_specs("").unwrap();
        assert!(plan.is_empty() && crashes.is_empty());
    }
}
