//! Per-device health tracking for graceful prefetch degradation.
//!
//! Every completed I/O feeds two exponentially weighted moving averages
//! per disk — error rate and service time — plus a fleet-wide service
//! EWMA used as the baseline. A disk is **degraded** while its error EWMA
//! exceeds [`DegradeConfig::error_threshold`] or its latency EWMA exceeds
//! [`DegradeConfig::latency_factor`] times the fleet mean; recovery uses
//! bounds tightened by [`DegradeConfig::recover_margin`] so the state
//! doesn't chatter at the threshold. The prefetch daemon consults
//! [`HealthTracker::is_degraded`] before committing a prefetch, leaving
//! sick devices to demand traffic only.

use crate::faults::DegradeConfig;
use rt_disk::DiskId;
use rt_sim::{SimDuration, SimTime};

#[derive(Clone, Copy, Debug)]
struct DiskHealth {
    /// EWMA of error outcomes (1 per failure, 0 per success).
    err: f64,
    /// EWMA of service time, in nanoseconds.
    lat: f64,
    samples: u64,
    degraded: bool,
    degraded_since: SimTime,
    degraded_total: SimDuration,
}

impl DiskHealth {
    const NEW: DiskHealth = DiskHealth {
        err: 0.0,
        lat: 0.0,
        samples: 0,
        degraded: false,
        degraded_since: SimTime::ZERO,
        degraded_total: SimDuration::ZERO,
    };
}

/// Observes per-disk I/O outcomes and classifies devices as healthy or
/// degraded.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    cfg: DegradeConfig,
    disks: Vec<DiskHealth>,
    /// Fleet-wide service-time EWMA (nanoseconds), the latency baseline.
    fleet_lat: f64,
    fleet_samples: u64,
    /// Completed healthy→degraded→healthy cycles plus any still open.
    intervals: u64,
}

/// Samples a disk needs before its latency EWMA is trusted against the
/// fleet baseline (the error EWMA acts immediately — errors are signal,
/// not noise).
const MIN_SAMPLES: u64 = 3;
/// Samples the whole fleet needs before the baseline is trusted.
const MIN_FLEET_SAMPLES: u64 = 10;

impl HealthTracker {
    /// A tracker for `disks` devices, all healthy.
    pub fn new(disks: u16, cfg: DegradeConfig) -> Self {
        HealthTracker {
            cfg,
            disks: vec![DiskHealth::NEW; disks as usize],
            fleet_lat: 0.0,
            fleet_samples: 0,
            intervals: 0,
        }
    }

    fn ewma(prev: f64, sample: f64, alpha: f64, first: bool) -> f64 {
        if first {
            sample
        } else {
            alpha * sample + (1.0 - alpha) * prev
        }
    }

    /// Record one completed I/O on `disk`: whether it succeeded and its
    /// device service time. Updates the disk's classification. Samples for
    /// disks the tracker does not know (out-of-range ids, or a tracker
    /// built over zero disks) are ignored rather than panicking — the
    /// tracker is advisory and must not take the run down.
    pub fn observe(&mut self, disk: DiskId, ok: bool, service: SimDuration, now: SimTime) {
        if disk.index() >= self.disks.len() {
            return;
        }
        let alpha = self.cfg.alpha;
        let err_sample = if ok { 0.0 } else { 1.0 };
        let lat_sample = service.as_nanos() as f64;
        // The fleet baseline absorbs each sample at alpha scaled down by
        // the fleet size: every disk contributes, so a single sick device
        // cannot drag the baseline up to meet its own latency.
        let fleet_alpha = alpha / self.disks.len() as f64;
        self.fleet_lat = Self::ewma(
            self.fleet_lat,
            lat_sample,
            fleet_alpha,
            self.fleet_samples == 0,
        );
        self.fleet_samples += 1;
        let d = &mut self.disks[disk.index()];
        let first = d.samples == 0;
        d.err = Self::ewma(d.err, err_sample, alpha, first);
        d.lat = Self::ewma(d.lat, lat_sample, alpha, first);
        d.samples += 1;

        let lat_trusted = d.samples >= MIN_SAMPLES && self.fleet_samples >= MIN_FLEET_SAMPLES;
        if !d.degraded {
            let errs = d.err > self.cfg.error_threshold;
            let slow = lat_trusted && d.lat > self.cfg.latency_factor * self.fleet_lat;
            if errs || slow {
                d.degraded = true;
                d.degraded_since = now;
                self.intervals += 1;
            }
        } else {
            // Recover only once safely inside both bounds (hysteresis).
            let margin = self.cfg.recover_margin;
            let exit_lat_factor = 1.0 + (self.cfg.latency_factor - 1.0) * margin;
            let errs_ok = d.err < self.cfg.error_threshold * margin;
            let lat_ok = !lat_trusted || d.lat < exit_lat_factor * self.fleet_lat;
            if errs_ok && lat_ok {
                d.degraded = false;
                d.degraded_total += now.saturating_since(d.degraded_since);
            }
        }
    }

    /// Should the prefetch daemon avoid this disk right now? Always false
    /// when degradation is disabled in the config (health is still
    /// tracked for the report), and for disks the tracker does not know.
    pub fn is_degraded(&self, disk: DiskId) -> bool {
        self.cfg.enabled && self.disks.get(disk.index()).is_some_and(|d| d.degraded)
    }

    /// Number of healthy→degraded transitions seen so far.
    pub fn degraded_intervals(&self) -> u64 {
        self.intervals
    }

    /// Total simulated time spent degraded across all disks, counting
    /// still-open intervals up to `now`.
    pub fn degraded_time(&self, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for d in &self.disks {
            total += d.degraded_total;
            if d.degraded {
                total += now.saturating_since(d.degraded_since);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn repeated_errors_degrade_quickly() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn straggler_latency_degrades_against_fleet() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        // Healthy fleet baseline: 30 ms on disks 0-2.
        for i in 0..12 {
            h.observe(DiskId((i % 3) as u16), true, ms(30), at(i * 30));
        }
        // Disk 3 serves at 4x.
        for i in 0..4 {
            h.observe(DiskId(3), true, ms(120), at(400 + i * 120));
        }
        assert!(h.is_degraded(DiskId(3)));
        assert!(!h.is_degraded(DiskId(0)));
    }

    #[test]
    fn recovery_needs_margin_and_accumulates_time() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..20 {
            h.observe(DiskId(0), true, ms(30), at(i * 30));
        }
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        // A single success is not enough to recover (EWMA still high).
        h.observe(DiskId(1), true, ms(30), at(200));
        assert!(h.is_degraded(DiskId(1)));
        // A sustained healthy streak is.
        let mut t = 300;
        while h.is_degraded(DiskId(1)) {
            h.observe(DiskId(1), true, ms(30), at(t));
            t += 30;
            assert!(t < 30_000, "disk never recovered");
        }
        assert!(h.degraded_time(at(t)) > SimDuration::ZERO);
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn disabled_config_reports_but_never_degrades() {
        let cfg = DegradeConfig {
            enabled: false,
            ..DegradeConfig::default()
        };
        let mut h = HealthTracker::new(1, cfg);
        for i in 0..5 {
            h.observe(DiskId(0), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(0)));
        // Transitions are still tracked for the report.
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn zero_disk_tracker_ignores_samples() {
        let mut h = HealthTracker::new(0, DegradeConfig::default());
        // Must neither divide by zero nor index out of bounds.
        h.observe(DiskId(0), false, ms(30), at(0));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 0);
        assert_eq!(h.degraded_time(at(100)), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_disk_ignored() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..5 {
            h.observe(DiskId(7), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(7)));
        assert_eq!(h.degraded_intervals(), 0);
        // In-range observations still work after the stray ones.
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
    }

    #[test]
    fn open_degraded_interval_counts_up_to_now() {
        let mut h = HealthTracker::new(1, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(0), false, ms(30), at(i * 10));
        }
        assert!(h.is_degraded(DiskId(0)));
        let t1 = h.degraded_time(at(100));
        let t2 = h.degraded_time(at(200));
        assert!(t2 > t1);
    }
}
