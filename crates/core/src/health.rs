//! Per-device health tracking for graceful prefetch degradation.
//!
//! Every completed I/O feeds two exponentially weighted moving averages
//! per disk — error rate and service time — plus a fleet-wide service
//! EWMA used as the baseline. A disk is **degraded** while its error EWMA
//! exceeds [`DegradeConfig::error_threshold`] or its latency EWMA exceeds
//! [`DegradeConfig::latency_factor`] times the fleet mean; recovery uses
//! bounds tightened by [`DegradeConfig::recover_margin`] so the state
//! doesn't chatter at the threshold. The prefetch daemon consults
//! [`HealthTracker::is_degraded`] before committing a prefetch, leaving
//! sick devices to demand traffic only.

//!
//! The integrity layer adds a second, stricter lifecycle on top:
//! **quarantine**. Detected-corrupt payloads feed a per-device corruption
//! EWMA; crossing [`QuarantineConfig::threshold`] takes the device out of
//! service entirely (demand steers to replicas, prefetch and scrub skip
//! it) for a hold period, then a probation window re-admits traffic — one
//! corrupt read during probation re-quarantines, a clean window restores
//! full health. Phase is derived purely from the stored quarantine start
//! and the current time, so the classification needs no timer events.

use crate::faults::DegradeConfig;
use crate::integrity::QuarantineConfig;
use rt_disk::DiskId;
use rt_sim::{SimDuration, SimTime};

#[derive(Clone, Copy, Debug)]
struct DiskHealth {
    /// EWMA of error outcomes (1 per failure, 0 per success).
    err: f64,
    /// EWMA of service time, in nanoseconds.
    lat: f64,
    samples: u64,
    degraded: bool,
    degraded_since: SimTime,
    degraded_total: SimDuration,
    /// EWMA of corruption outcomes (1 per corrupt payload, 0 per clean
    /// read). Starts at 0 and always blends — no first-sample jump.
    corrupt: f64,
    /// Start of the current quarantine episode, when one is open. The
    /// phase (quarantined / probation / healthy again) is derived from
    /// this and `now`; a finished episode is folded into
    /// `quarantined_total` lazily on the next sample.
    quarantined_since: Option<SimTime>,
    quarantined_total: SimDuration,
}

impl DiskHealth {
    const NEW: DiskHealth = DiskHealth {
        err: 0.0,
        lat: 0.0,
        samples: 0,
        degraded: false,
        degraded_since: SimTime::ZERO,
        degraded_total: SimDuration::ZERO,
        corrupt: 0.0,
        quarantined_since: None,
        quarantined_total: SimDuration::ZERO,
    };
}

/// Where a device stands in the quarantine lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Healthy,
    Quarantined,
    Probation,
}

/// Observes per-disk I/O outcomes and classifies devices as healthy or
/// degraded.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    cfg: DegradeConfig,
    quarantine: QuarantineConfig,
    disks: Vec<DiskHealth>,
    /// Fleet-wide service-time EWMA (nanoseconds), the latency baseline.
    fleet_lat: f64,
    fleet_samples: u64,
    /// Completed healthy→degraded→healthy cycles plus any still open.
    intervals: u64,
    /// Healthy→quarantined transitions (re-quarantines from probation
    /// count as new episodes).
    quarantines: u64,
}

/// Samples a disk needs before its latency EWMA is trusted against the
/// fleet baseline (the error EWMA acts immediately — errors are signal,
/// not noise).
const MIN_SAMPLES: u64 = 3;
/// Samples the whole fleet needs before the baseline is trusted.
const MIN_FLEET_SAMPLES: u64 = 10;

impl HealthTracker {
    /// A tracker for `disks` devices, all healthy, with the default
    /// quarantine lifecycle (irrelevant unless corruption samples are
    /// fed in via [`HealthTracker::observe_corruption`]).
    pub fn new(disks: u16, cfg: DegradeConfig) -> Self {
        HealthTracker {
            cfg,
            quarantine: QuarantineConfig::default(),
            disks: vec![DiskHealth::NEW; disks as usize],
            fleet_lat: 0.0,
            fleet_samples: 0,
            intervals: 0,
            quarantines: 0,
        }
    }

    /// Replace the quarantine lifecycle configuration.
    pub fn with_quarantine(mut self, quarantine: QuarantineConfig) -> Self {
        self.quarantine = quarantine;
        self
    }

    fn ewma(prev: f64, sample: f64, alpha: f64, first: bool) -> f64 {
        if first {
            sample
        } else {
            alpha * sample + (1.0 - alpha) * prev
        }
    }

    /// Record one completed I/O on `disk`: whether it succeeded and its
    /// device service time. Updates the disk's classification. Samples for
    /// disks the tracker does not know (out-of-range ids, or a tracker
    /// built over zero disks) are ignored rather than panicking — the
    /// tracker is advisory and must not take the run down.
    pub fn observe(&mut self, disk: DiskId, ok: bool, service: SimDuration, now: SimTime) {
        if disk.index() >= self.disks.len() {
            return;
        }
        let alpha = self.cfg.alpha;
        let err_sample = if ok { 0.0 } else { 1.0 };
        let lat_sample = service.as_nanos() as f64;
        // The fleet baseline absorbs each sample at alpha scaled down by
        // the fleet size: every disk contributes, so a single sick device
        // cannot drag the baseline up to meet its own latency.
        let fleet_alpha = alpha / self.disks.len() as f64;
        self.fleet_lat = Self::ewma(
            self.fleet_lat,
            lat_sample,
            fleet_alpha,
            self.fleet_samples == 0,
        );
        self.fleet_samples += 1;
        let d = &mut self.disks[disk.index()];
        let first = d.samples == 0;
        d.err = Self::ewma(d.err, err_sample, alpha, first);
        d.lat = Self::ewma(d.lat, lat_sample, alpha, first);
        d.samples += 1;

        let lat_trusted = d.samples >= MIN_SAMPLES && self.fleet_samples >= MIN_FLEET_SAMPLES;
        if !d.degraded {
            let errs = d.err > self.cfg.error_threshold;
            let slow = lat_trusted && d.lat > self.cfg.latency_factor * self.fleet_lat;
            if errs || slow {
                d.degraded = true;
                d.degraded_since = now;
                self.intervals += 1;
            }
        } else {
            // Recover only once safely inside both bounds (hysteresis).
            let margin = self.cfg.recover_margin;
            let exit_lat_factor = 1.0 + (self.cfg.latency_factor - 1.0) * margin;
            let errs_ok = d.err < self.cfg.error_threshold * margin;
            let lat_ok = !lat_trusted || d.lat < exit_lat_factor * self.fleet_lat;
            if errs_ok && lat_ok {
                d.degraded = false;
                d.degraded_total += now.saturating_since(d.degraded_since);
            }
        }
    }

    /// Where `d`'s quarantine episode stands at `now`. Derived purely
    /// from the stored episode start: `[s, s+hold)` is quarantined,
    /// `[s+hold, s+hold+probation)` is probation, after that the device
    /// is healthy again (the episode is folded up lazily).
    fn phase_of(&self, d: &DiskHealth, now: SimTime) -> Phase {
        let Some(since) = d.quarantined_since else {
            return Phase::Healthy;
        };
        if now < since + self.quarantine.hold {
            Phase::Quarantined
        } else if now < since + self.quarantine.hold + self.quarantine.probation {
            Phase::Probation
        } else {
            Phase::Healthy
        }
    }

    /// Record one integrity verdict for a read served by `disk`:
    /// `corrupt` is true when the payload failed checksum verification.
    /// Updates the corruption EWMA and drives the quarantine lifecycle.
    /// Out-of-range disks are ignored, like [`HealthTracker::observe`].
    pub fn observe_corruption(&mut self, disk: DiskId, corrupt: bool, now: SimTime) {
        if disk.index() >= self.disks.len() {
            return;
        }
        let q = self.quarantine;
        let episode = q.hold + q.probation;
        let d = &mut self.disks[disk.index()];
        // Fold up an episode the device has already outlived: it survived
        // probation clean, so it re-enters service with a fresh record.
        if let Some(since) = d.quarantined_since {
            if now >= since + episode {
                d.quarantined_total += episode;
                d.quarantined_since = None;
                d.corrupt = 0.0;
            }
        }
        let sample = if corrupt { 1.0 } else { 0.0 };
        d.corrupt = q.alpha * sample + (1.0 - q.alpha) * d.corrupt;
        if !q.enabled {
            return;
        }
        match d.quarantined_since {
            // Only a corrupt sample can open an episode — clean reads
            // never quarantine, and a freshly re-admitted device is not
            // re-quarantined by its own healthy traffic.
            None => {
                if corrupt && d.corrupt > q.threshold {
                    d.quarantined_since = Some(now);
                    self.quarantines += 1;
                }
            }
            Some(since) => {
                // One strike during probation restarts the episode.
                let probation = now >= since + q.hold;
                if probation && corrupt {
                    d.quarantined_total += now.saturating_since(since);
                    d.quarantined_since = Some(now);
                    self.quarantines += 1;
                }
            }
        }
    }

    /// Should the prefetch daemon avoid this disk right now? Always false
    /// when degradation is disabled in the config (health is still
    /// tracked for the report), and for disks the tracker does not know.
    pub fn is_degraded(&self, disk: DiskId) -> bool {
        self.cfg.enabled && self.disks.get(disk.index()).is_some_and(|d| d.degraded)
    }

    /// Is this device quarantined at `now` — held out of service, with
    /// demand steered to replicas and prefetch/scrub skipping it? Always
    /// false when the quarantine lifecycle is disabled.
    pub fn is_quarantined(&self, disk: DiskId, now: SimTime) -> bool {
        self.quarantine.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.phase_of(d, now) == Phase::Quarantined)
    }

    /// Is this device on probation at `now` — re-admitted to service but
    /// one corrupt read away from re-quarantine?
    pub fn in_probation(&self, disk: DiskId, now: SimTime) -> bool {
        self.quarantine.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.phase_of(d, now) == Phase::Probation)
    }

    /// Healthy→quarantined transitions seen so far (probation strikes
    /// count as new episodes).
    pub fn quarantine_episodes(&self) -> u64 {
        self.quarantines
    }

    /// Total simulated time devices have spent quarantined or on
    /// probation, counting open episodes up to `now` (capped at the
    /// episode length — a device that quietly outlived its probation
    /// stops accruing).
    pub fn quarantined_time(&self, now: SimTime) -> SimDuration {
        let episode = self.quarantine.hold + self.quarantine.probation;
        let mut total = SimDuration::ZERO;
        for d in &self.disks {
            total += d.quarantined_total;
            if let Some(since) = d.quarantined_since {
                total += now.saturating_since(since).min(episode);
            }
        }
        total
    }

    /// Current error EWMA for `disk` (1.0 = every recent I/O failed).
    /// Zero for disks the tracker does not know. Read-only: exposed for
    /// epoch telemetry sampling.
    pub fn error_ewma(&self, disk: DiskId) -> f64 {
        self.disks.get(disk.index()).map_or(0.0, |d| d.err)
    }

    /// Current service-latency EWMA for `disk` in milliseconds (zero for
    /// unknown disks). Read-only: exposed for epoch telemetry sampling.
    pub fn latency_ewma_ms(&self, disk: DiskId) -> f64 {
        self.disks.get(disk.index()).map_or(0.0, |d| d.lat / 1e6)
    }

    /// Number of healthy→degraded transitions seen so far.
    pub fn degraded_intervals(&self) -> u64 {
        self.intervals
    }

    /// Total simulated time spent degraded across all disks, counting
    /// still-open intervals up to `now`.
    pub fn degraded_time(&self, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for d in &self.disks {
            total += d.degraded_total;
            if d.degraded {
                total += now.saturating_since(d.degraded_since);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn repeated_errors_degrade_quickly() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn straggler_latency_degrades_against_fleet() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        // Healthy fleet baseline: 30 ms on disks 0-2.
        for i in 0..12 {
            h.observe(DiskId((i % 3) as u16), true, ms(30), at(i * 30));
        }
        // Disk 3 serves at 4x.
        for i in 0..4 {
            h.observe(DiskId(3), true, ms(120), at(400 + i * 120));
        }
        assert!(h.is_degraded(DiskId(3)));
        assert!(!h.is_degraded(DiskId(0)));
    }

    #[test]
    fn recovery_needs_margin_and_accumulates_time() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..20 {
            h.observe(DiskId(0), true, ms(30), at(i * 30));
        }
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        // A single success is not enough to recover (EWMA still high).
        h.observe(DiskId(1), true, ms(30), at(200));
        assert!(h.is_degraded(DiskId(1)));
        // A sustained healthy streak is.
        let mut t = 300;
        while h.is_degraded(DiskId(1)) {
            h.observe(DiskId(1), true, ms(30), at(t));
            t += 30;
            assert!(t < 30_000, "disk never recovered");
        }
        assert!(h.degraded_time(at(t)) > SimDuration::ZERO);
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn disabled_config_reports_but_never_degrades() {
        let cfg = DegradeConfig {
            enabled: false,
            ..DegradeConfig::default()
        };
        let mut h = HealthTracker::new(1, cfg);
        for i in 0..5 {
            h.observe(DiskId(0), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(0)));
        // Transitions are still tracked for the report.
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn zero_disk_tracker_ignores_samples() {
        let mut h = HealthTracker::new(0, DegradeConfig::default());
        // Must neither divide by zero nor index out of bounds.
        h.observe(DiskId(0), false, ms(30), at(0));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 0);
        assert_eq!(h.degraded_time(at(100)), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_disk_ignored() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..5 {
            h.observe(DiskId(7), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(7)));
        assert_eq!(h.degraded_intervals(), 0);
        // In-range observations still work after the stray ones.
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
    }

    #[test]
    fn open_degraded_interval_counts_up_to_now() {
        let mut h = HealthTracker::new(1, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(0), false, ms(30), at(i * 10));
        }
        assert!(h.is_degraded(DiskId(0)));
        let t1 = h.degraded_time(at(100));
        let t2 = h.degraded_time(at(200));
        assert!(t2 > t1);
    }

    #[test]
    fn open_degraded_interval_time_is_exact_at_run_end() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        // The very first error sets the EWMA to 1.0 > threshold, so the
        // degraded interval opens at exactly t=40 and stays open.
        h.observe(DiskId(1), true, ms(30), at(10));
        h.observe(DiskId(0), false, ms(30), at(40));
        assert!(h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_time(at(150)), ms(110));
        assert_eq!(h.degraded_time(at(1040)), ms(1000));
        // A run that somehow asks before the interval opened saturates
        // to zero rather than underflowing.
        assert_eq!(h.degraded_time(at(0)), SimDuration::ZERO);
    }

    #[test]
    fn recovered_disk_is_readmitted_and_can_degrade_again() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        let mut t = 300;
        while h.is_degraded(DiskId(1)) {
            h.observe(DiskId(1), true, ms(30), at(t));
            t += 30;
            assert!(t < 30_000, "disk never recovered");
        }
        // Re-admitted: healthy again, one closed interval, and the
        // degraded clock has stopped.
        assert!(!h.is_degraded(DiskId(1)));
        assert_eq!(h.degraded_intervals(), 1);
        let settled = h.degraded_time(at(t));
        assert_eq!(h.degraded_time(at(t + 10_000)), settled);
        // A second burst of errors opens a second interval.
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(t + i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        assert_eq!(h.degraded_intervals(), 2);
        assert!(h.degraded_time(at(t + 200)) > settled);
    }

    fn qcfg() -> QuarantineConfig {
        QuarantineConfig {
            enabled: true,
            alpha: 0.3,
            threshold: 0.5,
            hold: ms(500),
            probation: ms(500),
        }
    }

    #[test]
    fn corruption_streak_quarantines_then_probation_then_readmission() {
        let mut h = HealthTracker::new(2, DegradeConfig::default()).with_quarantine(qcfg());
        // One corrupt read is not enough (EWMA 0.3 < 0.5)...
        h.observe_corruption(DiskId(0), true, at(0));
        assert!(!h.is_quarantined(DiskId(0), at(0)));
        // ...a second in a row is (0.51 > 0.5): episode opens at t=10.
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        assert!(h.is_quarantined(DiskId(0), at(509)));
        assert_eq!(h.quarantine_episodes(), 1);
        // Hold expires at t=510: probation, traffic flows again.
        assert!(!h.is_quarantined(DiskId(0), at(510)));
        assert!(h.in_probation(DiskId(0), at(510)));
        assert!(h.in_probation(DiskId(0), at(1009)));
        // Probation survived clean: fully healthy from t=1010 on.
        assert!(!h.in_probation(DiskId(0), at(1010)));
        assert!(!h.is_quarantined(DiskId(0), at(1010)));
        // The next clean sample folds the episode up; time stops at
        // exactly hold + probation and the corruption record is reset.
        h.observe_corruption(DiskId(0), false, at(1200));
        assert_eq!(h.quarantined_time(at(5000)), ms(1000));
        // The other disk was never touched.
        assert!(!h.is_quarantined(DiskId(1), at(10)));
    }

    #[test]
    fn corrupt_probe_during_probation_requarantines() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        h.observe_corruption(DiskId(0), true, at(0));
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        // Clean probe during probation does not restart the episode.
        h.observe_corruption(DiskId(0), false, at(600));
        assert!(h.in_probation(DiskId(0), at(600)));
        // One corrupt probe does, on the spot.
        h.observe_corruption(DiskId(0), true, at(700));
        assert!(h.is_quarantined(DiskId(0), at(700)));
        assert_eq!(h.quarantine_episodes(), 2);
        // Time accounting: 690 ms of the first episode (10..700) plus
        // the open second episode.
        assert_eq!(h.quarantined_time(at(800)), ms(690) + ms(100));
    }

    #[test]
    fn readmitted_disk_needs_a_fresh_streak_to_requarantine() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        h.observe_corruption(DiskId(0), true, at(0));
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        // Survive probation; the fold-up resets the EWMA, so a single
        // corrupt read after re-admission does not re-quarantine.
        h.observe_corruption(DiskId(0), true, at(1200));
        assert!(!h.is_quarantined(DiskId(0), at(1200)));
        assert_eq!(h.quarantine_episodes(), 1);
        h.observe_corruption(DiskId(0), true, at(1210));
        assert!(h.is_quarantined(DiskId(0), at(1210)));
        assert_eq!(h.quarantine_episodes(), 2);
    }

    #[test]
    fn disabled_quarantine_tracks_but_never_quarantines() {
        let cfg = QuarantineConfig {
            enabled: false,
            ..qcfg()
        };
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(cfg);
        for i in 0..5 {
            h.observe_corruption(DiskId(0), true, at(i * 10));
        }
        assert!(!h.is_quarantined(DiskId(0), at(50)));
        assert!(!h.in_probation(DiskId(0), at(50)));
        assert_eq!(h.quarantine_episodes(), 0);
        assert_eq!(h.quarantined_time(at(1000)), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_corruption_sample_ignored() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        for i in 0..5 {
            h.observe_corruption(DiskId(7), true, at(i * 10));
        }
        assert_eq!(h.quarantine_episodes(), 0);
    }
}
