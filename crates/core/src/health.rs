//! Per-device health tracking for graceful prefetch degradation.
//!
//! Every completed I/O feeds two exponentially weighted moving averages
//! per disk — error rate and service time — plus a fleet-wide service
//! EWMA used as the baseline. A disk is **degraded** while its error EWMA
//! exceeds [`DegradeConfig::error_threshold`] or its latency EWMA exceeds
//! [`DegradeConfig::latency_factor`] times the fleet mean; recovery uses
//! bounds tightened by [`DegradeConfig::recover_margin`] so the state
//! doesn't chatter at the threshold. The prefetch daemon consults
//! [`HealthTracker::is_degraded`] before committing a prefetch, leaving
//! sick devices to demand traffic only.

//!
//! The integrity layer adds a second, stricter lifecycle on top:
//! **quarantine**. Detected-corrupt payloads feed a per-device corruption
//! EWMA; crossing [`QuarantineConfig::threshold`] takes the device out of
//! service entirely (demand steers to replicas, prefetch and scrub skip
//! it) for a hold period, then a probation window re-admits traffic — one
//! corrupt read during probation re-quarantines, a clean window restores
//! full health. Phase is derived purely from the stored quarantine start
//! and the current time, so the classification needs no timer events.
//!
//! The tail-tolerance layer generalizes that lifecycle once more into a
//! per-device **circuit breaker** driven by an error/timeout EWMA:
//! crossing [`BreakerConfig::error_threshold`] on a failing sample opens
//! the breaker (closed→open), demand replica selection, prefetch, hedges
//! and the scrubber all skip the device for
//! [`BreakerConfig::hold`], then a half-open window re-admits traffic as
//! probes — one failed probe re-opens on the spot, a clean window closes
//! the breaker. Like quarantine, the phase is derived purely from the
//! stored episode start, so no timer events are ever scheduled.

use crate::faults::{BreakerConfig, DegradeConfig};
use crate::integrity::QuarantineConfig;
use rt_disk::DiskId;
use rt_sim::{SimDuration, SimTime};

#[derive(Clone, Copy, Debug)]
struct DiskHealth {
    /// EWMA of error outcomes (1 per failure, 0 per success).
    err: f64,
    /// EWMA of service time, in nanoseconds.
    lat: f64,
    samples: u64,
    degraded: bool,
    degraded_since: SimTime,
    degraded_total: SimDuration,
    /// EWMA of corruption outcomes (1 per corrupt payload, 0 per clean
    /// read). Starts at 0 and always blends — no first-sample jump.
    corrupt: f64,
    /// Start of the current quarantine episode, when one is open. The
    /// phase (quarantined / probation / healthy again) is derived from
    /// this and `now`; a finished episode is folded into
    /// `quarantined_total` lazily on the next sample.
    quarantined_since: Option<SimTime>,
    quarantined_total: SimDuration,
    /// EWMA of breaker samples (1 per error or timeout, 0 per success).
    /// Starts at 0 and always blends — no first-sample jump.
    brk_err: f64,
    /// Start of the current breaker episode, when one is open. Phase is
    /// derived from this and `now` exactly like `quarantined_since`.
    brk_since: Option<SimTime>,
    brk_total: SimDuration,
}

impl DiskHealth {
    const NEW: DiskHealth = DiskHealth {
        err: 0.0,
        lat: 0.0,
        samples: 0,
        degraded: false,
        degraded_since: SimTime::ZERO,
        degraded_total: SimDuration::ZERO,
        corrupt: 0.0,
        quarantined_since: None,
        quarantined_total: SimDuration::ZERO,
        brk_err: 0.0,
        brk_since: None,
        brk_total: SimDuration::ZERO,
    };
}

/// A finished breaker episode: the device either survived its half-open
/// window (the breaker closed) or struck out during it (the re-open is a
/// *new* episode). Drained by the world to emit trace spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerClosure {
    /// The device whose breaker closed.
    pub disk: DiskId,
    /// When the episode opened.
    pub opened: SimTime,
    /// Length of the fully-open window (`[opened, opened + hold)`).
    pub hold: SimDuration,
    /// How long the half-open tail actually lasted (the full configured
    /// window when it was survived, shorter when a probe struck out).
    pub half_open: SimDuration,
}

/// Where a device stands in the quarantine lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Healthy,
    Quarantined,
    Probation,
}

/// Observes per-disk I/O outcomes and classifies devices as healthy or
/// degraded.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    cfg: DegradeConfig,
    quarantine: QuarantineConfig,
    breaker: BreakerConfig,
    disks: Vec<DiskHealth>,
    /// Fleet-wide service-time EWMA (nanoseconds), the latency baseline.
    fleet_lat: f64,
    fleet_samples: u64,
    /// Completed healthy→degraded→healthy cycles plus any still open.
    intervals: u64,
    /// Healthy→quarantined transitions (re-quarantines from probation
    /// count as new episodes).
    quarantines: u64,
    /// Closed→open breaker transitions (half-open strikes count as new
    /// episodes).
    breaker_open_count: u64,
    /// Successful half-open probes (clean completions during a breaker's
    /// half-open window).
    probe_success_count: u64,
    /// Finished breaker episodes not yet drained for trace emission.
    breaker_closed: Vec<BreakerClosure>,
}

/// Samples a disk needs before its latency EWMA is trusted against the
/// fleet baseline (the error EWMA acts immediately — errors are signal,
/// not noise).
const MIN_SAMPLES: u64 = 3;
/// Samples the whole fleet needs before the baseline is trusted.
const MIN_FLEET_SAMPLES: u64 = 10;

impl HealthTracker {
    /// A tracker for `disks` devices, all healthy, with the default
    /// quarantine lifecycle (irrelevant unless corruption samples are
    /// fed in via [`HealthTracker::observe_corruption`]).
    pub fn new(disks: u16, cfg: DegradeConfig) -> Self {
        HealthTracker {
            cfg,
            quarantine: QuarantineConfig::default(),
            breaker: BreakerConfig::default(),
            disks: vec![DiskHealth::NEW; disks as usize],
            fleet_lat: 0.0,
            fleet_samples: 0,
            intervals: 0,
            quarantines: 0,
            breaker_open_count: 0,
            probe_success_count: 0,
            breaker_closed: Vec::new(),
        }
    }

    /// Replace the quarantine lifecycle configuration.
    pub fn with_quarantine(mut self, quarantine: QuarantineConfig) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Replace the circuit-breaker configuration (disabled by default).
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    fn ewma(prev: f64, sample: f64, alpha: f64, first: bool) -> f64 {
        if first {
            sample
        } else {
            alpha * sample + (1.0 - alpha) * prev
        }
    }

    /// Record one completed I/O on `disk`: whether it succeeded and its
    /// device service time. Updates the disk's classification. Samples for
    /// disks the tracker does not know (out-of-range ids, or a tracker
    /// built over zero disks) are ignored rather than panicking — the
    /// tracker is advisory and must not take the run down.
    pub fn observe(&mut self, disk: DiskId, ok: bool, service: SimDuration, now: SimTime) {
        if disk.index() >= self.disks.len() {
            return;
        }
        let alpha = self.cfg.alpha;
        let err_sample = if ok { 0.0 } else { 1.0 };
        let lat_sample = service.as_nanos() as f64;
        // The fleet baseline absorbs each sample at alpha scaled down by
        // the fleet size: every disk contributes, so a single sick device
        // cannot drag the baseline up to meet its own latency.
        let fleet_alpha = alpha / self.disks.len() as f64;
        self.fleet_lat = Self::ewma(
            self.fleet_lat,
            lat_sample,
            fleet_alpha,
            self.fleet_samples == 0,
        );
        self.fleet_samples += 1;
        let d = &mut self.disks[disk.index()];
        let first = d.samples == 0;
        d.err = Self::ewma(d.err, err_sample, alpha, first);
        d.lat = Self::ewma(d.lat, lat_sample, alpha, first);
        d.samples += 1;

        let lat_trusted = d.samples >= MIN_SAMPLES && self.fleet_samples >= MIN_FLEET_SAMPLES;
        if !d.degraded {
            let errs = d.err > self.cfg.error_threshold;
            let slow = lat_trusted && d.lat > self.cfg.latency_factor * self.fleet_lat;
            if errs || slow {
                d.degraded = true;
                d.degraded_since = now;
                self.intervals += 1;
            }
        } else {
            // Recover only once safely inside both bounds (hysteresis).
            let margin = self.cfg.recover_margin;
            let exit_lat_factor = 1.0 + (self.cfg.latency_factor - 1.0) * margin;
            let errs_ok = d.err < self.cfg.error_threshold * margin;
            let lat_ok = !lat_trusted || d.lat < exit_lat_factor * self.fleet_lat;
            if errs_ok && lat_ok {
                d.degraded = false;
                d.degraded_total += now.saturating_since(d.degraded_since);
            }
        }
        self.breaker_sample(disk, !ok, now);
    }

    /// Record a demand-fetch timeout on `disk` as a breaker sample: a
    /// timeout is not a completion (it never reaches
    /// [`HealthTracker::observe`]) but it is exactly the signal a breaker
    /// exists to act on. Out-of-range disks are ignored.
    pub fn observe_timeout(&mut self, disk: DiskId, now: SimTime) {
        self.breaker_sample(disk, true, now);
    }

    /// Feed one error/timeout sample into `disk`'s circuit breaker and
    /// drive its closed→open→half-open lifecycle. The structure mirrors
    /// [`HealthTracker::observe_corruption`]: finished episodes are
    /// folded up lazily, only a *failing* sample can open the breaker,
    /// and one failed half-open probe re-opens it on the spot.
    fn breaker_sample(&mut self, disk: DiskId, bad: bool, now: SimTime) {
        let b = self.breaker;
        if !b.enabled || disk.index() >= self.disks.len() {
            return;
        }
        let episode = b.hold + b.half_open;
        let d = &mut self.disks[disk.index()];
        // Fold up an episode the device has already outlived: the
        // half-open window passed without a strike, so the breaker closed
        // then and the device re-enters service with a fresh record.
        if let Some(since) = d.brk_since {
            if now >= since + episode {
                d.brk_total += episode;
                d.brk_since = None;
                d.brk_err = 0.0;
                self.breaker_closed.push(BreakerClosure {
                    disk,
                    opened: since,
                    hold: b.hold,
                    half_open: b.half_open,
                });
            }
        }
        let sample = if bad { 1.0 } else { 0.0 };
        d.brk_err = b.alpha * sample + (1.0 - b.alpha) * d.brk_err;
        match d.brk_since {
            // Only a failing sample can open the breaker — successes
            // never trip it, however low the threshold.
            None => {
                if bad && d.brk_err > b.error_threshold {
                    d.brk_since = Some(now);
                    self.breaker_open_count += 1;
                }
            }
            Some(since) => {
                let half_open = now >= since + b.hold;
                if half_open {
                    if bad {
                        // One failed probe re-opens on the spot; the
                        // truncated episode is closed for the trace.
                        d.brk_total += now.saturating_since(since);
                        self.breaker_closed.push(BreakerClosure {
                            disk,
                            opened: since,
                            hold: b.hold,
                            half_open: now.saturating_since(since + b.hold),
                        });
                        d.brk_since = Some(now);
                        self.breaker_open_count += 1;
                    } else {
                        self.probe_success_count += 1;
                    }
                }
            }
        }
    }

    /// Where `d`'s breaker episode stands at `now` — same derivation as
    /// [`HealthTracker::phase_of`] with the breaker's windows.
    fn breaker_phase_of(&self, d: &DiskHealth, now: SimTime) -> Phase {
        let Some(since) = d.brk_since else {
            return Phase::Healthy;
        };
        if now < since + self.breaker.hold {
            Phase::Quarantined
        } else if now < since + self.breaker.hold + self.breaker.half_open {
            Phase::Probation
        } else {
            Phase::Healthy
        }
    }

    /// Is this device's breaker fully open at `now` — skipped by demand
    /// replica selection, prefetch, hedges, and the scrubber? Always
    /// false when the breaker is disabled.
    pub fn breaker_open(&self, disk: DiskId, now: SimTime) -> bool {
        self.breaker.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.breaker_phase_of(d, now) == Phase::Quarantined)
    }

    /// Is this device's breaker half-open at `now` — re-admitted as
    /// probe traffic, one failure away from re-opening?
    pub fn breaker_half_open(&self, disk: DiskId, now: SimTime) -> bool {
        self.breaker.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.breaker_phase_of(d, now) == Phase::Probation)
    }

    /// Should replica selection avoid this device at `now`? The one
    /// shared notion of "unhealthy replica target" — quarantined by the
    /// integrity lifecycle OR held open by the circuit breaker — used by
    /// demand selection, retry rotation, the prefetch daemon, and the
    /// scrubber alike.
    pub fn avoid(&self, disk: DiskId, now: SimTime) -> bool {
        self.is_quarantined(disk, now) || self.breaker_open(disk, now)
    }

    /// Closed→open breaker transitions seen so far (half-open strikes
    /// count as new episodes).
    pub fn breaker_opens(&self) -> u64 {
        self.breaker_open_count
    }

    /// Successful half-open probes seen so far.
    pub fn probe_successes(&self) -> u64 {
        self.probe_success_count
    }

    /// Does `disk` have enough samples for its latency EWMA to be
    /// trusted (used by the adaptive hedge delay)?
    pub fn latency_trusted(&self, disk: DiskId) -> bool {
        self.disks
            .get(disk.index())
            .is_some_and(|d| d.samples >= MIN_SAMPLES)
    }

    /// Drain breaker episodes that have finished since the last call, for
    /// trace-span emission. Usually empty — `std::mem::take` never
    /// allocates then.
    pub fn drain_breaker_closures(&mut self) -> Vec<BreakerClosure> {
        std::mem::take(&mut self.breaker_closed)
    }

    /// Where `d`'s quarantine episode stands at `now`. Derived purely
    /// from the stored episode start: `[s, s+hold)` is quarantined,
    /// `[s+hold, s+hold+probation)` is probation, after that the device
    /// is healthy again (the episode is folded up lazily).
    fn phase_of(&self, d: &DiskHealth, now: SimTime) -> Phase {
        let Some(since) = d.quarantined_since else {
            return Phase::Healthy;
        };
        if now < since + self.quarantine.hold {
            Phase::Quarantined
        } else if now < since + self.quarantine.hold + self.quarantine.probation {
            Phase::Probation
        } else {
            Phase::Healthy
        }
    }

    /// Record one integrity verdict for a read served by `disk`:
    /// `corrupt` is true when the payload failed checksum verification.
    /// Updates the corruption EWMA and drives the quarantine lifecycle.
    /// Out-of-range disks are ignored, like [`HealthTracker::observe`].
    pub fn observe_corruption(&mut self, disk: DiskId, corrupt: bool, now: SimTime) {
        if disk.index() >= self.disks.len() {
            return;
        }
        let q = self.quarantine;
        let episode = q.hold + q.probation;
        let d = &mut self.disks[disk.index()];
        // Fold up an episode the device has already outlived: it survived
        // probation clean, so it re-enters service with a fresh record.
        if let Some(since) = d.quarantined_since {
            if now >= since + episode {
                d.quarantined_total += episode;
                d.quarantined_since = None;
                d.corrupt = 0.0;
            }
        }
        let sample = if corrupt { 1.0 } else { 0.0 };
        d.corrupt = q.alpha * sample + (1.0 - q.alpha) * d.corrupt;
        if !q.enabled {
            return;
        }
        match d.quarantined_since {
            // Only a corrupt sample can open an episode — clean reads
            // never quarantine, and a freshly re-admitted device is not
            // re-quarantined by its own healthy traffic.
            None => {
                if corrupt && d.corrupt > q.threshold {
                    d.quarantined_since = Some(now);
                    self.quarantines += 1;
                }
            }
            Some(since) => {
                // One strike during probation restarts the episode.
                let probation = now >= since + q.hold;
                if probation && corrupt {
                    d.quarantined_total += now.saturating_since(since);
                    d.quarantined_since = Some(now);
                    self.quarantines += 1;
                }
            }
        }
    }

    /// Should the prefetch daemon avoid this disk right now? Always false
    /// when degradation is disabled in the config (health is still
    /// tracked for the report), and for disks the tracker does not know.
    pub fn is_degraded(&self, disk: DiskId) -> bool {
        self.cfg.enabled && self.disks.get(disk.index()).is_some_and(|d| d.degraded)
    }

    /// Is this device quarantined at `now` — held out of service, with
    /// demand steered to replicas and prefetch/scrub skipping it? Always
    /// false when the quarantine lifecycle is disabled.
    pub fn is_quarantined(&self, disk: DiskId, now: SimTime) -> bool {
        self.quarantine.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.phase_of(d, now) == Phase::Quarantined)
    }

    /// Is this device on probation at `now` — re-admitted to service but
    /// one corrupt read away from re-quarantine?
    pub fn in_probation(&self, disk: DiskId, now: SimTime) -> bool {
        self.quarantine.enabled
            && self
                .disks
                .get(disk.index())
                .is_some_and(|d| self.phase_of(d, now) == Phase::Probation)
    }

    /// Healthy→quarantined transitions seen so far (probation strikes
    /// count as new episodes).
    pub fn quarantine_episodes(&self) -> u64 {
        self.quarantines
    }

    /// Total simulated time devices have spent quarantined or on
    /// probation, counting open episodes up to `now` (capped at the
    /// episode length — a device that quietly outlived its probation
    /// stops accruing).
    pub fn quarantined_time(&self, now: SimTime) -> SimDuration {
        let episode = self.quarantine.hold + self.quarantine.probation;
        let mut total = SimDuration::ZERO;
        for d in &self.disks {
            total += d.quarantined_total;
            if let Some(since) = d.quarantined_since {
                total += now.saturating_since(since).min(episode);
            }
        }
        total
    }

    /// Current error EWMA for `disk` (1.0 = every recent I/O failed).
    /// Zero for disks the tracker does not know. Read-only: exposed for
    /// epoch telemetry sampling.
    pub fn error_ewma(&self, disk: DiskId) -> f64 {
        self.disks.get(disk.index()).map_or(0.0, |d| d.err)
    }

    /// Current service-latency EWMA for `disk` in milliseconds (zero for
    /// unknown disks). Read-only: exposed for epoch telemetry sampling.
    pub fn latency_ewma_ms(&self, disk: DiskId) -> f64 {
        self.disks.get(disk.index()).map_or(0.0, |d| d.lat / 1e6)
    }

    /// Number of healthy→degraded transitions seen so far.
    pub fn degraded_intervals(&self) -> u64 {
        self.intervals
    }

    /// Total simulated time spent degraded across all disks, counting
    /// still-open intervals up to `now`.
    pub fn degraded_time(&self, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for d in &self.disks {
            total += d.degraded_total;
            if d.degraded {
                total += now.saturating_since(d.degraded_since);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn repeated_errors_degrade_quickly() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn straggler_latency_degrades_against_fleet() {
        let mut h = HealthTracker::new(4, DegradeConfig::default());
        // Healthy fleet baseline: 30 ms on disks 0-2.
        for i in 0..12 {
            h.observe(DiskId((i % 3) as u16), true, ms(30), at(i * 30));
        }
        // Disk 3 serves at 4x.
        for i in 0..4 {
            h.observe(DiskId(3), true, ms(120), at(400 + i * 120));
        }
        assert!(h.is_degraded(DiskId(3)));
        assert!(!h.is_degraded(DiskId(0)));
    }

    #[test]
    fn recovery_needs_margin_and_accumulates_time() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..20 {
            h.observe(DiskId(0), true, ms(30), at(i * 30));
        }
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        // A single success is not enough to recover (EWMA still high).
        h.observe(DiskId(1), true, ms(30), at(200));
        assert!(h.is_degraded(DiskId(1)));
        // A sustained healthy streak is.
        let mut t = 300;
        while h.is_degraded(DiskId(1)) {
            h.observe(DiskId(1), true, ms(30), at(t));
            t += 30;
            assert!(t < 30_000, "disk never recovered");
        }
        assert!(h.degraded_time(at(t)) > SimDuration::ZERO);
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn disabled_config_reports_but_never_degrades() {
        let cfg = DegradeConfig {
            enabled: false,
            ..DegradeConfig::default()
        };
        let mut h = HealthTracker::new(1, cfg);
        for i in 0..5 {
            h.observe(DiskId(0), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(0)));
        // Transitions are still tracked for the report.
        assert_eq!(h.degraded_intervals(), 1);
    }

    #[test]
    fn zero_disk_tracker_ignores_samples() {
        let mut h = HealthTracker::new(0, DegradeConfig::default());
        // Must neither divide by zero nor index out of bounds.
        h.observe(DiskId(0), false, ms(30), at(0));
        assert!(!h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_intervals(), 0);
        assert_eq!(h.degraded_time(at(100)), SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_disk_ignored() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..5 {
            h.observe(DiskId(7), false, ms(30), at(i * 30));
        }
        assert!(!h.is_degraded(DiskId(7)));
        assert_eq!(h.degraded_intervals(), 0);
        // In-range observations still work after the stray ones.
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
    }

    #[test]
    fn open_degraded_interval_counts_up_to_now() {
        let mut h = HealthTracker::new(1, DegradeConfig::default());
        for i in 0..3 {
            h.observe(DiskId(0), false, ms(30), at(i * 10));
        }
        assert!(h.is_degraded(DiskId(0)));
        let t1 = h.degraded_time(at(100));
        let t2 = h.degraded_time(at(200));
        assert!(t2 > t1);
    }

    #[test]
    fn open_degraded_interval_time_is_exact_at_run_end() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        // The very first error sets the EWMA to 1.0 > threshold, so the
        // degraded interval opens at exactly t=40 and stays open.
        h.observe(DiskId(1), true, ms(30), at(10));
        h.observe(DiskId(0), false, ms(30), at(40));
        assert!(h.is_degraded(DiskId(0)));
        assert_eq!(h.degraded_time(at(150)), ms(110));
        assert_eq!(h.degraded_time(at(1040)), ms(1000));
        // A run that somehow asks before the interval opened saturates
        // to zero rather than underflowing.
        assert_eq!(h.degraded_time(at(0)), SimDuration::ZERO);
    }

    #[test]
    fn recovered_disk_is_readmitted_and_can_degrade_again() {
        let mut h = HealthTracker::new(2, DegradeConfig::default());
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        let mut t = 300;
        while h.is_degraded(DiskId(1)) {
            h.observe(DiskId(1), true, ms(30), at(t));
            t += 30;
            assert!(t < 30_000, "disk never recovered");
        }
        // Re-admitted: healthy again, one closed interval, and the
        // degraded clock has stopped.
        assert!(!h.is_degraded(DiskId(1)));
        assert_eq!(h.degraded_intervals(), 1);
        let settled = h.degraded_time(at(t));
        assert_eq!(h.degraded_time(at(t + 10_000)), settled);
        // A second burst of errors opens a second interval.
        for i in 0..4 {
            h.observe(DiskId(1), false, ms(30), at(t + i * 30));
        }
        assert!(h.is_degraded(DiskId(1)));
        assert_eq!(h.degraded_intervals(), 2);
        assert!(h.degraded_time(at(t + 200)) > settled);
    }

    fn qcfg() -> QuarantineConfig {
        QuarantineConfig {
            enabled: true,
            alpha: 0.3,
            threshold: 0.5,
            hold: ms(500),
            probation: ms(500),
        }
    }

    #[test]
    fn corruption_streak_quarantines_then_probation_then_readmission() {
        let mut h = HealthTracker::new(2, DegradeConfig::default()).with_quarantine(qcfg());
        // One corrupt read is not enough (EWMA 0.3 < 0.5)...
        h.observe_corruption(DiskId(0), true, at(0));
        assert!(!h.is_quarantined(DiskId(0), at(0)));
        // ...a second in a row is (0.51 > 0.5): episode opens at t=10.
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        assert!(h.is_quarantined(DiskId(0), at(509)));
        assert_eq!(h.quarantine_episodes(), 1);
        // Hold expires at t=510: probation, traffic flows again.
        assert!(!h.is_quarantined(DiskId(0), at(510)));
        assert!(h.in_probation(DiskId(0), at(510)));
        assert!(h.in_probation(DiskId(0), at(1009)));
        // Probation survived clean: fully healthy from t=1010 on.
        assert!(!h.in_probation(DiskId(0), at(1010)));
        assert!(!h.is_quarantined(DiskId(0), at(1010)));
        // The next clean sample folds the episode up; time stops at
        // exactly hold + probation and the corruption record is reset.
        h.observe_corruption(DiskId(0), false, at(1200));
        assert_eq!(h.quarantined_time(at(5000)), ms(1000));
        // The other disk was never touched.
        assert!(!h.is_quarantined(DiskId(1), at(10)));
    }

    #[test]
    fn corrupt_probe_during_probation_requarantines() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        h.observe_corruption(DiskId(0), true, at(0));
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        // Clean probe during probation does not restart the episode.
        h.observe_corruption(DiskId(0), false, at(600));
        assert!(h.in_probation(DiskId(0), at(600)));
        // One corrupt probe does, on the spot.
        h.observe_corruption(DiskId(0), true, at(700));
        assert!(h.is_quarantined(DiskId(0), at(700)));
        assert_eq!(h.quarantine_episodes(), 2);
        // Time accounting: 690 ms of the first episode (10..700) plus
        // the open second episode.
        assert_eq!(h.quarantined_time(at(800)), ms(690) + ms(100));
    }

    #[test]
    fn readmitted_disk_needs_a_fresh_streak_to_requarantine() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        h.observe_corruption(DiskId(0), true, at(0));
        h.observe_corruption(DiskId(0), true, at(10));
        assert!(h.is_quarantined(DiskId(0), at(10)));
        // Survive probation; the fold-up resets the EWMA, so a single
        // corrupt read after re-admission does not re-quarantine.
        h.observe_corruption(DiskId(0), true, at(1200));
        assert!(!h.is_quarantined(DiskId(0), at(1200)));
        assert_eq!(h.quarantine_episodes(), 1);
        h.observe_corruption(DiskId(0), true, at(1210));
        assert!(h.is_quarantined(DiskId(0), at(1210)));
        assert_eq!(h.quarantine_episodes(), 2);
    }

    #[test]
    fn disabled_quarantine_tracks_but_never_quarantines() {
        let cfg = QuarantineConfig {
            enabled: false,
            ..qcfg()
        };
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(cfg);
        for i in 0..5 {
            h.observe_corruption(DiskId(0), true, at(i * 10));
        }
        assert!(!h.is_quarantined(DiskId(0), at(50)));
        assert!(!h.in_probation(DiskId(0), at(50)));
        assert_eq!(h.quarantine_episodes(), 0);
        assert_eq!(h.quarantined_time(at(1000)), SimDuration::ZERO);
    }

    fn bcfg() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            alpha: 0.3,
            error_threshold: 0.6,
            hold: ms(500),
            half_open: ms(500),
        }
    }

    #[test]
    fn error_streak_opens_breaker_then_half_open_then_close() {
        let mut h = HealthTracker::new(2, DegradeConfig::default()).with_breaker(bcfg());
        // EWMA path: 0.3 → 0.51 → 0.657; the third error opens at t=20.
        h.observe(DiskId(0), false, ms(30), at(0));
        h.observe(DiskId(0), false, ms(30), at(10));
        assert!(!h.breaker_open(DiskId(0), at(10)));
        h.observe(DiskId(0), false, ms(30), at(20));
        assert!(h.breaker_open(DiskId(0), at(20)));
        assert!(h.avoid(DiskId(0), at(100)));
        assert_eq!(h.breaker_opens(), 1);
        // Hold expires at t=520: half-open, traffic probes again.
        assert!(!h.breaker_open(DiskId(0), at(520)));
        assert!(h.breaker_half_open(DiskId(0), at(520)));
        assert!(!h.avoid(DiskId(0), at(520)));
        // Clean probes count; survived window closes the breaker.
        h.observe(DiskId(0), true, ms(30), at(600));
        assert_eq!(h.probe_successes(), 1);
        assert!(!h.breaker_half_open(DiskId(0), at(1020)));
        // The next sample folds the episode up and emits the closure.
        h.observe(DiskId(0), true, ms(30), at(1100));
        let closed = h.drain_breaker_closures();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].disk, DiskId(0));
        assert_eq!(closed[0].opened, at(20));
        assert_eq!(closed[0].hold, ms(500));
        assert_eq!(closed[0].half_open, ms(500));
        assert!(h.drain_breaker_closures().is_empty());
        // The other disk was never touched.
        assert!(!h.breaker_open(DiskId(1), at(20)));
    }

    #[test]
    fn failed_half_open_probe_reopens_breaker() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_breaker(bcfg());
        for i in 0..3 {
            h.observe(DiskId(0), false, ms(30), at(i * 10));
        }
        assert!(h.breaker_open(DiskId(0), at(20)));
        // One failed probe during the half-open window re-opens on the
        // spot and closes the truncated episode for the trace.
        h.observe(DiskId(0), false, ms(30), at(600));
        assert!(h.breaker_open(DiskId(0), at(600)));
        assert_eq!(h.breaker_opens(), 2);
        let closed = h.drain_breaker_closures();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].opened, at(20));
        assert_eq!(closed[0].half_open, ms(80));
    }

    #[test]
    fn timeouts_feed_the_breaker_without_completions() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_breaker(bcfg());
        for i in 0..3 {
            h.observe_timeout(DiskId(0), at(i * 10));
        }
        assert!(h.breaker_open(DiskId(0), at(20)));
        // Out-of-range timeouts are ignored like every other sample.
        h.observe_timeout(DiskId(9), at(100));
        assert_eq!(h.breaker_opens(), 1);
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut h = HealthTracker::new(1, DegradeConfig::default());
        for i in 0..10 {
            h.observe(DiskId(0), false, ms(30), at(i * 10));
        }
        assert!(!h.breaker_open(DiskId(0), at(100)));
        assert_eq!(h.breaker_opens(), 0);
        assert!(h.drain_breaker_closures().is_empty());
    }

    #[test]
    fn avoid_covers_quarantine_and_breaker() {
        let mut h = HealthTracker::new(3, DegradeConfig::default())
            .with_quarantine(qcfg())
            .with_breaker(bcfg());
        // Disk 0: quarantined via corruption. Disk 1: breaker via errors.
        h.observe_corruption(DiskId(0), true, at(0));
        h.observe_corruption(DiskId(0), true, at(10));
        for i in 0..3 {
            h.observe(DiskId(1), false, ms(30), at(i * 10));
        }
        assert!(h.avoid(DiskId(0), at(50)));
        assert!(h.avoid(DiskId(1), at(50)));
        assert!(!h.avoid(DiskId(2), at(50)));
    }

    #[test]
    fn out_of_range_corruption_sample_ignored() {
        let mut h = HealthTracker::new(1, DegradeConfig::default()).with_quarantine(qcfg());
        for i in 0..5 {
            h.observe_corruption(DiskId(7), true, at(i * 10));
        }
        assert_eq!(h.quarantine_episodes(), 0);
    }
}
