//! Standard experiment sweeps, parameterized so callers (the benchmark
//! harness, the CLI, downstream studies) share one implementation.
//!
//! Each sweep is a thread-parallel map over configurations derived from a
//! base; the workers run whole experiments, which are internally
//! deterministic, so parallelism never changes a number. All sweeps (and
//! [`run_pairs_parallel`]) share the [`parallel_map`] scheduler: workers
//! claim *chunks* of the remaining work — large while the queue is full,
//! shrinking toward single jobs near the end — which amortizes the shared
//! counter while still balancing uneven run times, and each worker
//! accumulates results in thread-local scratch merged once at exit instead
//! of locking a shared slot per job.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rt_patterns::AccessPattern;
use rt_sim::SimDuration;

use crate::config::{ExperimentConfig, PrefetchConfig};
use crate::experiment::{run_experiment, run_pairs_parallel};
use crate::metrics::{RunMetrics, RunPair};

/// Worker threads used by the sweeps: the `RT_THREADS` environment
/// variable when set to a positive integer, otherwise the host's available
/// parallelism. Worker count never changes any simulated number — only how
/// the (internally deterministic) runs are scheduled onto the host.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Chunked self-scheduling parallel map: apply `f` to every item, return
/// results in input order. A panic inside `f` is re-raised on the caller
/// with its original payload once the other workers drain.
pub fn parallel_map<In, Out, F>(items: &[In], threads: usize, f: F) -> Vec<Out>
where
    In: Sync,
    Out: Send,
    F: Fn(&In) -> Out + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    let merged: Mutex<Vec<(usize, Out)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Thread-local scratch: results pile up here and merge
                    // under one lock at exit.
                    let mut local: Vec<(usize, Out)> = Vec::new();
                    loop {
                        // Guided chunking: claim about a quarter of an even
                        // share of what remains, at least one job. The size
                        // estimate races with other claims, which only makes
                        // a chunk slightly conservative.
                        let claimed = next.load(Ordering::Relaxed);
                        let remaining = n.saturating_sub(claimed);
                        let chunk = (remaining / (workers * 4)).max(1);
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(item)));
                        }
                    }
                    if !local.is_empty() {
                        merged
                            .lock()
                            .unwrap_or_else(|poison| poison.into_inner())
                            .append(&mut local);
                    }
                })
            })
            .collect();
        // Join explicitly so a worker panic propagates with its payload
        // instead of aborting via an implicit-join double panic.
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    let mut merged = merged.into_inner().expect("workers finished cleanly");
    merged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(merged.iter().enumerate().all(|(k, &(i, _))| k == i));
    merged.into_iter().map(|(_, out)| out).collect()
}

/// Generic parallel map over derived configurations.
pub fn sweep<T: Send>(
    jobs: Vec<ExperimentConfig>,
    tags: Vec<T>,
    threads: usize,
) -> Vec<(T, RunMetrics)> {
    assert_eq!(jobs.len(), tags.len());
    let metrics = parallel_map(&jobs, threads, run_experiment);
    tags.into_iter().zip(metrics).collect()
}

/// One point of a computation sweep.
pub struct ComputePoint {
    /// Mean per-block computation time in milliseconds.
    pub compute_ms: u64,
    /// The base/prefetch pair at that intensity.
    pub pair: RunPair,
}

/// Sweep the mean per-block computation time over `means_ms`, running each
/// point as a base/prefetch pair (§V-C / Fig. 12).
pub fn compute_sweep_over(
    base: &ExperimentConfig,
    means_ms: &[u64],
    threads: usize,
) -> Vec<ComputePoint> {
    let configs: Vec<ExperimentConfig> = means_ms
        .iter()
        .map(|&ms| {
            let mut cfg = base.clone();
            cfg.compute_mean = SimDuration::from_millis(ms);
            cfg
        })
        .collect();
    let pairs = run_pairs_parallel(&configs, threads);
    means_ms
        .iter()
        .zip(pairs)
        .map(|(&compute_ms, pair)| ComputePoint { compute_ms, pair })
        .collect()
}

/// One point of a minimum-prefetch-lead sweep.
pub struct LeadPoint {
    /// The pattern under study.
    pub pattern: AccessPattern,
    /// The minimum prefetch lead in string positions.
    pub lead: u32,
    /// Metrics with prefetching at that lead.
    pub metrics: RunMetrics,
}

/// Sweep the minimum prefetch lead over `leads` for each of `patterns`,
/// using the paper's §V-E geometry (local patterns read the whole file per
/// process).
pub fn lead_sweep_over(
    patterns: &[AccessPattern],
    leads: &[u32],
    threads: usize,
) -> Vec<LeadPoint> {
    let mut jobs = Vec::new();
    let mut tags = Vec::new();
    for &pattern in patterns {
        for &lead in leads {
            jobs.push(ExperimentConfig::paper_lead(pattern, lead));
            tags.push((pattern, lead));
        }
    }
    sweep(jobs, tags, threads)
        .into_iter()
        .map(|((pattern, lead), metrics)| LeadPoint {
            pattern,
            lead,
            metrics,
        })
        .collect()
}

/// Non-prefetching references for the lead sweep, in `patterns` order.
pub fn lead_baselines_for(patterns: &[AccessPattern]) -> Vec<RunMetrics> {
    patterns
        .iter()
        .map(|&pattern| {
            let mut cfg = ExperimentConfig::paper_lead(pattern, 0);
            cfg.prefetch = PrefetchConfig::disabled();
            run_experiment(&cfg)
        })
        .collect()
}

/// One point of a prefetch-buffer-count sweep.
pub struct BufferPoint {
    /// Prefetch buffers (and cap) per node.
    pub buffers: u16,
    /// Metrics with prefetching at that size.
    pub metrics: RunMetrics,
}

/// Sweep the prefetch buffers per node over `counts` (§V-F).
pub fn buffer_sweep_over(
    base: &ExperimentConfig,
    counts: &[u16],
    threads: usize,
) -> Vec<BufferPoint> {
    let mut jobs = Vec::new();
    let mut tags = Vec::new();
    for &buffers in counts {
        let mut cfg = base.clone();
        cfg.prefetch = PrefetchConfig {
            buffers_per_proc: buffers,
            global_cap_per_proc: buffers,
            ..PrefetchConfig::paper()
        };
        jobs.push(cfg);
        tags.push(buffers);
    }
    sweep(jobs, tags, threads)
        .into_iter()
        .map(|(buffers, metrics)| BufferPoint { buffers, metrics })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_patterns::{SyncStyle, WorkloadParams};

    fn small() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg
    }

    #[test]
    fn compute_sweep_points_carry_their_means() {
        let points = compute_sweep_over(&small(), &[0, 5, 10], 2);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].compute_ms, 0);
        assert_eq!(points[2].compute_ms, 10);
        for p in &points {
            assert_eq!(p.pair.base.total_reads(), 200);
            assert!(p.pair.prefetch.prefetches > 0);
        }
        // More compute -> longer runs, monotone across this small sweep.
        assert!(points[2].pair.base.total_time > points[0].pair.base.total_time);
    }

    #[test]
    fn buffer_sweep_orders_by_count() {
        let points = buffer_sweep_over(&small(), &[1, 3], 2);
        assert_eq!(points[0].buffers, 1);
        assert_eq!(points[1].buffers, 3);
        for p in &points {
            assert_eq!(p.metrics.total_reads(), 200);
        }
    }

    #[test]
    fn generic_sweep_preserves_tag_order() {
        let jobs = vec![small(), small()];
        let out = sweep(jobs, vec!["a", "b"], 2);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[0].1.total_time, out[1].1.total_time, "same config");
    }

    #[test]
    #[should_panic]
    fn mismatched_tags_rejected() {
        let _ = sweep(vec![small()], Vec::<u32>::new(), 1);
    }

    #[test]
    fn parallel_map_returns_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 3, 8, 200] {
            let out = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_propagates_worker_panic_payload() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                if x == 7 {
                    panic!("job 7 exploded");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload preserved");
        assert_eq!(msg, "job 7 exploded");
    }
}
