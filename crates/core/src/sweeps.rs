//! Standard experiment sweeps, parameterized so callers (the benchmark
//! harness, the CLI, downstream studies) share one implementation.
//!
//! Each sweep is a thread-parallel map over configurations derived from a
//! base; the workers run whole experiments, which are internally
//! deterministic, so parallelism never changes a number.

use rt_patterns::AccessPattern;
use rt_sim::SimDuration;

use crate::config::{ExperimentConfig, PrefetchConfig};
use crate::experiment::{run_experiment, run_pairs_parallel};
use crate::metrics::{RunMetrics, RunPair};

/// Worker threads used by the sweeps.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Generic parallel map over derived configurations.
pub fn sweep<T: Send>(
    jobs: Vec<ExperimentConfig>,
    tags: Vec<T>,
    threads: usize,
) -> Vec<(T, RunMetrics)> {
    assert_eq!(jobs.len(), tags.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<RunMetrics>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(run_experiment(&jobs[i]));
            });
        }
    });
    tags.into_iter()
        .zip(slots)
        .map(|(tag, slot)| (tag, slot.into_inner().unwrap().expect("job skipped")))
        .collect()
}

/// One point of a computation sweep.
pub struct ComputePoint {
    /// Mean per-block computation time in milliseconds.
    pub compute_ms: u64,
    /// The base/prefetch pair at that intensity.
    pub pair: RunPair,
}

/// Sweep the mean per-block computation time over `means_ms`, running each
/// point as a base/prefetch pair (§V-C / Fig. 12).
pub fn compute_sweep_over(
    base: &ExperimentConfig,
    means_ms: &[u64],
    threads: usize,
) -> Vec<ComputePoint> {
    let configs: Vec<ExperimentConfig> = means_ms
        .iter()
        .map(|&ms| {
            let mut cfg = base.clone();
            cfg.compute_mean = SimDuration::from_millis(ms);
            cfg
        })
        .collect();
    let pairs = run_pairs_parallel(&configs, threads);
    means_ms
        .iter()
        .zip(pairs)
        .map(|(&compute_ms, pair)| ComputePoint { compute_ms, pair })
        .collect()
}

/// One point of a minimum-prefetch-lead sweep.
pub struct LeadPoint {
    /// The pattern under study.
    pub pattern: AccessPattern,
    /// The minimum prefetch lead in string positions.
    pub lead: u32,
    /// Metrics with prefetching at that lead.
    pub metrics: RunMetrics,
}

/// Sweep the minimum prefetch lead over `leads` for each of `patterns`,
/// using the paper's §V-E geometry (local patterns read the whole file per
/// process).
pub fn lead_sweep_over(
    patterns: &[AccessPattern],
    leads: &[u32],
    threads: usize,
) -> Vec<LeadPoint> {
    let mut jobs = Vec::new();
    let mut tags = Vec::new();
    for &pattern in patterns {
        for &lead in leads {
            jobs.push(ExperimentConfig::paper_lead(pattern, lead));
            tags.push((pattern, lead));
        }
    }
    sweep(jobs, tags, threads)
        .into_iter()
        .map(|((pattern, lead), metrics)| LeadPoint {
            pattern,
            lead,
            metrics,
        })
        .collect()
}

/// Non-prefetching references for the lead sweep, in `patterns` order.
pub fn lead_baselines_for(patterns: &[AccessPattern]) -> Vec<RunMetrics> {
    patterns
        .iter()
        .map(|&pattern| {
            let mut cfg = ExperimentConfig::paper_lead(pattern, 0);
            cfg.prefetch = PrefetchConfig::disabled();
            run_experiment(&cfg)
        })
        .collect()
}

/// One point of a prefetch-buffer-count sweep.
pub struct BufferPoint {
    /// Prefetch buffers (and cap) per node.
    pub buffers: u16,
    /// Metrics with prefetching at that size.
    pub metrics: RunMetrics,
}

/// Sweep the prefetch buffers per node over `counts` (§V-F).
pub fn buffer_sweep_over(
    base: &ExperimentConfig,
    counts: &[u16],
    threads: usize,
) -> Vec<BufferPoint> {
    let mut jobs = Vec::new();
    let mut tags = Vec::new();
    for &buffers in counts {
        let mut cfg = base.clone();
        cfg.prefetch = PrefetchConfig {
            buffers_per_proc: buffers,
            global_cap_per_proc: buffers,
            ..PrefetchConfig::paper()
        };
        jobs.push(cfg);
        tags.push(buffers);
    }
    sweep(jobs, tags, threads)
        .into_iter()
        .map(|(buffers, metrics)| BufferPoint { buffers, metrics })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_patterns::{SyncStyle, WorkloadParams};

    fn small() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(
            AccessPattern::GlobalWholeFile,
            SyncStyle::BlocksPerProc(10),
        );
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            ..WorkloadParams::paper()
        };
        cfg
    }

    #[test]
    fn compute_sweep_points_carry_their_means() {
        let points = compute_sweep_over(&small(), &[0, 5, 10], 2);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].compute_ms, 0);
        assert_eq!(points[2].compute_ms, 10);
        for p in &points {
            assert_eq!(p.pair.base.total_reads(), 200);
            assert!(p.pair.prefetch.prefetches > 0);
        }
        // More compute -> longer runs, monotone across this small sweep.
        assert!(points[2].pair.base.total_time > points[0].pair.base.total_time);
    }

    #[test]
    fn buffer_sweep_orders_by_count() {
        let points = buffer_sweep_over(&small(), &[1, 3], 2);
        assert_eq!(points[0].buffers, 1);
        assert_eq!(points[1].buffers, 3);
        for p in &points {
            assert_eq!(p.metrics.total_reads(), 200);
        }
    }

    #[test]
    fn generic_sweep_preserves_tag_order() {
        let jobs = vec![small(), small()];
        let out = sweep(jobs, vec!["a", "b"], 2);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[1].0, "b");
        assert_eq!(out[0].1.total_time, out[1].1.total_time, "same config");
    }

    #[test]
    #[should_panic]
    fn mismatched_tags_rejected() {
        let _ = sweep(vec![small()], Vec::<u32>::new(), 1);
    }
}
