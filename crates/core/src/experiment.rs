//! Experiment execution: single runs, prefetch-vs-base pairs, the paper's
//! full grid, a thread-parallel sweep runner, and forkable run handles
//! that let identical-configuration replicas share a warmed-up prefix.

use rt_patterns::{AccessPattern, SyncStyle};
use rt_sim::{run, run_until, run_with_stats, Scheduler};

pub use crate::config::ExperimentConfig;

use crate::config::PrefetchConfig;
use crate::metrics::{RunMetrics, RunPair};
use crate::world::{Ev, World};

/// Backstop on events per run; real experiments use a few hundred thousand.
const MAX_EVENTS: u64 = 500_000_000;

/// Run one experiment to completion and collect its metrics.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunMetrics {
    let (metrics, _, _) = run_with_world(cfg, false, false);
    metrics
}

/// Run one experiment with access tracing enabled, returning the metrics
/// and the exact access pattern for off-line analysis (§IV-C).
pub fn run_experiment_traced(cfg: &ExperimentConfig) -> (RunMetrics, crate::trace::Trace) {
    let (metrics, trace, _) = run_with_world(cfg, true, false);
    (metrics, trace.expect("tracing was enabled"))
}

/// Host-side performance counters for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct RunPerf {
    /// Events the engine dispatched.
    pub events: u64,
    /// Host wall-clock time spent in the event loop.
    pub wall: std::time::Duration,
    /// Largest number of simultaneously pending events.
    pub peak_pending: usize,
}

impl RunPerf {
    /// Events dispatched per host-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }
}

/// Run one experiment and report how fast the host simulated it alongside
/// the simulated metrics. The metrics are identical to [`run_experiment`]'s.
pub fn run_experiment_instrumented(cfg: &ExperimentConfig) -> (RunMetrics, RunPerf) {
    let (metrics, _, perf) = run_with_world(cfg, false, true);
    (metrics, perf.expect("instrumentation was enabled"))
}

/// Run one experiment with telemetry recording enabled, returning the
/// metrics alongside the recorded [`ObsData`] (spans, instants, and epoch
/// gauge series). Recording is inert: the metrics are bit-identical to
/// [`run_experiment`]'s (see `tests/obs_inert.rs`).
pub fn run_experiment_observed(
    cfg: &ExperimentConfig,
    obs: crate::world::ObsConfig,
) -> (RunMetrics, crate::world::ObsData) {
    let workload = std::sync::Arc::new(crate::world::generate_workload(cfg));
    let mut world = World::with_workload(cfg.clone(), workload);
    world.enable_obs(obs);
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    let outcome = run(&mut world, &mut sched, MAX_EVENTS);
    assert!(
        !outcome.budget_exhausted,
        "simulation exceeded the event budget: {}",
        cfg.label()
    );
    assert!(world.complete(), "simulation drained without finishing");
    let metrics = collect_metrics(&world, outcome.end_time);
    let data = world.take_obs().expect("observation was enabled");
    (metrics, data)
}

fn run_with_world(
    cfg: &ExperimentConfig,
    traced: bool,
    instrumented: bool,
) -> (RunMetrics, Option<crate::trace::Trace>, Option<RunPerf>) {
    let workload = std::sync::Arc::new(crate::world::generate_workload(cfg));
    run_shared_world(cfg, workload, traced, instrumented)
}

fn run_shared_world(
    cfg: &ExperimentConfig,
    workload: std::sync::Arc<rt_patterns::Workload>,
    traced: bool,
    instrumented: bool,
) -> (RunMetrics, Option<crate::trace::Trace>, Option<RunPerf>) {
    let mut world = World::with_workload(cfg.clone(), workload);
    if traced {
        world.enable_tracing();
    }
    let mut sched = Scheduler::new();
    world.bootstrap(&mut sched);
    let (outcome, perf) = if instrumented {
        let stats = run_with_stats(&mut world, &mut sched, MAX_EVENTS);
        (
            stats.outcome,
            Some(RunPerf {
                events: stats.outcome.events,
                wall: stats.wall,
                peak_pending: stats.peak_pending,
            }),
        )
    } else {
        (run(&mut world, &mut sched, MAX_EVENTS), None)
    };
    assert!(
        !outcome.budget_exhausted,
        "simulation exceeded the event budget: {}",
        cfg.label()
    );
    assert!(world.complete(), "simulation drained without finishing");

    let metrics = collect_metrics(&world, outcome.end_time);
    let trace = world.take_trace();
    (metrics, trace, perf)
}

/// Assemble the run's [`RunMetrics`] from a completed world.
fn collect_metrics(world: &World, end_time: rt_sim::SimTime) -> RunMetrics {
    let cfg = world.cfg();
    let pool_stats = world.pool().stats().clone();
    let disks = world.disks();
    let finish = world.finish_times();
    let total_time = finish
        .iter()
        .copied()
        .max()
        .expect("at least one process")
        .saturating_since(rt_sim::SimTime::ZERO);

    RunMetrics {
        total_time,
        proc_finish: finish.clone(),
        reads: world.rec.reads.clone(),
        read_times: world.rec.read_times.clone(),
        disk_response_times: world.rec.disk_responses.clone(),
        hit_ratio: pool_stats.hit_ratio.value(),
        ready_hits: pool_stats.ready_hits,
        unready_hits: pool_stats.unready_hits,
        misses: pool_stats.misses,
        hit_wait: world.rec.hit_wait.clone(),
        disk_response: disks.response(),
        disk_ops: disks.total_ops(),
        disk_utilization: disks.mean_utilization(end_time),
        demand_fetches: pool_stats.demand_fetches,
        prefetches: pool_stats.prefetches,
        sync_wait: world.barrier().sync_wait().clone(),
        barriers: world.barrier().episodes(),
        action_time: world.rec.action_time.clone(),
        failed_actions: world.rec.empty_actions + world.rec.blocked_actions,
        overrun: world.rec.overrun.clone(),
        idle_necessary: world.rec.idle_necessary.clone(),
        idle_actual: world.rec.idle_actual.clone(),
        lock_wait: world.lock().wait().clone(),
        alloc_retries: world.rec.alloc_retries,
        per_proc: (0..cfg.procs as usize)
            .map(|p| crate::metrics::ProcMetrics {
                reads: world.rec.proc_reads[p].clone(),
                hits: world.rec.proc_hits[p],
                prefetches_issued: world.rec.proc_prefetches[p],
                finish: finish[p],
            })
            .collect(),
        tl_prefetched: world.rec.tl_prefetched.clone(),
        tl_barrier: world.rec.tl_barrier.clone(),
        tl_outstanding_io: world.rec.tl_outstanding_io.clone(),
        faults: world.fault_metrics(end_time),
        overload: world.overload_metrics(),
        integrity: world.integrity_metrics(end_time),
        crash: world.crash_metrics(),
        tail: world.tail_metrics(),
        hedged_read_times: world.rec.hedged_read_times.clone(),
    }
}

/// A pausable, forkable experiment: the world together with its scheduler.
///
/// The straight-line runners above build a world, pump it dry, and collect
/// metrics. A `RunHandle` exposes the intermediate states: advance to a
/// fork point, [`fork`](RunHandle::fork) as many independent continuations
/// as needed (each clone carries the full machine state *and* the pending
/// event set), and [`finish`](RunHandle::finish) each one. A fork resumed
/// to completion produces bit-identical metrics to an uninterrupted run of
/// the same configuration — the engine dispatches the exact same event
/// sequence either way (see the `fork_*` tests and the property test in
/// `tests/prop_experiments.rs`).
///
/// Identical-configuration replicas (sweep grids, perf reps) use this to
/// pay the warm-up prefix once instead of once per replica.
pub struct RunHandle {
    world: World,
    sched: Scheduler<Ev>,
}

impl RunHandle {
    /// Build the world for `cfg` and schedule its initial events.
    pub fn start(cfg: &ExperimentConfig) -> Self {
        let workload = std::sync::Arc::new(crate::world::generate_workload(cfg));
        Self::start_shared(cfg, workload)
    }

    /// Like [`start`](RunHandle::start) around an already-generated
    /// workload (which must equal `generate_workload(cfg)`).
    pub fn start_shared(
        cfg: &ExperimentConfig,
        workload: std::sync::Arc<rt_patterns::Workload>,
    ) -> Self {
        let world = World::with_workload(cfg.clone(), workload);
        let mut sched = Scheduler::new();
        world.bootstrap(&mut sched);
        RunHandle { world, sched }
    }

    /// Advance until at least `reads` reads have completed (or the run
    /// drains first). Returns the number of reads actually completed.
    /// Stopping points are exact event boundaries, so forks taken here
    /// resume deterministically.
    pub fn advance_to_reads(&mut self, reads: u64) -> u64 {
        let out = run_until(&mut self.world, &mut self.sched, MAX_EVENTS, |w| {
            w.reads_done() >= reads
        });
        assert!(
            !out.budget_exhausted,
            "simulation exceeded the event budget"
        );
        self.world.reads_done()
    }

    /// Reads completed so far.
    pub fn reads_done(&self) -> u64 {
        self.world.reads_done()
    }

    /// Events dispatched so far.
    pub fn events_fired(&self) -> u64 {
        self.sched.events_fired()
    }

    /// Snapshot the run: a deep copy of the machine and the pending event
    /// set. The fork and the original evolve independently from here.
    pub fn fork(&self) -> Self {
        RunHandle {
            world: self.world.clone(),
            sched: self.sched.clone(),
        }
    }

    /// Run to completion and collect the metrics.
    pub fn finish(mut self) -> RunMetrics {
        let out = run(&mut self.world, &mut self.sched, MAX_EVENTS);
        assert!(
            !out.budget_exhausted,
            "simulation exceeded the event budget"
        );
        assert!(
            self.world.complete(),
            "simulation drained without finishing"
        );
        collect_metrics(&self.world, out.end_time)
    }
}

/// Run `reps` identical copies of `cfg`, sharing one warmed-up prefix:
/// a single run is advanced to `warm_fraction` of its reads, forked per
/// replica, and each fork finished independently (the warm handle itself
/// serves as the last replica). Every returned [`RunMetrics`] is
/// bit-identical to an uninterrupted [`run_experiment`] of `cfg` — the
/// fork only avoids recomputing the shared prefix.
pub fn run_replicas_forked(
    cfg: &ExperimentConfig,
    reps: usize,
    warm_fraction: f64,
) -> Vec<RunMetrics> {
    assert!(reps > 0);
    assert!((0.0..=1.0).contains(&warm_fraction));
    let target = (cfg.workload.total_reads as f64 * warm_fraction) as u64;
    let mut warm = RunHandle::start(cfg);
    warm.advance_to_reads(target);
    let mut out: Vec<RunMetrics> = (1..reps).map(|_| warm.fork().finish()).collect();
    out.push(warm.finish());
    out
}

/// Run the same configuration with prefetching off and on (the paper's
/// base/prefetch comparison). The base run uses the identical seed and
/// workload; only the cache partitioning and daemon differ — so the
/// reference string is generated once and shared between the two runs.
pub fn run_pair(cfg: &ExperimentConfig) -> RunPair {
    let mut base_cfg = cfg.clone();
    base_cfg.prefetch = PrefetchConfig::disabled();
    let mut pf_cfg = cfg.clone();
    if !pf_cfg.prefetch.enabled {
        pf_cfg.prefetch = PrefetchConfig::paper();
    }
    // The workload depends only on seed/pattern/geometry, which the two
    // halves share.
    let workload = std::sync::Arc::new(crate::world::generate_workload(cfg));
    let (base, _, _) = run_shared_world(&base_cfg, workload.clone(), false, false);
    let (prefetch, _, _) = run_shared_world(&pf_cfg, workload, false, false);
    RunPair {
        label: cfg.label(),
        base,
        prefetch,
    }
}

/// Enumerate the paper's experiment grid (§IV-D): six patterns × four
/// synchronization styles (portion sync excluded for `lw`) × two I/O
/// intensities (balanced and I/O-bound). 46 configurations.
pub fn paper_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for pattern in AccessPattern::ALL {
        for sync in SyncStyle::PAPER {
            if !sync.valid_for(pattern) {
                continue;
            }
            grid.push(ExperimentConfig::paper_default(pattern, sync));
            grid.push(ExperimentConfig::paper_io_bound(pattern, sync));
        }
    }
    grid
}

/// Run `configs` as base/prefetch pairs across `threads` worker threads.
/// Results return in input order; each run is internally deterministic so
/// the parallelism never affects the numbers. A panic in any run resurfaces
/// on the caller.
pub fn run_pairs_parallel(configs: &[ExperimentConfig], threads: usize) -> Vec<RunPair> {
    assert!(threads > 0);
    crate::sweeps::parallel_map(configs, threads, run_pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_patterns::WorkloadParams;
    use rt_sim::SimDuration;

    fn small(pattern: AccessPattern, sync: SyncStyle) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(pattern, sync);
        cfg.procs = 4;
        cfg.disks = 4;
        cfg.workload = WorkloadParams {
            procs: 4,
            file_blocks: 200,
            total_reads: 200,
            fixed_portion_len: 5,
            global_fixed_portion_len: 20,
            rand_portion_min: 1,
            rand_portion_max: 10,
            global_rand_portion_min: 5,
            global_rand_portion_max: 20,
        };
        cfg.compute_mean = SimDuration::from_millis(5);
        cfg
    }

    #[test]
    fn run_experiment_accounts_every_read() {
        let m = run_experiment(&small(AccessPattern::GlobalWholeFile, SyncStyle::None));
        assert_eq!(m.total_reads(), 200);
        assert_eq!(m.ready_hits + m.unready_hits + m.misses, 200);
        assert_eq!(m.demand_fetches, m.misses);
        assert!(m.total_time > SimDuration::ZERO);
        assert_eq!(m.proc_finish.len(), 4);
    }

    #[test]
    fn pair_base_has_no_prefetches() {
        let pair = run_pair(&small(AccessPattern::GlobalWholeFile, SyncStyle::None));
        assert_eq!(pair.base.prefetches, 0);
        assert!(pair.prefetch.prefetches > 0);
        assert!(pair.read_time_improvement() > 0.0);
    }

    #[test]
    fn paper_grid_shape() {
        let grid = paper_grid();
        // 6 patterns × 4 syncs − lw-portion, ×2 intensities = 46.
        assert_eq!(grid.len(), 46);
        let lw_portion = grid.iter().any(|c| {
            c.pattern == AccessPattern::LocalWholeFile && c.sync == SyncStyle::EachPortion
        });
        assert!(!lw_portion);
        for c in &grid {
            c.validate().unwrap();
        }
    }

    /// The fields that pin a run bit-for-bit (simulated time is exact).
    fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            m.total_time.as_nanos(),
            m.reads.total().as_nanos(),
            m.ready_hits,
            m.unready_hits,
            m.misses,
            m.disk_ops,
            m.prefetches,
        )
    }

    #[test]
    fn forked_run_matches_uninterrupted() {
        let mut cfg = small(AccessPattern::GlobalWholeFile, SyncStyle::BlocksPerProc(10));
        cfg.prefetch = PrefetchConfig::paper();
        let straight = run_experiment(&cfg);

        let mut warm = RunHandle::start(&cfg);
        let reached = warm.advance_to_reads(100);
        assert!(reached >= 100, "fork point not reached");
        let fork = warm.fork();
        assert_eq!(fork.events_fired(), warm.events_fired());

        // Both the fork and the original resume to the identical run.
        assert_eq!(fingerprint(&fork.finish()), fingerprint(&straight));
        assert_eq!(fingerprint(&warm.finish()), fingerprint(&straight));
    }

    #[test]
    fn fork_at_time_zero_matches() {
        let cfg = small(AccessPattern::LocalFixedPortions, SyncStyle::EachPortion);
        let straight = run_experiment(&cfg);
        let warm = RunHandle::start(&cfg);
        let fork = warm.fork();
        assert_eq!(fingerprint(&fork.finish()), fingerprint(&straight));
    }

    #[test]
    fn forked_replicas_are_identical_to_straight_runs() {
        let mut cfg = small(AccessPattern::GlobalRandomPortions, SyncStyle::None);
        cfg.prefetch = PrefetchConfig::paper();
        let straight = run_experiment(&cfg);
        let reps = run_replicas_forked(&cfg, 3, 0.5);
        assert_eq!(reps.len(), 3);
        for m in &reps {
            assert_eq!(fingerprint(m), fingerprint(&straight));
        }
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let configs = vec![
            small(AccessPattern::GlobalWholeFile, SyncStyle::None),
            small(AccessPattern::LocalWholeFile, SyncStyle::BlocksPerProc(10)),
        ];
        let serial: Vec<_> = configs.iter().map(run_pair).collect();
        let parallel = run_pairs_parallel(&configs, 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.base.total_time, p.base.total_time);
            assert_eq!(s.prefetch.total_time, p.prefetch.total_time);
            assert_eq!(s.prefetch.prefetches, p.prefetch.prefetches);
        }
    }
}
