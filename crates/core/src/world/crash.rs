//! Node-crash injection and recovery: at a crash instant the victim's
//! node vanishes — its pending events are cancelled, its lock lease,
//! pins, and waiter entries are reclaimed, its in-flight I/O is orphaned
//! (completions absorb as plain cache fills), barrier membership shrinks
//! so survivors never deadlock, and its prefetch-daemon duties fail over
//! to surviving nodes. A scheduled rejoin restarts the node with a cold
//! RU set from wherever its reference string stopped.
//!
//! Everything here follows the inert-by-default discipline: none of it
//! runs (and no crash/rejoin event is ever scheduled) unless the
//! configuration's crash plan is non-empty, so crash-free runs are
//! event-for-event identical to a build without this module.

use super::*;

impl World {
    /// The crash injection for node `p` fired: tear the node down and
    /// reclaim everything it holds so the survivors keep making progress.
    pub(super) fn crash_node(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        if self.procs[p].state == PState::Done {
            // Finished its string before the injection instant: there is
            // nothing to kill, and the paired rejoin (if scheduled) will
            // find nothing dead and do nothing either.
            return;
        }
        debug_assert_ne!(self.procs[p].state, PState::Crashed, "double crash");
        let state = self.procs[p].state;
        {
            let c = self
                .crash
                .as_mut()
                .expect("crash event without a crash layer");
            c.crashes += 1;
            c.crashed_at[p] = now;
        }

        // Cancel every event addressed to the victim. Whether the pending
        // process event was a miss issue matters below: the victim died
        // after reserving the demand buffer but before queueing the
        // fetch, and readers may already be queued behind that buffer.
        let miss_pending = state == PState::WaitBlock && self.procs[p].pending_ev.is_some();
        if let Some(id) = self.procs[p].pending_ev.take() {
            sched.cancel(id);
        }
        if let Some(id) = self.procs[p].action_ev.take() {
            sched.cancel(id);
        }

        // Lock-lease reclamation: give back the unexpired tail of the
        // victim's open critical section (lookup, miss work, or daemon
        // action). A
        // lease some later acquirer already queued behind cannot be
        // pulled out of the FIFO; its hold simply lapses.
        if let Some((cs_end, hold)) = self.procs[p].lock_cs.take() {
            if self.lock.reclaim_tail(now, cs_end, hold) {
                self.crash.as_mut().expect("checked above").reclaimed_locks += 1;
            }
        }
        if self.procs[p].action_busy {
            // The in-flight daemon action dies with its node (its
            // ActionEnd was cancelled above); it is never accounted.
            self.procs[p].action_busy = false;
        }

        match state {
            PState::Lookup => {
                // Mid-lookup (or spinning on a pinned-buffer allocation):
                // nothing is held beyond the lease reclaimed above; the
                // in-progress read is lost.
                self.crash.as_mut().expect("checked above").lost_reads += 1;
            }
            PState::WaitBlock => {
                let block = self.procs[p]
                    .cur_access
                    .expect("waiting without access")
                    .block;
                if self.procs[p].logical_wake.is_some() {
                    // The wake already fired (resume deferred behind a
                    // daemon action). Unless the wake carried a poison
                    // error, a buffer was pinned on the victim's behalf
                    // at delivery: unpin it.
                    let poisoned = self
                        .integrity
                        .as_mut()
                        .and_then(|ig| ig.read_errors[p].take())
                        .is_some();
                    if !poisoned {
                        let buf = self
                            .pool
                            .buffer_for(block)
                            .expect("pinned block evicted before the crash");
                        self.pool.unpin(buf);
                        self.crash.as_mut().expect("checked above").reclaimed_pins += 1;
                    }
                } else {
                    if self.waiters.remove(block, ProcId(p as u16)) {
                        self.crash
                            .as_mut()
                            .expect("checked above")
                            .reclaimed_waiters += 1;
                    }
                    if miss_pending {
                        self.orphan_miss(p, block, sched);
                    } else {
                        self.orphan_in_flight(block, sched);
                    }
                }
                self.crash.as_mut().expect("checked above").lost_reads += 1;
            }
            PState::Copying => {
                let buf = self.procs[p]
                    .copying_buf
                    .take()
                    .expect("copying without a pinned buffer");
                self.pool.unpin(buf);
                let c = self.crash.as_mut().expect("checked above");
                c.reclaimed_pins += 1;
                c.lost_reads += 1;
            }
            // The current read had already completed; only the simulated
            // computation dies (its ComputeDone was cancelled above).
            PState::Computing => {}
            // Barrier membership is handled below for every state.
            PState::AtBarrier => {}
            PState::Running => {}
            PState::Done | PState::Crashed => unreachable!("handled above"),
        }

        // Mark dead. The finish accounting counts a crashed node so runs
        // terminate; a rejoin reverses it.
        {
            let proc = &mut self.procs[p];
            proc.state = PState::Crashed;
            proc.idle_since = None;
            proc.logical_wake = None;
            proc.expected_wake = None;
            proc.last_action_empty = false;
            debug_assert!(proc.copying_buf.is_none());
            debug_assert!(proc.lock_cs.is_none());
            debug_assert!(proc.finished_at.is_none());
            proc.finished_at = Some(now);
        }
        self.finished += 1;

        // Shrink dynamic barrier membership; the crash may complete the
        // episode for the survivors (and, under a global portion gate,
        // advance the open portion with them).
        let opened = self.barrier.crash(ProcId(p as u16), now);
        self.rec
            .tl_barrier
            .record(now, self.barrier.waiting() as f64);
        if let Some(open) = opened {
            if self.workload.is_global() {
                if let Workload::Global(s) = &*self.workload {
                    if let Some(next) = s.get(self.global_cursor.position()) {
                        self.global_portion_open = self.global_portion_open.max(next.portion);
                    }
                }
            }
            for r in open.released {
                self.wake(r.index(), sched);
            }
        }

        // Re-charge bookkeeping that names the victim to a survivor: the
        // fault layer's retry initiators, verify/repair chains, and
        // parked demand fetches (dropped outright when no reader is left
        // to want them).
        let me = ProcId(p as u16);
        let live = self.live_initiator(me);
        if let Some(f) = &mut self.faults {
            for e in f.pending.values_mut() {
                if e.initiator == me {
                    e.initiator = live;
                }
            }
        }
        if let Some(ig) = &mut self.integrity {
            for st in ig.verifying.values_mut() {
                if st.who == me {
                    st.who = live;
                }
            }
        }
        if self.admission.is_some() {
            let mut dropped: Vec<BlockId> = Vec::new();
            {
                let waiters = &self.waiters;
                let adm = self.admission.as_mut().expect("checked above");
                for q in &mut adm.parked {
                    q.retain_mut(|e| {
                        if e.who != me {
                            return true;
                        }
                        if live != me && waiters.has_waiters(e.block) {
                            e.who = live;
                            true
                        } else {
                            dropped.push(e.block);
                            false
                        }
                    });
                }
            }
            for block in dropped {
                // Nobody waits on the parked fetch and it never reached a
                // queue: discard its reservation so a later (re)reader
                // misses cleanly instead of waiting on a fetch that will
                // never be submitted.
                if let Some(buf) = self.pool.buffer_for(block) {
                    if matches!(
                        self.pool.buffer(buf).state,
                        rt_cache::BufState::Pending { .. }
                    ) {
                        self.pool.discard_pending(buf);
                    }
                }
                self.clear_pending(block, sched);
            }
        }

        self.obs_instant(Track::Proc(p as u16), ObsKind::Crash, now, u64::MAX, 0);
    }

    /// A scheduled rejoin fired: the node restarts with a cold RU set
    /// from wherever its reference string stopped. Synchronization gates
    /// fast-forward to the present — a rejoiner does not retroactively
    /// synchronize with barriers it slept through.
    pub(super) fn rejoin_node(&mut self, p: usize, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        if self.procs[p].state != PState::Crashed {
            // The crash found the node already finished; nothing to
            // restart.
            return;
        }
        let crashed_at = {
            let c = self
                .crash
                .as_mut()
                .expect("rejoin event without a crash layer");
            c.rejoins += 1;
            c.crashed_at[p]
        };
        // Cold cache: the node's unpinned Ready demand buffers are
        // dropped. Pending fills and buffers other nodes pinned survive.
        self.pool.drop_node_demand(ProcId(p as u16));
        self.barrier.rejoin(ProcId(p as u16));
        self.finished -= 1;
        let total_boundary = match self.cfg.sync {
            SyncStyle::BlocksTotal(n) => self.total_reads_done / n as u64,
            _ => 0,
        };
        {
            let proc = &mut self.procs[p];
            proc.state = PState::Running;
            proc.finished_at = None;
            proc.cur_access = None;
            proc.cur_outcome = None;
            proc.wait_is_hit = false;
            proc.synced_at_reads = proc.reads_done;
            if matches!(self.cfg.sync, SyncStyle::BlocksTotal(_)) {
                proc.boundaries_passed = total_boundary;
            }
            proc.attr = ReadAttribution::default();
            proc.attr_mark = now;
            proc.attr_cur = Component::Overhead;
        }
        if self.obs.is_some() {
            self.obs_instant(Track::Proc(p as u16), ObsKind::Rejoin, now, u64::MAX, 0);
            self.obs_span(
                Track::Proc(p as u16),
                ObsKind::DeadInterval,
                crashed_at,
                now.saturating_since(crashed_at),
                u64::MAX,
                0,
                ReadAttribution::default(),
            );
        }
        self.proceed_next(p, sched);
    }

    /// The victim died inside its miss critical section: the demand
    /// buffer is reserved (readers may already be queued behind it) but
    /// the fetch never reached a disk queue. Submit it now on behalf of a
    /// survivor; with no survivor left, discard the reservation so a
    /// rejoiner cannot block on a fetch that will never happen.
    fn orphan_miss(&mut self, p: usize, block: BlockId, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let Some(buf) = self.pool.buffer_for(block) else {
            return;
        };
        if !matches!(
            self.pool.buffer(buf).state,
            rt_cache::BufState::Pending { .. }
        ) {
            return;
        }
        // The victim is not marked `Crashed` until after the per-state
        // reclamation, so `live_initiator` would still resolve to it here;
        // pick the survivor explicitly, excluding the victim.
        let live = (0..self.procs.len())
            .find(|&i| i != p && self.procs[i].state != PState::Crashed)
            .map(|i| ProcId(i as u16));
        let Some(live) = live else {
            debug_assert!(
                !self.waiters.has_waiters(block),
                "waiters behind an orphaned miss with no survivor"
            );
            self.pool.discard_pending(buf);
            self.clear_pending(block, sched);
            return;
        };
        self.crash.as_mut().expect("crash in progress").orphaned_ios += 1;
        let replica = self.pick_demand_replica(block, now);
        let (started, parked) = self.submit_demand(now, block, replica, live);
        self.note_started(block, started, sched);
        if !parked && self.waiters.has_waiters(block) {
            self.arm_timeout(block, live, sched);
        }
    }

    /// The victim was waiting on an in-flight fetch. With its waiter
    /// entry gone, a fetch nobody else waits on is orphaned: its
    /// completion will be absorbed as a plain cache fill, and its timeout
    /// protection dies with its waiters.
    fn orphan_in_flight(&mut self, block: BlockId, sched: &mut Scheduler<Ev>) {
        if self.waiters.has_waiters(block) {
            return;
        }
        let pending = self.pool.buffer_for(block).is_some_and(|b| {
            matches!(
                self.pool.buffer(b).state,
                rt_cache::BufState::Pending { .. }
            )
        });
        if !pending {
            return;
        }
        self.crash.as_mut().expect("crash in progress").orphaned_ios += 1;
        if let Some(f) = &mut self.faults {
            if let Some(e) = f.pending.get_mut(&block) {
                if let Some(id) = e.timeout.take() {
                    sched.cancel(id);
                }
                // An orphan's hedge protection dies with its waiters too.
                if let Some(id) = e.hedge.take() {
                    sched.cancel(id);
                }
            }
        }
    }

    /// Reads that will never be performed because their node is dead:
    /// the unread tail of each crashed node's local reference string
    /// (or of the shared string once every node is dead). Zero without
    /// a crash plan; together with [`World::reads_done`] and the
    /// `lost_reads` counter this closes the read accounting —
    /// `completed + lost + abandoned == workload total` at drain time.
    pub fn abandoned_reads(&self) -> u64 {
        if self.crash.is_none() {
            return 0;
        }
        match &*self.workload {
            Workload::Local(strings) => self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, q)| q.state == PState::Crashed)
                .map(|(i, q)| (strings[i].len() as u64).saturating_sub(q.cursor.position() as u64))
                .sum(),
            Workload::Global(s) => {
                if self.procs.iter().all(|q| q.state == PState::Crashed) {
                    (s.len() as u64).saturating_sub(self.global_cursor.position() as u64)
                } else {
                    0
                }
            }
        }
    }

    /// `who`, unless it crashed — then the lowest live node, so retries,
    /// repairs, and parked work stay charged to someone who exists.
    /// Returns `who` unchanged when every node is dead.
    pub(super) fn live_initiator(&self, who: ProcId) -> ProcId {
        if self.crash.is_none() || self.procs[who.index()].state != PState::Crashed {
            return who;
        }
        self.procs
            .iter()
            .position(|q| q.state != PState::Crashed)
            .map(|i| ProcId(i as u16))
            .unwrap_or(who)
    }

    /// Daemon failover: pick a block to prefetch on behalf of a crashed
    /// node that is due to rejoin, so its portion is warm when it
    /// restarts. Only local frontiers need covering — a global cursor is
    /// shared, so the survivors' own selection already serves it. `None`
    /// unless a crash plan exists and such a node is dead right now.
    pub(super) fn select_block_for_dead(&mut self) -> Option<BlockId> {
        self.crash.as_ref()?;
        for d in 0..self.procs.len() {
            if self.procs[d].state != PState::Crashed {
                continue;
            }
            let rejoins = self
                .cfg
                .faults
                .crashes
                .entries()
                .iter()
                .any(|s| s.node as usize == d && s.rejoin.is_some());
            if !rejoins {
                // A node that never comes back has no future reads; its
                // remaining portion is dead work, not a prefetch target.
                continue;
            }
            let cand = match self.cfg.prefetch.policy {
                PolicyKind::Oracle => {
                    let Workload::Local(strings) = &*self.workload else {
                        continue;
                    };
                    let view = OracleView {
                        string: &strings[d],
                        frontier: self.procs[d].cursor.position(),
                        cross_portions: self.cfg.pattern.may_prefetch_across_portions(),
                        min_lead: self.cfg.prefetch.min_lead,
                    };
                    select_oracle(&view, &self.pool)
                }
                PolicyKind::Obl { .. } | PolicyKind::PortionLearner { .. } => {
                    let preds = self.predictors[d]
                        .as_ref()
                        .expect("online policy without predictor")
                        .predict(16);
                    select_predicted(&preds, &self.pool)
                }
            };
            if cand.is_some() {
                return cand;
            }
        }
        None
    }
}
