//! Observability wiring for [`World`]: the optional recording state, the
//! epoch gauge sampler, emit glue for spans/instants, and the per-read
//! latency-attribution interval accounting.
//!
//! Everything here follows the same inertness discipline as the fault,
//! admission, and integrity layers: `World::obs` is `None` by default and
//! recording never schedules simulation events, never touches an RNG, and
//! never changes control flow — results are byte-identical with
//! observation on or off. The epoch sampler piggybacks on whatever event
//! fires next at-or-after each boundary instead of scheduling its own
//! ticks, which keeps the event stream untouched at the cost of samples
//! being *taken* slightly late (they are *recorded at* the boundary).
//!
//! The attribution accumulator, by contrast, is always on: three plain
//! fields per process updated by closing contiguous intervals at
//! lifecycle transitions. Because every nanosecond between request and
//! completion falls into exactly one interval, the components telescope
//! to the observed read time — `read_finished` asserts that sum.

use super::*;
use rt_obs::{Component, EventKind, ObsEvent, ReadAttribution, Ring, Series, Track};

/// How a [`World`] records telemetry once [`World::enable_obs`] is called.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Maximum events held; older events are overwritten (and counted).
    pub ring_capacity: usize,
    /// Epoch gauge-sampling period; `None` disables the time-series.
    pub sample_every: Option<SimDuration>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 1 << 20,
            sample_every: Some(SimDuration::from_millis(50)),
        }
    }
}

impl ObsConfig {
    /// Flight-recorder shape: a short tail of events plus dense gauges,
    /// kept by the soak/integrity harnesses for postmortem dumps.
    pub fn flight_recorder() -> Self {
        ObsConfig {
            ring_capacity: 4096,
            sample_every: Some(SimDuration::from_millis(20)),
        }
    }
}

/// Fixed gauge-series layout: indices 0..SERIES_BASE are machine-wide,
/// then one group per disk (queue depth, plus health EWMAs when the
/// fault layer is allocated).
const S_OCCUPANCY: usize = 0;
const S_PF_PENDING: usize = 1;
const S_PF_UNUSED: usize = 2;
const S_PINNED: usize = 3;
const S_CREDITS: usize = 4;
const S_PARKED: usize = 5;
const S_UNUSED_EVICT: usize = 6;
const SERIES_BASE: usize = 7;

/// Recording state of an observed world.
#[derive(Clone)]
pub(crate) struct ObsState {
    pub ring: Ring,
    pub series: Vec<Series>,
    /// Per-disk health series exist (fault layer allocated at enable).
    health: bool,
    sample_every: SimDuration,
    next_sample: SimTime,
}

/// The telemetry recorded by one observed run, detached from the world.
pub struct ObsData {
    /// Recorded events in order (oldest surviving first).
    pub events: Vec<ObsEvent>,
    /// Epoch gauge series.
    pub series: Vec<Series>,
    /// Events lost to ring overwrite (0 = the recording is complete).
    pub dropped: u64,
}

impl ObsData {
    /// Serialize as Chrome Trace Event JSON (open in ui.perfetto.dev).
    pub fn to_perfetto(&self) -> String {
        rt_obs::write_trace(&self.events, &self.series, self.dropped)
    }

    /// Human-readable tail of the last `limit` events.
    pub fn tail(&self, limit: usize) -> String {
        rt_obs::render_tail(&self.events, limit)
    }
}

/// `ObsEvent::arg2` code for a read outcome (matches
/// [`rt_obs::OUTCOME_LABELS`]).
pub(crate) fn outcome_code(o: ReadOutcome) -> u64 {
    match o {
        ReadOutcome::ReadyHit => 0,
        ReadOutcome::UnreadyHit => 1,
        ReadOutcome::Miss => 2,
        ReadOutcome::Failed => 3,
    }
}

/// `ObsEvent::arg2` code for a fetch kind (matches
/// [`rt_obs::FETCH_LABELS`]).
pub(crate) fn fetch_code(k: FetchKind) -> u64 {
    match k {
        FetchKind::Demand => 0,
        FetchKind::Prefetch => 1,
        FetchKind::Scrub => 2,
        FetchKind::Repair => 3,
    }
}

impl World {
    /// Start recording spans/instants into a bounded ring and gauges on a
    /// sampling epoch. Call before the run starts. Purely passive — see
    /// the module docs for the inertness guarantee.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        let mut series = vec![
            Series::new("cache occupancy"),
            Series::new("prefetch pending"),
            Series::new("prefetched unused"),
            Series::new("pinned buffers"),
            Series::new("admission credits"),
            Series::new("parked demands"),
            Series::new("unused evictions"),
        ];
        debug_assert_eq!(series.len(), SERIES_BASE);
        let health = self.faults.is_some();
        for d in 0..self.cfg.disks {
            series.push(Series::new(format!("disk {d} queue")));
            if health {
                series.push(Series::new(format!("disk {d} err-ewma")));
                series.push(Series::new(format!("disk {d} lat-ewma-ms")));
            }
        }
        let every = cfg.sample_every.unwrap_or(SimDuration::ZERO);
        self.obs = Some(ObsState {
            ring: Ring::new(cfg.ring_capacity),
            series,
            health,
            sample_every: every,
            next_sample: if every.is_zero() {
                SimTime::MAX
            } else {
                SimTime::ZERO + every
            },
        });
    }

    /// Detach and return the recorded telemetry, if observation was
    /// enabled. Recording stops.
    pub fn take_obs(&mut self) -> Option<ObsData> {
        self.obs.take().map(|o| ObsData {
            dropped: o.ring.dropped(),
            events: o.ring.to_vec(),
            series: o.series,
        })
    }

    /// Opportunistic epoch sampler, run at the top of every event. When
    /// one or more boundaries have passed since the last sample, record
    /// the current gauge values at the most recent boundary — no events
    /// are scheduled, so the simulation is untouched.
    #[inline]
    pub(crate) fn obs_sample(&mut self, now: SimTime) {
        let due = match &self.obs {
            Some(o) => o.next_sample,
            None => return,
        };
        if now < due {
            return;
        }
        let mut obs = self.obs.take().expect("sampled without obs state");
        let mut at = obs.next_sample;
        while at + obs.sample_every <= now {
            at += obs.sample_every;
        }
        obs.next_sample = at + obs.sample_every;

        let pressure = self.pool.pressure();
        obs.series[S_OCCUPANCY].record(at, pressure.occupancy());
        obs.series[S_PF_PENDING].record(at, pressure.pending as f64);
        obs.series[S_PF_UNUSED].record(at, self.pool.prefetched_unused() as f64);
        obs.series[S_PINNED].record(at, pressure.pinned as f64);
        let (credits, parked) = match &self.admission {
            Some(a) => (a.credits as f64, a.parked_total() as f64),
            None => (0.0, 0.0),
        };
        obs.series[S_CREDITS].record(at, credits);
        obs.series[S_PARKED].record(at, parked);
        obs.series[S_UNUSED_EVICT].record(at, self.pool.unused_evictions() as f64);
        let stride = if obs.health { 3 } else { 1 };
        for (i, d) in self.disks().disks().iter().enumerate() {
            let base = SERIES_BASE + i * stride;
            obs.series[base].record(at, d.queued() as f64);
            if obs.health {
                let f = self.faults.as_ref().expect("health series without faults");
                let id = DiskId(i as u16);
                obs.series[base + 1].record(at, f.health.error_ewma(id));
                obs.series[base + 2].record(at, f.health.latency_ewma_ms(id));
            }
        }
        self.obs = Some(obs);
    }

    /// Record an instant (zero-width) event, if observing.
    #[inline]
    pub(crate) fn obs_instant(
        &mut self,
        track: Track,
        kind: EventKind,
        now: SimTime,
        block: u64,
        arg2: u64,
    ) {
        if let Some(o) = &mut self.obs {
            o.ring.push(ObsEvent {
                track,
                kind,
                start: now,
                dur: SimDuration::ZERO,
                arg: block,
                arg2,
                attr: ReadAttribution::default(),
            });
        }
    }

    /// Record a duration span, if observing.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_span(
        &mut self,
        track: Track,
        kind: EventKind,
        start: SimTime,
        dur: SimDuration,
        block: u64,
        arg2: u64,
        attr: ReadAttribution,
    ) {
        if let Some(o) = &mut self.obs {
            o.ring.push(ObsEvent {
                track,
                kind,
                start,
                dur,
                arg: block,
                arg2,
                attr,
            });
        }
    }

    // ------------------------------------------------------------------
    // Latency-attribution interval accounting (always on). The invariant:
    // for each process, [attr_mark, now] is the open interval and
    // attr_cur the component it will be charged to; every transition
    // closes the open interval and opens the next, so the components sum
    // exactly to the read's latency when `read_finished` closes the last.
    // ------------------------------------------------------------------

    /// Close the open interval into its component and open the next.
    #[inline]
    pub(crate) fn attr_close(&mut self, p: usize, now: SimTime, next: Component) {
        let proc = &mut self.procs[p];
        let d = now.saturating_since(proc.attr_mark);
        proc.attr.add(proc.attr_cur, d);
        proc.attr_mark = now;
        proc.attr_cur = next;
    }

    /// Close the open interval as a lock critical section: up to
    /// `overhead` of its tail is the section's own cost (Overhead), the
    /// remainder was spent queued on the lock (LockWait).
    pub(crate) fn attr_close_lock(
        &mut self,
        p: usize,
        now: SimTime,
        overhead: SimDuration,
        next: Component,
    ) {
        let proc = &mut self.procs[p];
        let elapsed = now.saturating_since(proc.attr_mark);
        let oh = elapsed.min(overhead);
        proc.attr.add(Component::Overhead, oh);
        proc.attr.add(Component::LockWait, elapsed - oh);
        proc.attr_mark = now;
        proc.attr_cur = next;
    }

    /// A fetch of `block` began device service: waiters still queued (or
    /// backing off) behind it start accruing disk service. Unready-hit
    /// waiters are untouched — their whole wait is hit-wait.
    pub(crate) fn attr_service_begins(&mut self, block: BlockId, now: SimTime) {
        let procs = &mut self.procs;
        self.waiters.for_each(block, |w| {
            let proc = &mut procs[w.index()];
            if matches!(
                proc.attr_cur,
                Component::QueueWait | Component::RetryBackoff
            ) {
                let d = now.saturating_since(proc.attr_mark);
                proc.attr.add(proc.attr_cur, d);
                proc.attr_mark = now;
                proc.attr_cur = Component::DiskService;
            }
        });
    }

    /// Emit breaker open-episode closures folded up by the health tracker
    /// as spans on the per-device breaker tracks. Draining is
    /// unconditional so the closure list never grows without bound;
    /// `obs_span` is a no-op when observation is off.
    pub(crate) fn emit_breaker_closures(&mut self) {
        if !self.cfg.faults.breaker.enabled {
            return;
        }
        let Some(f) = &mut self.faults else { return };
        let closed = f.health.drain_breaker_closures();
        for c in closed {
            self.obs_span(
                Track::Breaker(c.disk.0),
                EventKind::BreakerOpen,
                c.opened,
                c.hold,
                u64::MAX,
                c.half_open.as_nanos(),
                ReadAttribution::default(),
            );
        }
    }

    /// The fetch of `block` moved to a new stage (verify hold, retry
    /// backoff): miss-origin waiters switch their open interval to
    /// `next`. Unready-hit waiters keep accruing hit-wait.
    pub(crate) fn attr_fetch_stage(&mut self, block: BlockId, now: SimTime, next: Component) {
        let procs = &mut self.procs;
        self.waiters.for_each(block, |w| {
            let proc = &mut procs[w.index()];
            if matches!(
                proc.attr_cur,
                Component::QueueWait
                    | Component::DiskService
                    | Component::RetryBackoff
                    | Component::VerifyHold
                    | Component::HedgeWait
            ) {
                let d = now.saturating_since(proc.attr_mark);
                proc.attr.add(proc.attr_cur, d);
                proc.attr_mark = now;
                proc.attr_cur = next;
            }
        });
    }
}
